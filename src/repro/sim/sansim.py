"""SimSan: a runtime sanitizer for the discrete-event kernel.

The static tier (reprolint REPRO601/602) proves per-function properties;
SimSan checks the *global* runtime discipline the kernel's fast paths
assume but cannot afford to verify per event:

- **Timer ownership** — every pending non-periodic handle at drain whose
  owning process already exited is an orphan: it will fire as a no-op (or
  worse, act on dead state) and until then it stretches run-until-drain
  and bloats the heap.  This is the PR 6 guard-timer bug class, observed
  live instead of deduced statically.  Orphans are reported with the
  creation stack of the ``schedule()`` call that made them.
- **Cross-process RNG streams** — a named stream drawn by process A, then
  by process B, then by A again is interleaving-dependent: each process's
  observed subsequence changes whenever event order changes, which
  silently breaks replay determinism.  Sequential handoff (A finishes,
  then B draws) is fine and common — per-component streams drawn by
  short-lived procedure processes stay quiet.
- **Freelist discipline** — ``release()`` hands the entry back to the
  kernel freelist; the API contract says the caller drops its reference
  *now*.  SimSan interposes a checking handle so a double ``release()``
  or any use after one is reported instead of silently corrupting an
  unrelated recycled timer.

Zero cost when off: ``Simulator(sanitizer=SimSan())`` swaps the
instance's class to :class:`_SanSimulator` (a ``__slots__ = ()`` subclass
— the layouts are identical, so the swap is legal), overriding only
``schedule``/``run``/``_execute``.  A plain ``Simulator()`` executes the
exact same bytecode as before this module existed; like the tracer-off
fast path, the disabled sanitizer is unmeasurable because it is not
there.

Reports flow through the reprolint machinery: :meth:`SimSan.findings`
yields ``repro.analysis`` ``Finding`` objects (rule ``simsan-*``) and
:meth:`SimSan.to_report` the same JSON shape the lint CLI emits, so CI
treats both tiers uniformly.
"""

from __future__ import annotations

import heapq
import traceback
from typing import Any, Dict, List, Optional, Set, Tuple

from .kernel import Process, ScheduledCall, SimulationError, Simulator

__all__ = ["SimSan", "SanHandle"]

_MAX_SEEN_DRAWERS = 4096


class SanHandle:
    """A checking proxy for :class:`ScheduledCall` handed out by sanitized
    ``schedule()``.  Delegates the real work; reports discipline violations."""

    __slots__ = ("_entry", "_san", "_seq", "_released")

    def __init__(self, entry: ScheduledCall, san: "SimSan"):
        self._entry = entry
        self._san = san
        self._seq = entry.seq
        self._released = False

    @property
    def when(self) -> float:
        if self._released:
            self._san._use_after_release(self._seq, "when")
            return 0.0
        return self._entry.when

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def active(self) -> bool:
        if self._released:
            self._san._use_after_release(self._seq, "active")
            return False
        entry = self._entry
        return entry.fn is not None and entry.seq == self._seq

    def cancel(self) -> bool:
        if self._released:
            self._san._use_after_release(self._seq, "cancel")
            return False
        entry = self._entry
        if entry.seq != self._seq or entry.fn is None:
            return False  # already fired (benign, the normal race loser)
        self._san._forget(self._seq)
        return entry.cancel()

    def release(self) -> bool:
        if self._released:
            self._san._double_release(self._seq)
            return False
        self._released = True
        entry = self._entry
        self._entry = None  # the entry may be recycled; never touch it again
        self._san._forget(self._seq)
        if entry.seq != self._seq or entry.fn is None:
            return False
        return entry.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "checking"
        return f"<SanHandle seq={self._seq} {state}>"


class _SanStream:
    """Wrapper around one named ``random.Random`` stream: records which
    process draws from it and reports interleaved cross-process use."""

    def __init__(self, san: "SimSan", name: str, rng: Any):
        self._san = san
        self._name = name
        self._rng = rng

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._rng, attr)
        if not callable(value):
            return value
        san = self._san
        name = self._name

        def drawing(*args: Any, **kwargs: Any) -> Any:
            san._note_rng_use(name)
            return value(*args, **kwargs)

        return drawing


class _TimerRecord:
    __slots__ = ("owner", "stack", "when", "site")

    def __init__(self, owner: Optional[Process], stack: Optional[str],
                 when: float, site: Tuple[str, int]):
        self.owner = owner
        self.stack = stack
        self.when = when
        self.site = site


class SimSan:
    """The sanitizer state: pass one to ``Simulator(sanitizer=...)``.

    ``capture_stacks=False`` skips the (expensive) creation-stack capture
    on every tracked ``schedule()`` — reports then carry only the call
    site resolved from the scheduling frame.
    """

    def __init__(self, capture_stacks: bool = True, max_reports: int = 1000):
        self.capture_stacks = capture_stacks
        self.max_reports = max_reports
        self.reports: List[Dict[str, Any]] = []
        self.current: Optional[Process] = None  # process being resumed
        self._timers: Dict[int, _TimerRecord] = {}
        self._reported_orphans: Set[int] = set()
        # stream name -> (last drawer, set of past drawers, reported flag)
        self._rng_streams: Dict[str, List[Any]] = {}
        self._sim: Optional[Simulator] = None

    # -- wiring ------------------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        if self._sim is not None and self._sim is not sim:
            raise SimulationError("one SimSan instance per Simulator")
        self._sim = sim

    def watch_rng(self, registry: Any) -> Any:
        """Interpose on ``registry.stream`` so every named stream reports
        its drawers.  Returns the registry for chaining."""
        original = registry.stream
        proxies: Dict[str, _SanStream] = {}

        def stream(name: str) -> _SanStream:
            proxy = proxies.get(name)
            if proxy is None:
                proxy = _SanStream(self, name, original(name))
                proxies[name] = proxy
            return proxy

        registry.stream = stream
        return registry

    # -- results -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.reports

    def findings(self) -> List[Any]:
        """Reports as ``repro.analysis`` Finding objects (rule simsan-*)."""
        from ..analysis.core import Finding
        out = []
        for report in self.reports:
            out.append(Finding(
                rule=f"simsan-{report['check']}",
                code=report["code"],
                path=report.get("path", "<runtime>"),
                line=int(report.get("line", 0)),
                col=0,
                message=report["message"]))
        return out

    def to_report(self) -> Dict[str, Any]:
        """The reprolint JSON report shape, for CI artifact parity."""
        return {
            "tool": "simsan",
            "version": 1,
            "checks": ["orphan-timer", "rng-stream-sharing",
                       "release-discipline"],
            "reports": list(self.reports),
            "report_count": len(self.reports),
        }

    def _report(self, check: str, code: str, message: str,
                **extra: Any) -> None:
        if len(self.reports) >= self.max_reports:
            return
        entry: Dict[str, Any] = {"check": check, "code": code,
                                 "message": message}
        entry.update(extra)
        self.reports.append(entry)
        # Flight recorder auto-snapshot: every sanitizer report ships its
        # last-N-events context (attribute read, no flightrec import).
        rec = self._sim.recorder if self._sim is not None else None
        if rec is not None:
            fields = {k: v for k, v in entry.items() if k != "stack"}
            rec.node("simsan").error("simsan", code, **fields)
            rec.snapshot(f"simsan:{code}")

    # -- timer ownership ---------------------------------------------------

    def _note_schedule(self, entry: ScheduledCall) -> None:
        stack = None
        site = ("<unknown>", 0)
        if self.capture_stacks:
            # Drop the sanitizer/schedule frames; keep the caller upward.
            frames = traceback.extract_stack()[:-2]
            if frames:
                site = (frames[-1].filename, frames[-1].lineno or 0)
            stack = "".join(traceback.format_list(frames[-6:]))
        self._timers[entry.seq] = _TimerRecord(self.current, stack,
                                               entry.when, site)
        # With a flight recorder installed, every tracked schedule leaves a
        # breadcrumb carrying the resolved scheduling site; the record picks
        # up the ambient span context, so an orphan-timer report's snapshot
        # ends with the trace-correlated site that armed the timer.
        rec = self._sim.recorder if self._sim is not None else None
        if rec is not None:
            owner = self.current
            rec.node(owner.name if owner is not None else "kernel").debug(
                "kernel", "timer.scheduled",
                site=f"{site[0]}:{site[1]}", when=entry.when)

    def _forget(self, seq: int) -> None:
        self._timers.pop(seq, None)

    def check_drain(self, sim: Simulator) -> None:
        """Scan pending entries for orphans: tracked non-periodic timers
        whose owning process has already exited."""
        for entry in self._iter_pending(sim):
            record = self._timers.get(entry.seq)
            if record is None:
                continue  # untracked (pooled/fire-and-forget) entry
            owner = record.owner
            if owner is None or not owner.triggered:
                continue
            if entry.seq in self._reported_orphans:
                continue
            self._reported_orphans.add(entry.seq)
            path, line = record.site
            message = (f"orphaned timer: entry scheduled at "
                       f"{path}:{line} for t={record.when:g} is still "
                       f"pending but its owner process "
                       f"'{owner.name}' already exited; cancel it when "
                       f"the owner finishes (finally-revoke) or hand it "
                       f"to a live owner")
            self._report("orphan-timer", "SIMSAN01", message,
                         path=path, line=line, when=record.when,
                         owner=owner.name, stack=record.stack)

    @staticmethod
    def _iter_pending(sim: Simulator):
        for item in sim._queue:
            entry = item[2]
            if entry.fn is not None:
                yield entry
        for entry in sim._far:
            if entry.fn is not None:
                yield entry
        for slots in sim._wheel_slots:
            for bucket in slots.values():
                for entry in bucket:
                    if entry.fn is not None:
                        yield entry

    # -- RNG stream sharing ------------------------------------------------

    def _note_rng_use(self, name: str) -> None:
        owner = self.current
        if owner is None:
            return  # top-level / aggregate callbacks are not processes
        state = self._rng_streams.get(name)
        if state is None:
            self._rng_streams[name] = [owner, {owner}, False]
            return
        last, seen, reported = state
        if owner is not last:
            if not reported and owner in seen:
                state[2] = True
                self._report(
                    "rng-stream-sharing", "SIMSAN02",
                    f"RNG stream '{name}' is drawn by interleaved "
                    f"processes ('{owner.name}' resumed drawing after "
                    f"'{last.name}'): each one's draw subsequence now "
                    f"depends on event interleaving, breaking replay "
                    f"determinism — give each process its own named "
                    f"stream")
            if len(seen) < _MAX_SEEN_DRAWERS:
                seen.add(owner)
            state[0] = owner

    # -- release discipline ------------------------------------------------

    def _double_release(self, seq: int) -> None:
        self._report(
            "release-discipline", "SIMSAN03",
            f"double release() of timer handle (seq={seq}): the entry went "
            f"back to the kernel freelist on the first call and may "
            f"already drive an unrelated callback")

    def _use_after_release(self, seq: int, method: str) -> None:
        self._report(
            "release-discipline", "SIMSAN03",
            f"use-after-release: {method}() on timer handle (seq={seq}) "
            f"after release(); the entry may have been recycled for an "
            f"unrelated callback — use cancel() when the handle can "
            f"outlive its revocation site")


class _SanSimulator(Simulator):
    """Layout-compatible subclass installed by ``Simulator(sanitizer=...)``
    via class swap.  Only the instrumented paths are overridden; everything
    else (timer wheel, freelist, pooled internals) is inherited untouched."""

    __slots__ = ()

    def schedule(self, delay: float, fn: Any, *args: Any) -> SanHandle:
        entry = Simulator.schedule(self, delay, fn, *args)
        san = self._san
        san._note_schedule(entry)
        return SanHandle(entry, san)

    def _execute(self, entry: ScheduledCall) -> None:
        san = self._san
        san._forget(entry.seq)
        fn = entry.fn
        owner = getattr(fn, "__self__", None)
        san.current = owner if isinstance(owner, Process) else None
        try:
            Simulator._execute(self, entry)
        finally:
            san.current = None

    def run(self, until: Optional[float] = None) -> float:
        # The base fast loop inlines _execute; route everything through the
        # instrumented step path instead, then audit the survivors.
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heappop = heapq.heappop
        queue = self._queue
        try:
            while True:
                entry = self._surface()
                if entry is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and entry.when > until:
                    self._now = until
                    break
                heappop(queue)
                self._now = entry.when
                self._execute(entry)
        finally:
            self._running = False
        self._san.check_drain(self)
        return self._now


def _install(sim: Simulator, sanitizer: SimSan) -> None:
    """Called from ``Simulator.__init__`` when a sanitizer is supplied."""
    sanitizer.attach(sim)
    sim.__class__ = _SanSimulator
    sim._san = sanitizer
