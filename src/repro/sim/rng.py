"""Deterministic, named random-number streams.

Experiments must be replicable (the paper's Landslide testbed emphasises
replicable emulation), so every stochastic component draws from its own named
stream derived from a single root seed.  Two runs with the same root seed and
the same stream names produce identical traces regardless of the order in
which *other* streams are consumed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for named, independently-seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. per-trial) with an independent seed."""
        digest = hashlib.sha256(f"{self.root_seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
