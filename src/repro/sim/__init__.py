"""Discrete-event simulation substrate.

Public surface:

- :class:`~repro.sim.kernel.Simulator` and the awaitables
  (:class:`~repro.sim.kernel.Event`, :class:`~repro.sim.kernel.Timeout`,
  :class:`~repro.sim.kernel.Process`, :class:`~repro.sim.kernel.AnyOf`,
  :class:`~repro.sim.kernel.AllOf`).
- :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Signal` for coordination.
- :class:`~repro.sim.cpu.CpuModel` for the calibrated AGW CPU model.
- :class:`~repro.sim.monitor.Monitor` for experiment time series.
- :class:`~repro.sim.rng.RngRegistry` for reproducible randomness.
- :class:`~repro.sim.sansim.SimSan` for the opt-in runtime sanitizer
  (``Simulator(sanitizer=SimSan())``).
"""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    PeriodicCall,
    Process,
    ScheduledCall,
    SimulationError,
    Simulator,
    Timeout,
)
from .cpu import CpuModel
from .monitor import Monitor, Series, median, percentile
from .resources import Resource, Signal, Store
from .rng import RngRegistry
from .sansim import SimSan

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuModel",
    "Event",
    "Interrupted",
    "Monitor",
    "PeriodicCall",
    "Process",
    "Resource",
    "RngRegistry",
    "ScheduledCall",
    "Series",
    "Signal",
    "SimSan",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "median",
    "percentile",
]
