"""Quantized multi-core CPU model.

The paper's performance results (Figs. 5-8) are all about contention between
*control-plane* work (discrete tasks: processing an attach request, including
authentication crypto) and *user-plane* work (a fluid load: forwarding UE
traffic) on a small number of commodity cores.  This module models exactly
that contention.

Model
-----
- The CPU has ``cores`` cores and advances in fixed quanta (default 50 ms).
- **Discrete tasks** (:meth:`CpuModel.submit`) carry a service demand in
  core-seconds and belong to a named class (e.g. ``"cp"``).  Tasks are served
  FIFO within their class; at most one core serves a task at a time (an
  attach cannot be parallelized), so a class with *n* cores serves at most
  *n* tasks concurrently.
- **Fluid demand** (:meth:`CpuModel.set_fluid_demand`) models packet
  forwarding: a continuous work *rate* in core-seconds per second.  The model
  reports how much of that rate was actually served each quantum, from which
  the caller derives achieved throughput.
- **Scheduling**: with ``partition=None`` (the "flexible" kernel scheduler of
  Figs. 7-8), all classes share every core and contend via processor sharing.
  With a static partition (``{"up": 3, "cp": 1}``), each class may only use
  its own cores and excess capacity in one pool is *not* available to the
  other - reproducing the trade-off the paper measures.

Utilization per quantum is recorded into an optional
:class:`~repro.sim.monitor.Monitor` as ``cpu.<name>.util`` (total, fraction
of all cores) and ``cpu.<name>.util.<class>``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional, Tuple

from .fairshare import max_min_share
from .kernel import Event, Simulator
from .monitor import Monitor

DEFAULT_QUANTUM = 0.05


class CpuTask:
    """A queued discrete task; ``done`` triggers when fully served."""

    __slots__ = ("cls", "demand", "remaining", "enqueued_at", "done")

    def __init__(self, cls: str, demand: float, enqueued_at: float, done: Event):
        self.cls = cls
        self.demand = demand
        self.remaining = demand
        self.enqueued_at = enqueued_at
        self.done = done


class _Pool:
    """A set of cores serving one or more classes."""

    __slots__ = ("cores", "classes")

    def __init__(self, cores: float, classes: Tuple[str, ...]):
        self.cores = cores
        self.classes = classes


class CpuModel:
    """A quantized processor-sharing model of a small multi-core CPU."""

    def __init__(
        self,
        sim: Simulator,
        cores: float,
        quantum: float = DEFAULT_QUANTUM,
        partition: Optional[Dict[str, float]] = None,
        monitor: Optional[Monitor] = None,
        name: str = "cpu",
    ):
        if cores <= 0:
            raise ValueError("cores must be positive")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if partition is not None:
            total = sum(partition.values())
            if total - cores > 1e-9:
                raise ValueError(f"partition uses {total} cores but CPU has {cores}")
            if any(v < 0 for v in partition.values()):
                raise ValueError("partition core counts must be >= 0")
        self.sim = sim
        self.cores = float(cores)
        self.quantum = quantum
        self.partition = dict(partition) if partition else None
        self.monitor = monitor
        self.name = name
        self._queues: Dict[str, Deque[CpuTask]] = {}
        self._fluid: Dict[str, Dict[str, float]] = {}  # cls -> source -> rate
        self._fluid_served_rate: Dict[str, float] = {}  # cls -> core-sec/s last quantum
        self._queued_work: Dict[str, float] = {}
        self._ticking = False
        self._stopped = False

    # -- public API ---------------------------------------------------------

    def submit(self, cls: str, demand: float) -> Event:
        """Enqueue a discrete task; the returned event fires on completion.

        The event value is the task's total sojourn time (queueing +
        service), which experiments use to detect deadline misses.
        """
        if demand <= 0:
            raise ValueError("task demand must be positive")
        done = self.sim.event(f"{self.name}.task.{cls}")
        task = CpuTask(cls, demand, self.sim.now, done)
        self._queues.setdefault(cls, deque()).append(task)
        self._queued_work[cls] = self._queued_work.get(cls, 0.0) + demand
        self._ensure_ticking()
        return done

    def set_fluid_demand(self, cls: str, source: str, rate: float) -> None:
        """Set the continuous work rate (core-sec/s) offered by ``source``."""
        if rate < 0:
            raise ValueError("fluid rate must be >= 0")
        per_source = self._fluid.setdefault(cls, {})
        if rate == 0.0:
            per_source.pop(source, None)
        else:
            per_source[source] = rate
        self._ensure_ticking()

    def fluid_demand(self, cls: str) -> float:
        return sum(self._fluid.get(cls, {}).values())

    def fluid_served_rate(self, cls: str) -> float:
        """Core-sec/s actually delivered to ``cls`` fluid in the last quantum."""
        return self._fluid_served_rate.get(cls, 0.0)

    def fluid_service_fraction(self, cls: str) -> float:
        """Fraction of offered fluid demand served in the last quantum."""
        demand = self.fluid_demand(cls)
        if demand <= 0:
            return 1.0
        return min(1.0, self.fluid_served_rate(cls) / demand)

    def queue_depth(self, cls: str) -> int:
        return len(self._queues.get(cls, ()))

    def queued_work(self, cls: str) -> float:
        """Outstanding core-seconds of discrete work for ``cls``."""
        return self._queued_work.get(cls, 0.0)

    def stop(self) -> None:
        """Stop ticking (used when tearing down an experiment)."""
        self._stopped = True

    # -- internals -----------------------------------------------------------

    def _ensure_ticking(self) -> None:
        if not self._ticking and not self._stopped:
            self._ticking = True
            self.sim.call_later(self.quantum, self._tick)

    def _pools(self) -> Iterable[_Pool]:
        if self.partition is None:
            classes = set(self._queues) | set(self._fluid)
            yield _Pool(self.cores, tuple(sorted(classes)))
        else:
            for cls, cores in self.partition.items():
                yield _Pool(cores, (cls,))

    def _tick(self) -> None:
        if self._stopped:
            self._ticking = False
            return
        dt = self.quantum
        served_by_class: Dict[str, float] = {}
        for pool in self._pools():
            self._serve_pool(pool, dt, served_by_class)
        total_served = sum(served_by_class.values())
        if self.monitor is not None:
            self.monitor.record(f"cpu.{self.name}.util", self.sim.now,
                                total_served / (self.cores * dt))
            for cls, served in served_by_class.items():
                self.monitor.record(f"cpu.{self.name}.util.{cls}", self.sim.now,
                                    served / (self.cores * dt))
        # Keep ticking while there is anything to do; go idle otherwise.
        if any(self._queues.get(c) for c in self._queues) or any(
            self._fluid.get(c) for c in self._fluid
        ):
            self.sim.call_later(dt, self._tick)
        else:
            self._ticking = False
            self._fluid_served_rate.clear()

    def _serve_pool(self, pool: _Pool, dt: float, served_by_class: Dict[str, float]) -> None:
        capacity = pool.cores * dt
        if capacity <= 0:
            for cls in pool.classes:
                if self._fluid.get(cls):
                    self._fluid_served_rate[cls] = 0.0
            return
        max_parallel = max(1, int(pool.cores))
        # Gather demands: per class, discrete task slice + fluid slice.
        slices: Dict[str, float] = {}
        runnable: Dict[str, list] = {}
        fluid_need: Dict[str, float] = {}
        for cls in pool.classes:
            queue = self._queues.get(cls)
            tasks = []
            if queue:
                for task in list(queue)[:max_parallel]:
                    tasks.append(task)
            runnable[cls] = tasks
            discrete_need = sum(min(t.remaining, dt) for t in tasks)
            fneed = self.fluid_demand(cls) * dt
            fluid_need[cls] = fneed
            slices[cls] = discrete_need + fneed
        total_need = sum(slices.values())
        if total_need <= 0:
            for cls in pool.classes:
                if self._fluid.get(cls):
                    self._fluid_served_rate[cls] = 0.0
            return
        # Between classes: max-min fair (a work-conserving kernel scheduler
        # gives a light class its full demand; heavy classes split the rest).
        # Within a class: proportional among runnable tasks and fluid load.
        grants = max_min_share(slices, capacity)
        for cls in pool.classes:
            need = slices[cls]
            scale = min(1.0, grants.get(cls, 0.0) / need) if need > 0 else 0.0
            served_cls = 0.0
            # Discrete tasks: each runnable task receives its scaled slice.
            queue = self._queues.get(cls)
            for task in runnable[cls]:
                grant = min(task.remaining, dt) * scale
                task.remaining -= grant
                served_cls += grant
                self._queued_work[cls] = max(0.0, self._queued_work.get(cls, 0.0) - grant)
                if task.remaining <= 1e-12:
                    queue.remove(task)
                    if not task.done.triggered:
                        sojourn = self.sim.now + dt - task.enqueued_at
                        task.done.succeed(sojourn)
            # Fluid load.
            fgrant = fluid_need[cls] * scale
            served_cls += fgrant
            if self._fluid.get(cls) or fluid_need[cls] > 0:
                self._fluid_served_rate[cls] = fgrant / dt
            served_by_class[cls] = served_by_class.get(cls, 0.0) + served_cls
