"""Discrete-event simulation kernel.

Everything in this reproduction runs on top of this kernel: protocol state
machines, RPC channels, CPU models, and workload generators are all simulated
processes exchanging events in virtual time.

The design follows the classic event-list pattern:

- A :class:`Simulator` owns a priority queue of timestamped callbacks and a
  virtual clock (``now``, in seconds).
- A :class:`Process` wraps a Python generator.  The generator *yields*
  awaitable objects (:class:`Timeout`, :class:`Event`, another
  :class:`Process`, :class:`AnyOf`/:class:`AllOf`) and is resumed when the
  awaited thing completes.  The value sent back into the generator is the
  payload of the completed awaitable.
- Processes may be interrupted (:meth:`Process.interrupt`), which raises
  :class:`Interrupted` inside the generator at its current yield point.

Example::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done"
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once and resumes all waiting processes.  Waiting on an
    already-triggered event resumes the waiter immediately (on the next
    kernel step).
    """

    __slots__ = ("sim", "_ok", "_value", "_callbacks", "_triggered", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._ok: bool = True
        self._value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.schedule(0.0, cb, self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run (as a scheduled callback) once triggered."""
        if self._triggered:
            self.sim.schedule(0.0, cb, self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self._triggered:
            self.succeed(value)


class AnyOf(Event):
    """Triggers when the first of several events triggers.

    The value is a dict mapping the winning event(s) to their values.  A
    failed child event fails the composite.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed({ev: ev.value})


class AllOf(Event):
    """Triggers when all child events have triggered.

    The value is a dict mapping every event to its value.  The first failed
    child fails the composite.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class Process(Event):
    """A running simulated activity, driven by a generator.

    A process is itself an :class:`Event` that triggers when the generator
    returns (value = return value) or raises (failure).  This lets processes
    wait on each other by yielding the process object.
    """

    __slots__ = ("generator", "_waiting_on", "ctx")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "",
                 ctx: Any = None):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Trace context pinned to this process: the ambient context at spawn
        # time (or an explicit override), restored around every generator
        # resume so causality survives arbitrary interleavings.
        self.ctx = sim.ctx if ctx is None else ctx
        sim.schedule(0.0, self._resume, None)

    @property
    def alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its yield point.

        Interrupting a finished process is a no-op.
        """
        if self._triggered:
            return
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and not target.triggered:
            # Detach: the old target may still fire but we will ignore it.
            try:
                target._callbacks.remove(self._on_wait_done)
            except ValueError:
                pass
        self.sim.schedule(0.0, self._throw, Interrupted(cause))

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._step(lambda: self.generator.throw(exc))

    def _resume(self, value: Any) -> None:
        if self._triggered:
            return
        self._step(lambda: self.generator.send(value))

    def _resume_error(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._step(lambda: self.generator.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        self._waiting_on = None
        sim = self.sim
        prev, sim.ctx = sim.ctx, self.ctx
        try:
            try:
                target = advance()
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupted as exc:
                # An un-caught interrupt terminates the process "successfully
                # failed": surface it as a failure so waiters notice.
                self.fail(exc)
                return
            except BaseException as exc:  # process boundary: any error in user
                self.fail(exc)            # code must fail the process event
                return
            if not isinstance(target, Event):
                sim.schedule(
                    0.0,
                    self._resume_error,
                    SimulationError(f"process {self.name!r} yielded non-event {target!r}"),
                )
                return
            self._waiting_on = target
            target.add_callback(self._on_wait_done)
        finally:
            # The generator may have activated a different span mid-resume;
            # re-pin it so the next resume sees it, then restore the caller's.
            self.ctx = sim.ctx
            sim.ctx = prev

    def _on_wait_done(self, ev: Event) -> None:
        if self._triggered or self._waiting_on is not ev:
            return
        if ev.ok:
            self._resume(ev.value)
        else:
            value = ev.value
            if not isinstance(value, BaseException):
                value = SimulationError(f"event failed with non-exception {value!r}")
            self._resume_error(value)


class Simulator:
    """The discrete-event scheduler and virtual clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._counter = itertools.count()
        self._running = False
        # Ambient trace context (an ``obs.tracing.SpanContext`` or None).
        # Captured by schedule() and pinned on spawned processes, so trace
        # context follows the causal chain of callbacks and resumes without
        # any explicit plumbing.  None whenever tracing is off.
        self.ctx: Any = None
        # The installed ``obs.tracing.Tracer`` (or None).  Components read
        # this at call time; assigning it retroactively enables tracing.
        self.tracer: Any = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        # The ambient trace context rides along; ordering still compares only
        # (when, seq), so tracing never perturbs event order.
        heapq.heappush(self._queue,
                       (self._now + delay, next(self._counter), fn, args,
                        self.ctx))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        self.schedule(when - self._now, fn, *args)

    # -- awaitable factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def spawn(self, generator: Generator, name: str = "",
              ctx: Any = None) -> Process:
        """Start a new process from a generator.

        ``ctx`` pins a trace context on the process; by default the ambient
        context at spawn time is inherited.
        """
        return Process(self, generator, name, ctx=ctx)

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if idle."""
        if not self._queue:
            return False
        when, _seq, fn, args, ctx = heapq.heappop(self._queue)
        self._now = when
        prev, self.ctx = self.ctx, ctx
        try:
            fn(*args)
        finally:
            self.ctx = prev
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or ``until`` (absolute time).

        Returns the clock value when the run stops.  When stopping at
        ``until``, the clock is advanced to exactly ``until`` and any events
        scheduled for later remain queued.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` triggers; raise on failure or time limit."""
        while not event.triggered:
            if not self._queue:
                raise SimulationError("deadlock: event queue drained while waiting")
            if self._queue[0][0] > limit:
                raise SimulationError(f"time limit {limit} reached while waiting")
            self.step()
        if not event.ok:
            value = event.value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"awaited event failed: {value!r}")
        return event.value
