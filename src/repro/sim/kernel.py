"""Discrete-event simulation kernel.

Everything in this reproduction runs on top of this kernel: protocol state
machines, RPC channels, CPU models, and workload generators are all simulated
processes exchanging events in virtual time.

The design follows the classic event-list pattern:

- A :class:`Simulator` owns a priority queue of timestamped callbacks and a
  virtual clock (``now``, in seconds).
- A :class:`Process` wraps a Python generator.  The generator *yields*
  awaitable objects (:class:`Timeout`, :class:`Event`, another
  :class:`Process`, :class:`AnyOf`/:class:`AllOf`) and is resumed when the
  awaited thing completes.  The value sent back into the generator is the
  payload of the completed awaitable.
- Processes may be interrupted (:meth:`Process.interrupt`), which raises
  :class:`Interrupted` inside the generator at its current yield point.

Example::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done"
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

_INF = float("inf")

# Timer-wheel geometry.  Delays shorter than the cutoff go straight to the
# heap (they are about to fire anyway); longer delays park in a hashed
# hierarchical wheel — per-level dicts of slot-index -> entry list — and only
# migrate into the heap when the clock approaches their slot.  The payoff is
# the dominant schedule-then-cancel pattern (RPC deadlines/retries, guard
# timers): a cancelled entry parked in the wheel is dropped at slot flush
# without ever touching the heap, so it costs O(1) total instead of a
# heappush + heappop at ~100k-entry heap depth.
_WHEEL_CUTOFF = 0.25
_WHEEL_WIDTHS = (0.25, 4.0, 64.0, 1024.0)
_POOL_MAX = 16384


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class ScheduledCall:
    """Cancelable handle for one scheduled callback.

    Returned by :meth:`Simulator.schedule`.  ``cancel()`` is O(1): it marks
    the entry dead where it sits (heap or timer wheel); the kernel drops dead
    entries without executing them and without advancing the clock to their
    deadline, so a drained run ends at the last *live* event.
    """

    __slots__ = ("sim", "when", "seq", "fn", "args", "ctx", "_pooled")

    def __init__(self, sim: "Simulator", when: float, seq: int, fn, args,
                 ctx, pooled: bool = False):
        self.sim = sim
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.ctx = ctx
        self._pooled = pooled

    @property
    def active(self) -> bool:
        """True while the callback is still pending (not fired, not cancelled)."""
        return self.fn is not None

    def cancel(self) -> bool:
        """Cancel the pending callback.  Returns True if it was still pending;
        cancelling an already-fired or already-cancelled call is a no-op."""
        if self.fn is None:
            return False
        self.fn = None
        self.args = ()
        self.ctx = None
        sim = self.sim
        sim._live -= 1
        # Amortized compaction: every 16384 cancels, check whether dead
        # entries are the physical majority and sweep them out if so, so
        # cancellation actually reclaims memory instead of leaving corpses
        # parked in wheel slots until their original deadline.  The far-buffer
        # flush already recycles corpses cancelled before their first
        # organize, so the threshold is deliberately lazy — the sweep is for
        # long-lived wheel corpses, not the common cancel-quickly pattern.
        sim._dead += 1
        if sim._dead > 16384:
            physical = len(sim._queue) + sim._wheel_count + len(sim._far)
            if (physical - sim._live) * 2 > physical:
                sim._compact()
            else:
                sim._dead = 0
        return True

    def release(self) -> bool:
        """:meth:`cancel`, plus hand the entry back to the kernel freelist.

        The caller asserts it is dropping its reference *now*: the object
        will be recycled for unrelated callbacks once the kernel unlinks it,
        so any later method call on the handle is undefined behaviour.  Use
        it for the schedule-then-revoke pattern where the handle provably
        does not outlive its owner (the RPC layer's per-call deadline and
        retry timers); when in doubt, use :meth:`cancel`.
        """
        if self.fn is None:
            return False
        self.fn = None
        self.args = ()
        self.ctx = None
        self._pooled = True  # recyclable at whichever drop site finds it
        sim = self.sim
        sim._live -= 1
        sim._dead += 1
        if sim._dead > 16384:
            physical = len(sim._queue) + sim._wheel_count + len(sim._far)
            if (physical - sim._live) * 2 > physical:
                sim._compact()
            else:
                sim._dead = 0
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self.fn is not None else "dead"
        return f"<ScheduledCall @{self.when:g} {state}>"


# Allocation shortcut for the scheduling hot paths: __new__ + direct slot
# stores skips the __init__ call frame.
_new_entry = ScheduledCall.__new__


class PeriodicCall:
    """A self-rescheduling callback: ``fn(*args)`` every ``period`` seconds.

    Built for batched cohort/fleet ticks: one wrapper object drives an
    arbitrary number of aggregate state machines from a single kernel
    timer, and every reschedule rides the pooled fire-and-forget path
    (:meth:`Simulator._schedule_pooled`), so steady-state ticking allocates
    nothing — unlike a ``Timeout``-per-tick coroutine loop, which builds
    an event object and a callback list every period.

    ``cancel()`` stops the chain; at most one already-pooled entry remains
    queued and fires as a cheap no-op (pooled entries cannot be revoked,
    by design).  The first tick fires at ``now + period``.
    """

    __slots__ = ("sim", "period", "fn", "args", "_active")

    def __init__(self, sim: "Simulator", period: float, fn: Callable,
                 args: tuple):
        if period <= 0:
            raise ValueError(f"periodic call needs a positive period: {period}")
        self.sim = sim
        self.period = period
        self.fn = fn
        self.args = args
        self._active = True
        sim._schedule_pooled(period, self._fire, ())

    @property
    def active(self) -> bool:
        return self._active

    def _fire(self) -> None:
        if not self._active:
            return
        self.fn(*self.args)
        # The callback may have cancelled us (a fleet draining to empty
        # stops its own ticker); only then does the chain end.
        if self._active:
            self.sim._schedule_pooled(self.period, self._fire, ())

    def cancel(self) -> bool:
        """Stop the periodic chain.  Returns True if it was running."""
        if not self._active:
            return False
        self._active = False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self._active else "cancelled"
        return f"<PeriodicCall every {self.period:g}s {state}>"


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once and resumes all waiting processes.  Waiting on an
    already-triggered event resumes the waiter immediately (on the next
    kernel step).
    """

    __slots__ = ("sim", "_ok", "_value", "_callbacks", "_triggered", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._ok: bool = True
        self._value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        sim = self.sim
        for cb in callbacks:
            sim._schedule_pooled(0.0, cb, (self,))

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run (as a scheduled callback) once triggered."""
        if self._triggered:
            self.sim._schedule_pooled(0.0, cb, (self,))
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        sim._schedule_pooled(delay, self._fire, (value,))

    def _fire(self, value: Any) -> None:
        if not self._triggered:
            self.succeed(value)


class AnyOf(Event):
    """Triggers when the first of several events triggers.

    The value is a dict mapping the winning event(s) to their values.  A
    failed child event fails the composite.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed({ev: ev.value})


class AllOf(Event):
    """Triggers when all child events have triggered.

    The value is a dict mapping every event to its value.  The first failed
    child fails the composite.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class Process(Event):
    """A running simulated activity, driven by a generator.

    A process is itself an :class:`Event` that triggers when the generator
    returns (value = return value) or raises (failure).  This lets processes
    wait on each other by yielding the process object.
    """

    __slots__ = ("generator", "_waiting_on", "ctx")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "",
                 ctx: Any = None):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Trace context pinned to this process: the ambient context at spawn
        # time (or an explicit override), restored around every generator
        # resume so causality survives arbitrary interleavings.
        self.ctx = sim.ctx if ctx is None else ctx
        sim._schedule_pooled(0.0, self._resume, (None,))

    @property
    def alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its yield point.

        Interrupting a finished process is a no-op.
        """
        if self._triggered:
            return
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and not target.triggered:
            # Detach: the old target may still fire but we will ignore it.
            try:
                target._callbacks.remove(self._on_wait_done)
            except ValueError:
                pass
        self.sim._schedule_pooled(0.0, self._throw, (Interrupted(cause),))

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._step(lambda: self.generator.throw(exc))

    def _resume(self, value: Any) -> None:
        if self._triggered:
            return
        self._step(lambda: self.generator.send(value))

    def _resume_error(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._step(lambda: self.generator.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        self._waiting_on = None
        sim = self.sim
        if sim.tracer is None:
            # Fast path: tracing is off, so there is no ambient span context
            # to pin/restore around the resume.
            try:
                target = advance()
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupted as exc:
                self.fail(exc)
                return
            except BaseException as exc:  # process boundary: any error in user
                self.fail(exc)            # code must fail the process event
                return
            if not isinstance(target, Event):
                sim._schedule_pooled(
                    0.0, self._resume_error,
                    (SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"),))
                return
            self._waiting_on = target
            target.add_callback(self._on_wait_done)
            return
        prev, sim.ctx = sim.ctx, self.ctx
        try:
            try:
                target = advance()
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupted as exc:
                # An un-caught interrupt terminates the process "successfully
                # failed": surface it as a failure so waiters notice.
                self.fail(exc)
                return
            except BaseException as exc:  # process boundary: any error in user
                self.fail(exc)            # code must fail the process event
                return
            if not isinstance(target, Event):
                sim._schedule_pooled(
                    0.0, self._resume_error,
                    (SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"),))
                return
            self._waiting_on = target
            target.add_callback(self._on_wait_done)
        finally:
            # The generator may have activated a different span mid-resume;
            # re-pin it so the next resume sees it, then restore the caller's.
            self.ctx = sim.ctx
            sim.ctx = prev

    def _on_wait_done(self, ev: Event) -> None:
        if self._triggered or self._waiting_on is not ev:
            return
        if ev.ok:
            self._resume(ev.value)
        else:
            value = ev.value
            if not isinstance(value, BaseException):
                value = SimulationError(f"event failed with non-exception {value!r}")
            self._resume_error(value)


class Simulator:
    """The discrete-event scheduler and virtual clock.

    Two pending-event structures sit behind one total order:

    - a binary heap of ``(when, seq, ScheduledCall)`` for near events, the
      final ordering authority;
    - a hashed hierarchical timer wheel for far events (delay >=
      ``_WHEEL_CUTOFF``), which cascades entries down a level at a time and
      hands them to the heap just before they become due.

    Every entry reaches the heap before its fire time and the heap orders by
    ``(when, seq)`` with a global monotone ``seq``, so event order — FIFO
    among ties included — is byte-identical to the single-heap kernel.
    Cancelled entries are dropped wherever they are found, without advancing
    the clock, so they neither bloat the heap nor stretch run-until-drain.
    """

    __slots__ = ("_now", "_queue", "_counter", "_running", "_cutoff",
                 "_wheel_slots", "_wheel_order", "_wheel_next", "_wheel_count",
                 "_far", "_far_min", "_live", "_dead", "_pool", "ctx",
                 "tracer", "_san", "recorder", "_prof")

    def __init__(self, timer_wheel: bool = True, sanitizer: Any = None,
                 profiler: Any = None):
        self._now = 0.0
        self._queue: List = []
        self._counter = itertools.count()
        self._running = False
        # Timer wheel: per-level {slot_index: [ScheduledCall]} plus a heap of
        # occupied slot indices per level (lazily pruned).  ``_wheel_next``
        # caches the earliest occupied slot start across levels.  The wheel
        # cutoff is per-instance so disabling the wheel (heap-baseline mode)
        # folds into the same ``delay < cutoff`` test the hot path already
        # performs.
        self._cutoff = _WHEEL_CUTOFF if timer_wheel else _INF
        self._wheel_slots: List[dict] = [{} for _ in _WHEEL_WIDTHS]
        self._wheel_order: List[List[int]] = [[] for _ in _WHEEL_WIDTHS]
        self._wheel_next = _INF
        self._wheel_count = 0
        # Far-entry front buffer: schedule() parks far timers here with a
        # bare list append and they are only sorted into the wheel when the
        # clock approaches ``_far_min``.  Under the dominant
        # schedule-then-cancel pattern most entries are cancelled before the
        # buffer is ever organized, so they cost two O(1) list ops total.
        self._far: List[ScheduledCall] = []
        self._far_min = _INF
        # Live (not-yet-fired, not-cancelled) entries across heap and wheel,
        # plus the cancels-since-last-compaction-check countdown.
        self._live = 0
        self._dead = 0
        # Freelist of pooled ScheduledCall objects (internal, no handle ever
        # exposed, so recycling them is safe).
        self._pool: List[ScheduledCall] = []
        # Ambient trace context (an ``obs.tracing.SpanContext`` or None).
        # Captured by schedule() and pinned on spawned processes, so trace
        # context follows the causal chain of callbacks and resumes without
        # any explicit plumbing.  None whenever tracing is off.
        self.ctx: Any = None
        # The installed ``obs.tracing.Tracer`` (or None).  Components read
        # this at call time; assigning it retroactively enables tracing.
        self.tracer: Any = None
        # The attached ``sim.sansim.SimSan`` (or None).  Enabling it swaps
        # this instance's class to the instrumented subclass, so the base
        # class's hot paths carry no per-event sanitizer check at all —
        # the disabled cost is zero by construction, like the tracer-off
        # fast path.
        self._san: Any = None
        # The installed ``obs.flightrec.FlightRecorder`` (or None).
        # Components read this at log sites; None keeps the disabled cost
        # at one attribute load.
        self.recorder: Any = None
        # The attached ``obs.profiler.Profiler`` (or None).  Like the
        # sanitizer, enabling it swaps this instance's class to the
        # instrumented subclass, so the base hot loop carries no per-event
        # profiling check when disabled.
        self._prof: Any = None
        if sanitizer is not None:
            from .sansim import _install  # deferred: sansim imports kernel
            _install(self, sanitizer)
        if profiler is not None:
            # Deferred import for the same layering reason; mutually
            # exclusive with the sanitizer (both claim the class slot).
            from ..obs.profiler import _install as _install_prof
            _install_prof(self, profiler)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (schedulable, uncancelled) callbacks."""
        return self._live

    def queue_depth(self) -> int:
        """Physical entries held in the heap, the timer wheel, and the far
        buffer (dead entries included until they are swept); the heap
        high-water input."""
        return len(self._queue) + self._wheel_count + len(self._far)

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time.

        Returns a :class:`ScheduledCall` handle; ``handle.cancel()`` revokes
        the callback in O(1) without leaving a stale heap entry behind.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        when = self._now + delay
        # The ambient trace context rides along; ordering still compares only
        # (when, seq), so tracing never perturbs event order.  The entry
        # comes from the freelist when possible and is otherwise built via
        # __new__ + slot stores: schedule() runs millions of times per
        # experiment and the __init__ call frame is measurable.  Handing a
        # recycled entry out as a public handle is safe because it is marked
        # non-pooled here: it will never be auto-recycled at fire time, only
        # if its new owner calls release() again.
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry.when = when
            entry.seq = seq = next(self._counter)
            entry.fn = fn
            entry.args = args
            entry.ctx = self.ctx
            entry._pooled = False
        else:
            entry = _new_entry(ScheduledCall)
            entry.sim = self
            entry.when = when
            entry.seq = seq = next(self._counter)
            entry.fn = fn
            entry.args = args
            entry.ctx = self.ctx
            entry._pooled = False
        self._live += 1
        if delay < self._cutoff:
            heapq.heappush(self._queue, (when, seq, entry))
        else:
            self._far.append(entry)
            if when < self._far_min:
                self._far_min = when
        return entry

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, fn, *args)

    def schedule_periodic(self, period: float, fn: Callable,
                          *args: Any) -> PeriodicCall:
        """Run ``fn(*args)`` every ``period`` seconds until cancelled.

        Each tick reuses the pooled zero-allocation scheduling path, so a
        long-lived ticker (a fleet advancing 10⁵ aggregated UEs per tick)
        costs one recycled entry per period instead of a fresh ``Timeout``.
        The first tick fires at ``now + period``.
        """
        return PeriodicCall(self, period, fn, args)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is returned, so the
        callback cannot be cancelled — and the kernel recycles the entry the
        moment it fires.  Use it for callbacks that are never revoked
        (datagram delivery, completion notifications); at millions of events
        per run the saved allocation is the difference between a steady-state
        and a growing garbage set."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        # Body of _schedule_pooled, inlined: this runs once per datagram.
        when = self._now + delay
        seq = next(self._counter)
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry.when = when
            entry.seq = seq
            entry.fn = fn
            entry.args = args
            entry.ctx = self.ctx
        else:
            entry = _new_entry(ScheduledCall)
            entry.sim = self
            entry.when = when
            entry.seq = seq
            entry.fn = fn
            entry.args = args
            entry.ctx = self.ctx
            entry._pooled = True
        self._live += 1
        if delay < self._cutoff:
            heapq.heappush(self._queue, (when, seq, entry))
        else:
            self._far.append(entry)
            if when < self._far_min:
                self._far_min = when

    def _schedule_pooled(self, delay: float, fn: Callable, args: tuple) -> None:
        """Internal hot-path scheduling: recycles entry objects from the
        freelist.  No handle escapes, so pooled entries are never cancelled
        and can be reused the moment they fire."""
        when = self._now + delay
        seq = next(self._counter)
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry.when = when
            entry.seq = seq
            entry.fn = fn
            entry.args = args
            entry.ctx = self.ctx
        else:
            entry = _new_entry(ScheduledCall)
            entry.sim = self
            entry.when = when
            entry.seq = seq
            entry.fn = fn
            entry.args = args
            entry.ctx = self.ctx
            entry._pooled = True
        self._live += 1
        if delay < self._cutoff:
            heapq.heappush(self._queue, (when, seq, entry))
        else:
            self._far.append(entry)
            if when < self._far_min:
                self._far_min = when

    # -- timer wheel ------------------------------------------------------

    def _flush_far(self) -> None:
        """Organize the far buffer: cancelled entries are dropped, near
        entries go to the heap, the rest park in the wheel by *remaining*
        delay (slot start strictly after ``now``, as in the cascade).  Runs
        when the clock reaches ``_far_min``, i.e. at most once per
        ``_WHEEL_CUTOFF`` of virtual time, and every entry passes through at
        most once — amortized O(1) per schedule."""
        now = self._now
        queue = self._queue
        pool = self._pool
        far, self._far = self._far, []
        self._far_min = _INF
        for entry in far:
            if entry.fn is None:
                # Cancelled while buffered: two list ops total.  Released
                # handles go back to the freelist.
                if entry._pooled and len(pool) < _POOL_MAX:
                    pool.append(entry)
                continue
            remaining = entry.when - now
            if remaining < _WHEEL_CUTOFF:
                heapq.heappush(queue, (entry.when, entry.seq, entry))
            else:
                if remaining >= 4.0:
                    level = 3 if remaining >= 1024.0 else (
                        2 if remaining >= 64.0 else 1)
                else:
                    level = 0
                self._wheel_put(level, entry)

    def _wheel_put(self, level: int, entry: ScheduledCall) -> None:
        width = _WHEEL_WIDTHS[level]
        idx = int(entry.when / width)
        slots = self._wheel_slots[level]
        bucket = slots.get(idx)
        if bucket is None:
            slots[idx] = [entry]
            heapq.heappush(self._wheel_order[level], idx)
            start = idx * width
            if start < self._wheel_next:
                self._wheel_next = start
        else:
            bucket.append(entry)
        self._wheel_count += 1

    def _wheel_flush_min(self) -> None:
        """Empty the earliest occupied wheel slot: dead entries are dropped,
        near entries go to the heap, far entries cascade a level down (by
        offset from the slot start, so cascading strictly descends and
        terminates).  Recomputes ``_wheel_next``."""
        best_level = -1
        best_start = _INF
        best_idx = 0
        for level, order in enumerate(self._wheel_order):
            slots = self._wheel_slots[level]
            while order and order[0] not in slots:
                heapq.heappop(order)
            if order:
                start = order[0] * _WHEEL_WIDTHS[level]
                if start < best_start:
                    best_start = start
                    best_level = level
                    best_idx = order[0]
        if best_level < 0:
            self._wheel_next = _INF
            return
        heapq.heappop(self._wheel_order[best_level])
        bucket = self._wheel_slots[best_level].pop(best_idx)
        self._wheel_count -= len(bucket)
        queue = self._queue
        pool = self._pool
        for entry in bucket:
            if entry.fn is None:
                # Cancelled while parked: drop, never hits the heap.
                if entry._pooled and len(pool) < _POOL_MAX:
                    pool.append(entry)
                continue
            remaining = entry.when - best_start
            if best_level == 0 or remaining < _WHEEL_CUTOFF:
                heapq.heappush(queue, (entry.when, entry.seq, entry))
            else:
                if remaining >= 64.0:
                    level = 2
                elif remaining >= 4.0:
                    level = 1
                else:
                    level = 0
                self._wheel_put(level, entry)
        # New earliest slot (cascade may have created nearer ones).
        nxt = _INF
        for level, order in enumerate(self._wheel_order):
            slots = self._wheel_slots[level]
            while order and order[0] not in slots:
                heapq.heappop(order)
            if order:
                start = order[0] * _WHEEL_WIDTHS[level]
                if start < nxt:
                    nxt = start
        self._wheel_next = nxt

    def _compact(self) -> None:
        """Sweep dead (cancelled) entries out of the heap and every wheel
        slot.  O(physical entries), triggered from :meth:`ScheduledCall.cancel`
        only when the dead majority threshold is crossed, so the amortized
        cost per cancel is O(1).  Mutates the heap list in place: ``run()``
        holds a local reference to it."""
        pool = self._pool
        queue = self._queue
        live = []
        for item in queue:
            entry = item[2]
            if entry.fn is not None:
                live.append(item)
            elif entry._pooled and len(pool) < _POOL_MAX:
                pool.append(entry)
        heapq.heapify(live)
        queue[:] = live
        far = self._far
        survivors = []
        for entry in far:
            if entry.fn is not None:
                survivors.append(entry)
            elif entry._pooled and len(pool) < _POOL_MAX:
                pool.append(entry)
        far[:] = survivors
        self._far_min = min((e.when for e in far), default=_INF)
        count = 0
        nxt = _INF
        for level, slots in enumerate(self._wheel_slots):
            order = self._wheel_order[level]
            width = _WHEEL_WIDTHS[level]
            del order[:]
            for idx in list(slots):
                bucket = []
                for entry in slots[idx]:
                    if entry.fn is not None:
                        bucket.append(entry)
                    elif entry._pooled and len(pool) < _POOL_MAX:
                        pool.append(entry)
                if bucket:
                    slots[idx] = bucket
                    order.append(idx)
                    count += len(bucket)
                else:
                    del slots[idx]
            heapq.heapify(order)
            if order:
                start = order[0] * width
                if start < nxt:
                    nxt = start
        self._wheel_count = count
        self._wheel_next = nxt
        self._dead = 0

    def _surface(self) -> Optional[ScheduledCall]:
        """Bring the next live entry to the heap top and return it (without
        popping); sweeps cancelled entries and flushes due wheel slots.
        Returns None when nothing live remains.  Never advances the clock."""
        queue = self._queue
        pool = self._pool
        while True:
            while queue and queue[0][2].fn is None:
                entry = heapq.heappop(queue)[2]
                if entry._pooled and len(pool) < _POOL_MAX:
                    pool.append(entry)
            # A buffered far entry or a wheel slot starting at or before the
            # next event time may hold an entry due sooner; organize those
            # before trusting the heap top.  ``_far_min``/``_wheel_next``
            # are +inf whenever their structure is empty.
            if queue:
                top = queue[0][0]
                if self._far_min <= top:
                    self._flush_far()
                    continue
                if self._wheel_next <= top:
                    self._wheel_flush_min()
                    continue
                return queue[0][2]
            if self._far:
                self._flush_far()
                continue
            if self._wheel_count:
                self._wheel_flush_min()
                continue
            return None

    # -- awaitable factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def spawn(self, generator: Generator, name: str = "",
              ctx: Any = None) -> Process:
        """Start a new process from a generator.

        ``ctx`` pins a trace context on the process; by default the ambient
        context at spawn time is inherited.
        """
        return Process(self, generator, name, ctx=ctx)

    # -- execution ---------------------------------------------------------

    def _execute(self, entry: ScheduledCall) -> None:
        """Fire an entry already popped from the heap (clock already set)."""
        self._live -= 1
        fn = entry.fn
        args = entry.args
        ctx = entry.ctx
        entry.fn = None  # marks fired: a late cancel() is now a no-op
        if entry._pooled:
            entry.args = ()
            entry.ctx = None
            pool = self._pool
            if len(pool) < _POOL_MAX:
                pool.append(entry)
        if self.tracer is None:
            fn(*args)
        else:
            prev, self.ctx = self.ctx, ctx
            try:
                fn(*args)
            finally:
                self.ctx = prev

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if idle."""
        entry = self._surface()
        if entry is None:
            return False
        heapq.heappop(self._queue)
        self._now = entry.when
        self._execute(entry)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the live events drain or ``until`` (absolute time).

        Returns the clock value when the run stops.  When stopping at
        ``until``, the clock is advanced to exactly ``until`` and any events
        scheduled for later remain queued.  Cancelled callbacks never run
        and never advance the clock: a run whose tail is all-cancelled ends
        at the last live event.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heappop = heapq.heappop
        queue = self._queue
        try:
            if until is None:
                # Hot loop: no stop-time check; the tracer check stays
                # per-iteration so installing a tracer mid-run still works.
                # _surface() is inlined — one call frame per event is the
                # single largest fixed cost at millions of events/run.
                pool = self._pool
                while True:
                    if queue:
                        head = queue[0]
                        entry = head[2]
                        if entry.fn is None:
                            heappop(queue)
                            # Dead entries are only released entries here
                            # (pooled internals are never cancelled).
                            if entry._pooled and len(pool) < _POOL_MAX:
                                pool.append(entry)
                            continue
                        # _far_min / _wheel_next are +inf whenever the far
                        # buffer / wheel are empty, so the <= checks alone
                        # are safe (and one attribute load cheaper).
                        if self._far_min <= head[0]:
                            self._flush_far()
                            continue
                        if self._wheel_next <= head[0]:
                            self._wheel_flush_min()
                            continue
                    elif self._far:
                        self._flush_far()
                        continue
                    elif self._wheel_count:
                        self._wheel_flush_min()
                        continue
                    else:
                        break
                    heappop(queue)
                    self._now = head[0]
                    self._live -= 1
                    fn = entry.fn
                    args = entry.args
                    ctx = entry.ctx
                    entry.fn = None
                    if entry._pooled:
                        entry.args = ()
                        entry.ctx = None
                        if len(pool) < _POOL_MAX:
                            pool.append(entry)
                    if self.tracer is None:
                        fn(*args)
                    else:
                        prev, self.ctx = self.ctx, ctx
                        try:
                            fn(*args)
                        finally:
                            self.ctx = prev
                return self._now
            while True:
                entry = self._surface()
                if entry is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and entry.when > until:
                    self._now = until
                    break
                heappop(queue)
                self._now = entry.when
                self._execute(entry)
        finally:
            self._running = False
        return self._now

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` triggers; raise on failure or time limit."""
        while not event.triggered:
            entry = self._surface()
            if entry is None:
                raise SimulationError("deadlock: event queue drained while waiting")
            if entry.when > limit:
                raise SimulationError(f"time limit {limit} reached while waiting")
            heapq.heappop(self._queue)
            self._now = entry.when
            self._execute(entry)
        if not event.ok:
            value = event.value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"awaited event failed: {value!r}")
        return event.value
