"""Time-series recording and summary statistics for experiments.

A :class:`Monitor` collects named ``(time, value)`` series during a run and
offers the aggregations the paper's figures need: windowed means (CPU
utilization in Fig. 5), binned success rates (5-second CSR bins in Fig. 6),
and percentiles/medians (Fig. 8).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple


class Exemplar(NamedTuple):
    """One trace-linked sample: the bridge from a metric to its trace.

    Prometheus-style exemplars: a recorded value that also carries the
    trace id of the procedure that produced it, so an operator can jump
    from "attach p99 is 1.4s" to the exact trace that was that slow.
    """

    time: float
    value: float
    trace_id: int


class Series:
    """An append-only (time, value) series with simple analytics.

    Two recording modes:

    - **Exact** (default, ``max_samples=None``): every sample is retained,
      as before.
    - **Streaming** (``max_samples=N``): scalar aggregates (count, sum,
      min, max, last) stay exact, but the retained ``(time, value)`` buffer
      is bounded at ``N`` samples by deterministic stride decimation — when
      the buffer fills, every other retained sample is dropped and the
      keep-stride doubles.  At fleet scale (10⁶ samples per metric) the
      unbounded lists are the memory bill; the decimated buffer keeps
      percentiles/binning usable (a uniform-in-index subsample) while
      ``mean``/``total``/``max``/``last``/``count`` remain exact.  No RNG
      is involved, so replay determinism is untouched.
    """

    __slots__ = ("name", "times", "values", "max_samples", "_stride",
                 "_phase", "_count", "_sum", "_min", "_max", "_last_t",
                 "_last_v", "exemplars", "max_exemplars")

    def __init__(self, name: str, max_samples: Optional[int] = None,
                 max_exemplars: int = 64):
        if max_samples is not None and max_samples < 2:
            raise ValueError("max_samples must be >= 2 (or None for exact)")
        if max_exemplars < 2:
            raise ValueError("max_exemplars must be >= 2")
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self.max_samples = max_samples
        self._stride = 1      # keep every _stride-th sample when bounded
        self._phase = 0       # samples seen since the last retained one
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._last_t = 0.0
        self._last_v = 0.0
        # Trace-linked samples live in their own bounded buffer with its
        # own decimation: a bounded series halving its value buffer must
        # never be able to shed *every* exemplar from a window.
        self.exemplars: List[Exemplar] = []
        self.max_exemplars = max_exemplars

    def record(self, t: float, value: float,
               trace_id: Optional[int] = None) -> None:
        """Append a sample at time ``t``.

        Times must be non-decreasing; *equal* timestamps are explicitly
        allowed (several events in the same simulation tick record at the
        same ``sim.now``) and preserve insertion order.  Only a strictly
        backwards ``t`` raises.

        When ``trace_id`` is given the sample is also retained as an
        :class:`Exemplar` in a separate bounded buffer, so the metric can
        be resolved back to the trace that produced it even after the
        value buffer decimates.
        """
        if self._count and t < self._last_t:
            raise ValueError(f"series {self.name!r}: time went backwards ({t} < {self._last_t})")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._last_t = t
        self._last_v = value
        if trace_id is not None:
            self.exemplars.append(Exemplar(t, value, trace_id))
            if len(self.exemplars) >= self.max_exemplars:
                # Same stride trick as the value buffer, but independent:
                # keeps index-uniform coverage and always retains >= N/2.
                del self.exemplars[1::2]
        if self.max_samples is None:
            self.times.append(t)
            self.values.append(value)
            return
        # Streaming mode: retain every _stride-th sample; on overflow halve
        # the buffer and double the stride, so retention stays uniform in
        # sample index and the buffer oscillates in [N/2, N].
        if self._phase == 0:
            self.times.append(t)
            self.values.append(value)
            if len(self.times) >= self.max_samples:
                del self.times[1::2]
                del self.values[1::2]
                self._stride *= 2
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0

    def recent_samples(self, t0: float) -> List[Tuple[float, float, Optional[int]]]:
        """Retained ``(time, value, trace_id)`` rows with ``time > t0``.

        The window is *exclusive* at ``t0`` so callers shipping deltas
        (e.g. magmad's metric back-fill) can pass the previous batch's
        high-water mark without duplicating the boundary sample.  Trace
        ids are joined back from the exemplar buffer by exact
        ``(time, value)`` match; samples without one yield ``None``.
        """
        lo = bisect.bisect_right(self.times, t0)
        linked = {(e.time, e.value): e.trace_id for e in self.exemplars}
        return [(t, v, linked.get((t, v)))
                for t, v in zip(self.times[lo:], self.values[lo:])]

    def exemplars_between(self, t0: float, t1: float) -> List[Exemplar]:
        """Exemplars with ``t0 <= time < t1`` (retained ones only)."""
        return [e for e in self.exemplars if t0 <= e.time < t1]

    @property
    def count(self) -> int:
        """Exact number of recorded samples (retained or not)."""
        return self._count

    @property
    def retained(self) -> int:
        """Samples physically held in the buffer (== count when exact)."""
        return len(self.times)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def mean(self) -> float:
        if not self._count:
            raise ValueError(f"series {self.name!r} is empty")
        return self._sum / self._count

    def total(self) -> float:
        return self._sum

    def max(self) -> float:
        if not self._count:
            raise ValueError(f"series {self.name!r} is empty")
        return self._max

    def min(self) -> float:
        if not self._count:
            raise ValueError(f"series {self.name!r} is empty")
        return self._min

    def last(self) -> float:
        if not self._count:
            raise ValueError(f"series {self.name!r} is empty")
        return self._last_v

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the values, q in [0, 100]."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return percentile(self.values, q)

    def median(self) -> float:
        return self.percentile(50.0)

    def between(self, t0: float, t1: float) -> "Series":
        """Sub-series with t0 <= time < t1 (over retained samples)."""
        lo = bisect.bisect_left(self.times, t0)
        hi = bisect.bisect_left(self.times, t1)
        sub = Series(self.name)
        for t, v in zip(self.times[lo:hi], self.values[lo:hi]):
            sub.record(t, v)
        return sub

    def binned(self, width: float, t0: float = 0.0, t1: Optional[float] = None,
               agg: str = "mean") -> List[Tuple[float, float]]:
        """Aggregate into fixed-width bins.

        Returns ``[(bin_start, aggregate), ...]``.  ``agg`` is one of
        ``mean``, ``sum``, ``count``, ``max``.  Empty bins yield 0 for
        sum/count and NaN for mean/max.
        """
        if width <= 0:
            raise ValueError("bin width must be positive")
        if t1 is None:
            t1 = self.times[-1] + width if self.times else t0 + width
        # Bin count from the same robust index as the samples: float division
        # can land a hair above an exact multiple (5.6/0.7 -> 8.000…002),
        # which would manufacture a trailing empty bin via ceil().
        edge = _bin_index(t1, t0, width)
        nbins = max(1, edge if t0 + edge * width == t1 else edge + 1)
        buckets: List[List[float]] = [[] for _ in range(nbins)]
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                idx = _bin_index(t, t0, width)
                if idx >= nbins:  # float residue guard at the t1 edge
                    idx = nbins - 1
                buckets[idx].append(v)
        out = []
        for i, bucket in enumerate(buckets):
            start = t0 + i * width
            if agg == "count":
                out.append((start, float(len(bucket))))
            elif agg == "sum":
                out.append((start, float(sum(bucket))))
            elif agg == "mean":
                out.append((start, sum(bucket) / len(bucket) if bucket else float("nan")))
            elif agg == "max":
                out.append((start, max(bucket) if bucket else float("nan")))
            else:
                raise ValueError(f"unknown aggregation {agg!r}")
        return out


def _bin_index(t: float, t0: float, width: float) -> int:
    """Bucket index of ``t`` in fixed-width bins starting at ``t0``.

    ``int((t - t0) / width)`` alone is wrong at bin boundaries: float
    division rounds 0.2/0.1 down to 1.999…, misplacing a boundary sample
    into the previous bin, and can round the last edge *up* past the final
    bin.  Nudge the quotient until the invariant
    ``t0 + idx*width <= t < t0 + (idx+1)*width`` holds exactly in float
    arithmetic (at most one step in either direction).
    """
    idx = int((t - t0) / width)
    while t >= t0 + (idx + 1) * width:
        idx += 1
    while idx > 0 and t < t0 + idx * width:
        idx -= 1
    return idx


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q out of range: {q}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


class Monitor:
    """A registry of named series plus counter conveniences."""

    def __init__(self):
        self._series: Dict[str, Series] = {}
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}

    def series(self, name: str) -> Series:
        s = self._series.get(name)
        if s is None:
            s = Series(name)
            self._series[name] = s
        return s

    def bounded_series(self, name: str, max_samples: int = 4096) -> Series:
        """The named series in streaming mode (bounded sample buffer).

        Fleet-scale metrics record 10⁶+ samples; this keeps scalar
        aggregates exact while capping the retained buffer (see
        :class:`Series`).  The mode is fixed at first creation: asking for
        a bound on an existing exact series (or a different bound) raises,
        because silently dropping already-retained samples would corrupt
        the series' contract mid-run.
        """
        s = self._series.get(name)
        if s is None:
            s = Series(name, max_samples=max_samples)
            self._series[name] = s
        elif s.max_samples != max_samples:
            raise ValueError(
                f"series {name!r} already exists with max_samples="
                f"{s.max_samples}, asked for {max_samples}")
        return s

    def record(self, name: str, t: float, value: float,
               trace_id: Optional[int] = None) -> None:
        self.series(name).record(t, value, trace_id=trace_id)

    def percentile(self, name: str, q: float) -> float:
        """Percentile over a named series' values (raises if empty)."""
        return self.series(name).percentile(q)

    def median(self, name: str) -> float:
        return self.percentile(name, 50.0)

    def count(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins metric (e.g. cache size, subtable count)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def names(self) -> Iterable[str]:
        return self._series.keys()

    def has_series(self, name: str) -> bool:
        return name in self._series
