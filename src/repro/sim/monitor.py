"""Time-series recording and summary statistics for experiments.

A :class:`Monitor` collects named ``(time, value)`` series during a run and
offers the aggregations the paper's figures need: windowed means (CPU
utilization in Fig. 5), binned success rates (5-second CSR bins in Fig. 6),
and percentiles/medians (Fig. 8).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Series:
    """An append-only (time, value) series with simple analytics."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, t: float, value: float) -> None:
        """Append a sample at time ``t``.

        Times must be non-decreasing; *equal* timestamps are explicitly
        allowed (several events in the same simulation tick record at the
        same ``sim.now``) and preserve insertion order.  Only a strictly
        backwards ``t`` raises.
        """
        if self.times and t < self.times[-1]:
            raise ValueError(f"series {self.name!r}: time went backwards ({t} < {self.times[-1]})")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def total(self) -> float:
        return sum(self.values)

    def max(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    def last(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return self.values[-1]

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the values, q in [0, 100]."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return percentile(self.values, q)

    def median(self) -> float:
        return self.percentile(50.0)

    def between(self, t0: float, t1: float) -> "Series":
        """Sub-series with t0 <= time < t1."""
        lo = bisect.bisect_left(self.times, t0)
        hi = bisect.bisect_left(self.times, t1)
        sub = Series(self.name)
        sub.times = self.times[lo:hi]
        sub.values = self.values[lo:hi]
        return sub

    def binned(self, width: float, t0: float = 0.0, t1: Optional[float] = None,
               agg: str = "mean") -> List[Tuple[float, float]]:
        """Aggregate into fixed-width bins.

        Returns ``[(bin_start, aggregate), ...]``.  ``agg`` is one of
        ``mean``, ``sum``, ``count``, ``max``.  Empty bins yield 0 for
        sum/count and NaN for mean/max.
        """
        if width <= 0:
            raise ValueError("bin width must be positive")
        if t1 is None:
            t1 = self.times[-1] + width if self.times else t0 + width
        # Bin count from the same robust index as the samples: float division
        # can land a hair above an exact multiple (5.6/0.7 -> 8.000…002),
        # which would manufacture a trailing empty bin via ceil().
        edge = _bin_index(t1, t0, width)
        nbins = max(1, edge if t0 + edge * width == t1 else edge + 1)
        buckets: List[List[float]] = [[] for _ in range(nbins)]
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                idx = _bin_index(t, t0, width)
                if idx >= nbins:  # float residue guard at the t1 edge
                    idx = nbins - 1
                buckets[idx].append(v)
        out = []
        for i, bucket in enumerate(buckets):
            start = t0 + i * width
            if agg == "count":
                out.append((start, float(len(bucket))))
            elif agg == "sum":
                out.append((start, float(sum(bucket))))
            elif agg == "mean":
                out.append((start, sum(bucket) / len(bucket) if bucket else float("nan")))
            elif agg == "max":
                out.append((start, max(bucket) if bucket else float("nan")))
            else:
                raise ValueError(f"unknown aggregation {agg!r}")
        return out


def _bin_index(t: float, t0: float, width: float) -> int:
    """Bucket index of ``t`` in fixed-width bins starting at ``t0``.

    ``int((t - t0) / width)`` alone is wrong at bin boundaries: float
    division rounds 0.2/0.1 down to 1.999…, misplacing a boundary sample
    into the previous bin, and can round the last edge *up* past the final
    bin.  Nudge the quotient until the invariant
    ``t0 + idx*width <= t < t0 + (idx+1)*width`` holds exactly in float
    arithmetic (at most one step in either direction).
    """
    idx = int((t - t0) / width)
    while t >= t0 + (idx + 1) * width:
        idx += 1
    while idx > 0 and t < t0 + idx * width:
        idx -= 1
    return idx


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q out of range: {q}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


class Monitor:
    """A registry of named series plus counter conveniences."""

    def __init__(self):
        self._series: Dict[str, Series] = {}
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}

    def series(self, name: str) -> Series:
        s = self._series.get(name)
        if s is None:
            s = Series(name)
            self._series[name] = s
        return s

    def record(self, name: str, t: float, value: float) -> None:
        self.series(name).record(t, value)

    def percentile(self, name: str, q: float) -> float:
        """Percentile over a named series' values (raises if empty)."""
        return self.series(name).percentile(q)

    def median(self, name: str) -> float:
        return self.percentile(name, 50.0)

    def count(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins metric (e.g. cache size, subtable count)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def names(self) -> Iterable[str]:
        return self._series.keys()

    def has_series(self, name: str) -> bool:
        return name in self._series
