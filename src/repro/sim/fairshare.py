"""Max-min fair allocation (water-filling).

Used in two places that the paper's results depend on:

- the radio capacity model (sharing a cell's throughput across UEs), and
- the CPU model's flexible scheduling mode (sharing cores between the
  control-plane and user-plane work classes the way a work-conserving
  kernel scheduler does - light classes get their full demand, heavy
  classes split what remains).
"""

from __future__ import annotations

from typing import Dict


def max_min_share(offered: Dict[str, float], capacity: float,
                  per_user_cap: float = float("inf")) -> Dict[str, float]:
    """Max-min fair allocation of ``capacity`` across offered demands.

    Users demanding less than the fair share are granted in full; the
    leftover is redistributed among the rest.  ``per_user_cap`` bounds any
    single user's allocation (e.g. a UE's MCS peak rate).
    """
    if capacity < 0 or per_user_cap <= 0:
        raise ValueError("capacity must be >= 0, per-user cap > 0")
    demands = {u: min(rate, per_user_cap) for u, rate in offered.items()
               if rate > 0}
    allocation = {u: 0.0 for u in offered}
    remaining = capacity
    active = sorted(demands, key=lambda u: demands[u])
    while active and remaining > 1e-12:
        share = remaining / len(active)
        satisfied = [u for u in active if demands[u] <= share]
        if not satisfied:
            for u in active:
                allocation[u] = share
            return allocation
        for u in satisfied:
            allocation[u] = demands[u]
            remaining -= demands[u]
        satisfied_set = set(satisfied)
        active = [u for u in active if u not in satisfied_set]
    return allocation
