"""Synchronization primitives for simulated processes.

These mirror the small set of primitives the rest of the system needs:

- :class:`Resource` — a counted semaphore (e.g. worker pools).
- :class:`Store` — an unbounded FIFO mailbox (e.g. service request queues).
- :class:`Signal` — a reusable broadcast condition (e.g. "config changed").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from .kernel import Event, Simulator


class Resource:
    """A counted resource with FIFO acquisition.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = self.sim.event("resource.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        self._in_use -= 1


class Store:
    """Unbounded FIFO queue of items; ``get()`` blocks until an item exists."""

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event(f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items


class Signal:
    """A reusable broadcast condition.

    ``wait()`` returns an event for the *next* firing; ``fire(value)`` wakes
    every current waiter.  Unlike :class:`~repro.sim.kernel.Event`, a Signal
    can fire many times.
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        ev = self.sim.event(f"{self.name}.wait")
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        woken = 0
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(value)
                woken += 1
        return woken
