"""EAP-style challenge/response authentication for WiFi.

Instead of shipping the password over the air, the AP runs an EAP-like
exchange: the authenticator (backed by the AGW's RADIUS frontend) issues a
challenge; the supplicant proves possession of the shared secret with an
HMAC response.  This mirrors how enterprise WiFi (802.1X) actually
authenticates and keeps WiFi on par with the LTE/5G substrates, where
authentication is also challenge/response (EPS-AKA).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


@dataclass(frozen=True)
class EapIdentity:
    """Supplicant announces who it is."""

    identity: str


@dataclass(frozen=True)
class EapChallenge:
    """Authenticator's challenge."""

    identity: str
    nonce: bytes


@dataclass(frozen=True)
class EapResponse:
    """Supplicant's proof of the shared secret."""

    identity: str
    proof: bytes


@dataclass(frozen=True)
class EapSuccess:
    identity: str


@dataclass(frozen=True)
class EapFailure:
    identity: str
    cause: str = "bad credentials"


def compute_proof(secret: str, nonce: bytes) -> bytes:
    """Supplicant side: HMAC(secret, nonce)."""
    return hmac.new(secret.encode(), b"eap:" + nonce,
                    hashlib.sha256).digest()


def verify_proof(secret: str, nonce: bytes, proof: bytes) -> bool:
    """Authenticator side: constant-time comparison."""
    return hmac.compare_digest(compute_proof(secret, nonce), proof)


def make_nonce(identity: str, counter: int) -> bytes:
    """Deterministic per-exchange nonce (replicable simulations)."""
    return hashlib.sha256(f"eap-nonce:{identity}:{counter}".encode()).digest()
