"""Captive portal: the AccessParks-style WiFi front door (§4.3.1).

In the AccessParks deployment, per-user policy lives in a pre-existing
captive portal + prepaid billing system at the WiFi layer, while Magma's
LTE network just provides unrestricted backhaul to the APs.  This module
models that portal: voucher-based prepaid accounts, per-voucher time and
data allowances, and an allowlist the AP consults before forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class PortalError(Exception):
    """Invalid voucher or login state."""


@dataclass
class Voucher:
    code: str
    data_allowance_bytes: Optional[int]   # None = unlimited
    time_allowance_s: Optional[float]     # None = unlimited
    used_bytes: int = 0
    activated_at: Optional[float] = None


@dataclass
class PortalSession:
    client_mac: str
    voucher_code: str
    started_at: float


class CaptivePortal:
    """Voucher-gated access control at the WiFi edge."""

    def __init__(self, clock=None):
        self._clock = clock or (lambda: 0.0)
        self._vouchers: Dict[str, Voucher] = {}
        self._sessions: Dict[str, PortalSession] = {}
        self.stats = {"logins": 0, "rejected": 0, "expired": 0}

    def issue_voucher(self, code: str,
                      data_allowance_bytes: Optional[int] = None,
                      time_allowance_s: Optional[float] = None) -> Voucher:
        if code in self._vouchers:
            raise PortalError(f"voucher {code!r} already issued")
        voucher = Voucher(code=code,
                          data_allowance_bytes=data_allowance_bytes,
                          time_allowance_s=time_allowance_s)
        self._vouchers[code] = voucher
        return voucher

    def login(self, client_mac: str, voucher_code: str) -> PortalSession:
        voucher = self._vouchers.get(voucher_code)
        if voucher is None:
            self.stats["rejected"] += 1
            raise PortalError("unknown voucher")
        if self._voucher_exhausted(voucher):
            self.stats["rejected"] += 1
            raise PortalError("voucher exhausted")
        now = self._clock()
        if voucher.activated_at is None:
            voucher.activated_at = now
        session = PortalSession(client_mac=client_mac,
                                voucher_code=voucher_code, started_at=now)
        self._sessions[client_mac] = session
        self.stats["logins"] += 1
        return session

    def logout(self, client_mac: str) -> None:
        self._sessions.pop(client_mac, None)

    def is_allowed(self, client_mac: str) -> bool:
        session = self._sessions.get(client_mac)
        if session is None:
            return False
        voucher = self._vouchers[session.voucher_code]
        if self._voucher_exhausted(voucher):
            self.stats["expired"] += 1
            del self._sessions[client_mac]
            return False
        return True

    def record_usage(self, client_mac: str, used_bytes: int) -> None:
        session = self._sessions.get(client_mac)
        if session is None:
            return
        self._vouchers[session.voucher_code].used_bytes += used_bytes

    def _voucher_exhausted(self, voucher: Voucher) -> bool:
        if (voucher.data_allowance_bytes is not None
                and voucher.used_bytes >= voucher.data_allowance_bytes):
            return True
        if (voucher.time_allowance_s is not None
                and voucher.activated_at is not None
                and self._clock() - voucher.activated_at >
                voucher.time_allowance_s):
            return True
        return False

    def active_sessions(self) -> int:
        return len(self._sessions)
