"""RADIUS messages: WiFi's AAA protocol (paper Table 1).

In a Magma carrier-WiFi deployment the access point authenticates users via
RADIUS against the AGW, which terminates the protocol in its RADIUS
frontend and maps it onto the same generic subscriber/session functions
LTE and 5G use.
"""

from __future__ import annotations

from dataclasses import dataclass

RADIUS_SERVICE = "radius"


@dataclass(frozen=True)
class EapStartRequest:
    """First RADIUS round trip: the supplicant identifies itself and the
    server answers with an EAP challenge."""

    username: str
    ap_id: str
    client_mac: str


@dataclass(frozen=True)
class EapChallengeResponse:
    username: str
    nonce: bytes


@dataclass(frozen=True)
class AccessRequest:
    username: str          # the subscriber id (IMSI-equivalent)
    ap_id: str
    client_mac: str
    eap_proof: bytes = b""  # HMAC proof over the server's challenge
    nonce: bytes = b""      # echo of the challenge this proof answers


@dataclass(frozen=True)
class AccessAccept:
    username: str
    framed_ip: str         # the IP assigned to the client
    session_id: str


@dataclass(frozen=True)
class AccessReject:
    username: str
    cause: str = "authentication failure"


@dataclass(frozen=True)
class AccountingRequest:
    ACCT_START = "start"
    ACCT_STOP = "stop"
    ACCT_INTERIM = "interim"

    username: str
    session_id: str
    acct_type: str
    bytes_dl: int = 0
    bytes_ul: int = 0


@dataclass(frozen=True)
class AccountingResponse:
    session_id: str
