"""WiFi substrate: APs, RADIUS AAA, captive portal."""

from . import eap
from .ap import WifiAp, WifiClientState, DEFAULT_AP_CAPACITY_MBPS
from .captive_portal import CaptivePortal, PortalError, PortalSession, Voucher
from .radius import (
    AccessAccept,
    AccessReject,
    AccessRequest,
    AccountingRequest,
    AccountingResponse,
    RADIUS_SERVICE,
)

__all__ = [
    "AccessAccept",
    "AccessReject",
    "AccessRequest",
    "AccountingRequest",
    "AccountingResponse",
    "CaptivePortal",
    "eap",
    "DEFAULT_AP_CAPACITY_MBPS",
    "PortalError",
    "PortalSession",
    "RADIUS_SERVICE",
    "Voucher",
    "WifiAp",
    "WifiClientState",
]
