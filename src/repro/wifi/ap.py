"""WiFi access point and client models.

The AP associates clients locally (best-effort, unlicensed spectrum:
contention shrinks per-client throughput as load grows) and authenticates
them against the AGW's RADIUS frontend.  Compare with
:class:`~repro.lte.enodeb.Enodeb`: same shape, different protocol - which
is exactly the paper's point about abstracting the radio technology.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..net.rpc import RpcChannel, RpcError
from ..net.simnet import Network
from ..sim.fairshare import max_min_share
from ..sim.kernel import Event, Simulator
from .radius import (
    AccessAccept,
    AccessReject,
    AccountingRequest,
    RADIUS_SERVICE,
)

DEFAULT_AP_CAPACITY_MBPS = 50.0   # contended unlicensed spectrum
DEFAULT_MAX_CLIENTS = 64


@dataclass
class WifiClientState:
    username: str
    mac: str
    ip: Optional[str] = None
    session_id: Optional[str] = None
    offered_mbps: float = 0.0
    connected: bool = False


class WifiAp:
    """One access point, backhauled to an AGW."""

    def __init__(self, sim: Simulator, network: Network, ap_id: str,
                 agw_node: str, capacity_mbps: float = DEFAULT_AP_CAPACITY_MBPS,
                 max_clients: int = DEFAULT_MAX_CLIENTS,
                 radius_deadline: float = 5.0):
        if capacity_mbps <= 0 or max_clients < 1:
            raise ValueError("capacity and max_clients must be positive")
        self.sim = sim
        self.network = network
        self.ap_id = ap_id
        self.agw_node = agw_node
        self.capacity_mbps = capacity_mbps
        self.max_clients = max_clients
        self.radius_deadline = radius_deadline
        self._clients: Dict[str, WifiClientState] = {}
        self._mac_counter = itertools.count(1)
        network.add_node(ap_id)
        self._channel = RpcChannel(sim, network, ap_id, agw_node)
        self.stats = {"associations": 0, "rejected_full": 0,
                      "auth_ok": 0, "auth_failed": 0, "disconnects": 0}

    # -- client lifecycle ---------------------------------------------------------

    def connect(self, username: str, secret: str) -> Event:
        """Associate + authenticate a client.

        The returned event succeeds with the client's
        :class:`WifiClientState` (``connected`` tells success) - mirroring
        the LTE UE's AttachOutcome convention.
        """
        done = self.sim.event(f"wifi.{self.ap_id}.connect.{username}")
        if len(self._clients) >= self.max_clients:
            self.stats["rejected_full"] += 1
            done.succeed(WifiClientState(username=username, mac="",
                                         connected=False))
            return done
        mac = f"{self.ap_id}-mac-{next(self._mac_counter)}"
        state = WifiClientState(username=username, mac=mac)
        self._clients[username] = state
        self.stats["associations"] += 1

        def proc(sim):
            from . import eap
            from .radius import AccessRequest, EapStartRequest
            try:
                # Round 1: EAP identity -> challenge.
                challenge = yield self._channel.call(
                    RADIUS_SERVICE, "eap_start",
                    EapStartRequest(username=username, ap_id=self.ap_id,
                                    client_mac=mac),
                    deadline=self.radius_deadline)
                # Round 2: proof of the shared secret.
                request = AccessRequest(
                    username=username, ap_id=self.ap_id, client_mac=mac,
                    nonce=challenge.nonce,
                    eap_proof=eap.compute_proof(secret, challenge.nonce))
                response = yield self._channel.call(
                    RADIUS_SERVICE, "access_request", request,
                    deadline=self.radius_deadline)
            except RpcError:
                response = AccessReject(username=username, cause="timeout")
            if isinstance(response, AccessAccept):
                state.ip = response.framed_ip
                state.session_id = response.session_id
                state.connected = True
                self.stats["auth_ok"] += 1
            else:
                self._clients.pop(username, None)
                self.stats["auth_failed"] += 1
            done.succeed(state)

        self.sim.spawn(proc(self.sim), name=f"wifi-auth:{username}")
        return done

    def disconnect(self, username: str) -> None:
        state = self._clients.pop(username, None)
        if state is None or not state.connected:
            return
        self.stats["disconnects"] += 1

        def proc(sim):
            request = AccountingRequest(
                username=username, session_id=state.session_id,
                acct_type=AccountingRequest.ACCT_STOP)
            try:
                yield self._channel.call(RADIUS_SERVICE, "accounting",
                                         request,
                                         deadline=self.radius_deadline)
            except RpcError:
                pass

        self.sim.spawn(proc(self.sim), name=f"wifi-acct-stop:{username}")

    # -- traffic ---------------------------------------------------------------------

    def set_offered_rate(self, username: str, mbps: float) -> None:
        state = self._clients.get(username)
        if state is None:
            raise KeyError(f"client {username!r} not associated")
        if mbps < 0:
            raise ValueError("offered rate must be >= 0")
        state.offered_mbps = mbps

    def allocate(self) -> Dict[str, float]:
        """Per-client radio throughput (contended, max-min fair)."""
        offered = {u: s.offered_mbps for u, s in self._clients.items()
                   if s.connected}
        return max_min_share(offered, self.capacity_mbps)

    def client(self, username: str) -> Optional[WifiClientState]:
        return self._clients.get(username)

    def client_count(self) -> int:
        return len(self._clients)
