"""Digest-based desired-state reconciliation (the check-in protocol).

The wire protocol mirrors real Magma's subscriberdb digest streaming
(and the notify+delta directory-sync shape of enterprise replication
systems): steady-state check-ins carry O(namespaces) root digests, and a
divergence is narrowed by walking the digest tree, shipping only the
divergent leaf buckets as exact key deltas with tombstones.

Three pieces, all sans-io so the same engine runs over simulated RPC
(``magmad``), direct calls (benchmarks), and tests:

- :class:`DigestMirror` — the gateway's digest trees over its *applied*
  configuration, rebuilt from full bundles and updated by deltas.
- :class:`ReconcileServer` — the orchestrator side: compares roots at
  check-in, expands requested tree nodes, and computes per-leaf deltas
  from the gateway's per-key entry digests.
- :class:`ReconcileClient` — the gateway-side walk as a request/response
  state machine: ``start()`` consumes the check-in's sync info and
  returns the first follow-up request (or None); ``feed()`` consumes
  each response and returns the next request until converged.

Convergence takes at most ``depth`` follow-up rounds: each round either
descends one tree level or applies leaf deltas, and applying a leaf
delta makes that leaf digest-equal by construction.  A check-in that
diverges mid-walk (a concurrent northbound write) simply converges on
the next check-in — the protocol inherits the paper's "one successful
sync heals everything" property at leaf granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...obs import profiler as _profiler
from .digest import DigestTree, NodePath, OverlayTree

#: Wire labels for the config namespaces a gateway syncs, in push order.
SYNC_LABELS: Tuple[str, ...] = ("subscribers", "policies", "ran")


class DigestMirror:
    """Digest trees over the configuration a gateway has applied.

    The mirror tracks *desired state as applied* — it is rebuilt from
    full bundles and advanced by reconcile deltas, not derived from the
    live stores, so runtime-state writes (e.g. the MME's federated
    profile cache fills) never perturb the sync fingerprint.
    """

    def __init__(self, fanout: int = 16, depth: int = 2,
                 labels: Tuple[str, ...] = SYNC_LABELS,
                 base: Optional["DigestMirror"] = None):
        self.fanout = fanout
        self.depth = depth
        self.labels = labels
        if base is not None:
            self.trees = {label: OverlayTree(base.trees[label])
                          for label in labels}
        else:
            self.trees = {label: DigestTree(fanout, depth)
                          for label in labels}

    def overlay(self) -> "DigestMirror":
        """A copy-on-write view sharing this mirror's current state."""
        return DigestMirror(self.fanout, self.depth, self.labels, base=self)

    def rebuild(self, label: str, mapping: Dict[str, Any]) -> None:
        """Reset one namespace's tree from a full desired-state bundle."""
        tree = DigestTree(self.fanout, self.depth)
        for key, value in mapping.items():
            tree.put(key, value)
        self.trees[label] = tree

    def apply_delta(self, label: str, upserts: Dict[str, Any],
                    deletes: List[str]) -> None:
        tree = self.trees[label]
        for key in deletes:
            tree.delete(key)
        for key, value in upserts.items():
            tree.put(key, value)

    def roots(self) -> Dict[str, int]:
        return {label: tree.root() for label, tree in self.trees.items()}

    def node(self, label: str, path: NodePath) -> int:
        return self.trees[label].node(path)

    def is_leaf(self, path: NodePath) -> bool:
        return len(path) == self.depth

    def leaf_entries(self, label: str, path: NodePath) -> Dict[str, int]:
        return self.trees[label].leaf_entries(path)


class ReconcileServer:
    """Orchestrator-side digest comparison and delta computation.

    ``scope`` maps a wire label + network id to the store namespace
    (multi-tenant scoping lives in statesync; this engine only needs the
    mapping function).
    """

    def __init__(self, digests, store,
                 scope: Callable[[str, str], str],
                 label_namespaces: Optional[Dict[str, str]] = None):
        self.digests = digests
        self.store = store
        self.scope = scope
        self.label_namespaces = label_namespaces or \
            {label: label for label in SYNC_LABELS}

    def _namespace(self, label: str, network_id: str) -> str:
        return self.scope(self.label_namespaces[label], network_id)

    def roots(self, network_id: str) -> Dict[str, int]:
        return {label: self.digests.root(self._namespace(label, network_id))
                for label in self.label_namespaces}

    def sync_info(self, network_id: str,
                  gateway_roots: Dict[str, int]) -> Dict[str, Any]:
        """Per-label sync openers for namespaces whose roots diverge.

        Matching namespaces are elided entirely; a divergent one opens
        with the orchestrator's root plus the children of the root, so
        the gateway's first follow-up already starts one level down.
        """
        out: Dict[str, Any] = {}
        for label in self.label_namespaces:
            tree = self.digests.tree(self._namespace(label, network_id))
            root = tree.root()
            if gateway_roots.get(label) != root:
                out[label] = {"root": root, "children": tree.children(())}
        return out

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One reconcile round: expand internal nodes, emit leaf deltas."""
        prof = _profiler.ACTIVE
        if prof is None:
            return self._handle(request)
        prof.push("sync.reconcile")
        try:
            return self._handle(request)
        finally:
            prof.pop()

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        network_id = request["network_id"]
        nodes: Dict[str, Dict[NodePath, Dict[NodePath, int]]] = {}
        deltas: Dict[str, Dict[NodePath, Dict[str, Any]]] = {}
        for label, paths in request.get("ns_paths", {}).items():
            tree = self.digests.tree(self._namespace(label, network_id))
            nodes[label] = {tuple(path): tree.children(path)
                            for path in paths}
        for label, leaves in request.get("ns_leaves", {}).items():
            namespace = self._namespace(label, network_id)
            tree = self.digests.tree(namespace)
            label_deltas = deltas.setdefault(label, {})
            for path, gateway_entries in leaves.items():
                label_deltas[tuple(path)] = self._leaf_delta(
                    tree, namespace, tuple(path), gateway_entries)
        return {"nodes": nodes, "deltas": deltas,
                "roots": self.roots(network_id)}

    def _leaf_delta(self, tree: DigestTree, namespace: str, path: NodePath,
                    gateway_entries: Dict[str, int]) -> Dict[str, Any]:
        """Exact delta converging one gateway leaf onto the orchestrator's.

        ``set`` carries adds and updates (keys the gateway lacks or holds
        with a different digest); ``delete`` carries tombstones for keys
        the gateway holds that no longer exist here.
        """
        mine = tree.leaf_entries(path)
        upserts = {key: self.store.get(namespace, key)
                   for key, digest in mine.items()
                   if gateway_entries.get(key) != digest}
        tombstones = [key for key in gateway_entries if key not in mine]
        return {"set": upserts, "delete": tombstones}


@dataclass
class ReconcileResult:
    """Outcome of one gateway reconcile conversation."""

    converged: bool
    rounds: int = 0
    config_version: int = 0
    upserts: int = 0
    tombstones: int = 0
    leaves_shipped: int = 0
    labels_elided: int = 0
    labels_synced: int = 0
    aborted: bool = field(default=False)


class ReconcileClient:
    """Gateway-side digest walk as a sans-io request/response machine.

    Usage::

        client = ReconcileClient(mirror, apply_delta, network_id, gw_id)
        request = client.start(checkin_response)
        while request is not None:
            response = <send statesync/reconcile request, await response>
            request = client.feed(response)
        result = client.result()

    ``apply_delta(label, upserts, deletes, version)`` must apply the
    delta to the real stores; the client updates the mirror itself.
    """

    def __init__(self, mirror: DigestMirror,
                 apply_delta: Callable[[str, Dict[str, Any], List[str], int],
                                       None],
                 network_id: str, gateway_id: str,
                 max_rounds: Optional[int] = None):
        self.mirror = mirror
        self.apply_delta = apply_delta
        self.network_id = network_id
        self.gateway_id = gateway_id
        # Each round either descends one level or ships leaf deltas, so
        # depth rounds always suffice; +1 tolerates a root opener that
        # was already at leaf level (depth-1 trees).
        self.max_rounds = max_rounds if max_rounds is not None \
            else mirror.depth + 1
        self._rounds = 0
        self._version = 0
        self._target_roots: Dict[str, int] = {}
        self._upserts = 0
        self._tombstones = 0
        self._leaves = 0
        self._synced_labels = 0

    def start(self, checkin_response: Dict[str, Any]) -> \
            Optional[Dict[str, Any]]:
        """Consume the check-in response; return the first follow-up
        request, or None when no walk is needed."""
        sync = checkin_response.get("sync")
        self._version = checkin_response.get("config_version", 0)
        if not sync:
            return None
        self._synced_labels = len(sync)
        self._target_roots = {label: info["root"]
                              for label, info in sync.items()}
        pending = {label: info["children"] for label, info in sync.items()}
        return self._next_request(pending)

    def feed(self, response: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Consume a reconcile response; return the next request or None."""
        self._version = response.get("config_version", self._version)
        self._target_roots = response.get("roots", self._target_roots)
        for label, label_deltas in response.get("deltas", {}).items():
            for _path, delta in label_deltas.items():
                upserts = delta.get("set", {})
                deletes = delta.get("delete", [])
                self.apply_delta(label, upserts, deletes, self._version)
                self.mirror.apply_delta(label, upserts, deletes)
                self._upserts += len(upserts)
                self._tombstones += len(deletes)
                self._leaves += 1
        if self._rounds >= self.max_rounds:
            return None
        # Merge multiple expanded parents per label.
        pending: Dict[str, Dict[NodePath, int]] = {}
        for label, by_parent in response.get("nodes", {}).items():
            target = pending.setdefault(label, {})
            for children in by_parent.values():
                target.update(children)
        return self._next_request(pending)

    def _next_request(self, pending: Dict[str, Dict[NodePath, int]]) -> \
            Optional[Dict[str, Any]]:
        ns_paths: Dict[str, List[NodePath]] = {}
        ns_leaves: Dict[str, Dict[NodePath, Dict[str, int]]] = {}
        for label, nodes in pending.items():
            for path, digest in nodes.items():
                if self.mirror.node(label, path) == digest:
                    continue
                if self.mirror.is_leaf(path):
                    ns_leaves.setdefault(label, {})[path] = \
                        self.mirror.leaf_entries(label, path)
                else:
                    ns_paths.setdefault(label, []).append(path)
        if not ns_paths and not ns_leaves:
            return None
        self._rounds += 1
        return {"gateway_id": self.gateway_id,
                "network_id": self.network_id,
                "ns_paths": ns_paths,
                "ns_leaves": ns_leaves}

    def result(self) -> ReconcileResult:
        converged = all(
            self.mirror.trees[label].root() == root
            for label, root in self._target_roots.items()) \
            if self._target_roots else True
        return ReconcileResult(
            converged=converged,
            rounds=self._rounds,
            config_version=self._version,
            upserts=self._upserts,
            tombstones=self._tombstones,
            leaves_shipped=self._leaves,
            labels_synced=self._synced_labels)
