"""Merkle-digest desired-state reconciliation + orchestrator sharding.

The scale-out half of §3.4's desired-state model: check-ins carry
namespace digests instead of version numbers alone, divergence ships
leaf-bucket deltas instead of full bundles, and gateways partition
across ``StateSync`` shards by consistent hash.  See DESIGN.md §6.6.
"""

from .digest import (
    DIGEST_BYTES,
    DigestIndex,
    DigestTree,
    NodePath,
    OverlayTree,
    canonical_bytes,
    entry_digest,
    key_hash,
)
from .reconcile import (
    SYNC_LABELS,
    DigestMirror,
    ReconcileClient,
    ReconcileResult,
    ReconcileServer,
)
from .shard import (
    DEFAULT_VNODES,
    ConsistentHashRing,
    MergedGatewayView,
    MergedMetricsView,
    ShardRouter,
)

__all__ = [
    "DIGEST_BYTES",
    "DEFAULT_VNODES",
    "ConsistentHashRing",
    "DigestIndex",
    "DigestMirror",
    "DigestTree",
    "MergedGatewayView",
    "MergedMetricsView",
    "NodePath",
    "OverlayTree",
    "ReconcileClient",
    "ReconcileResult",
    "ReconcileServer",
    "ShardRouter",
    "SYNC_LABELS",
    "canonical_bytes",
    "entry_digest",
    "key_hash",
]
