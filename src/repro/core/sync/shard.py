"""Consistent-hash sharding of the orchestrator control plane.

§3.2's orchestrator is a horizontally scalable cloud service; TEGRA makes
the same argument for sharded mobile-core state services.  This module
partitions gateways across N ``StateSync`` shards by consistent hash of
``gateway_id``:

- :class:`ConsistentHashRing` — a vnode ring mapping any string key to a
  shard.  Consistent hashing (rather than ``hash(gid) % N``) keeps
  assignments stable under reshards: growing the ring moves only
  ~1/N of the gateways.
- :class:`ShardRouter` — the thin check-in router: resolves the owning
  shard for a gateway and exposes it for in-process delegation (the main
  orchestrator node) or direct addressing (gateways connecting straight
  to their shard's node).
- :class:`MergedGatewayView` / :class:`MergedMetricsView` — read-only
  merges over the per-shard ``StateSync`` registries and ``Metricsd``
  stores, so the northbound API (gateway listings, alerting, metric
  queries) is shard-count agnostic.

The views are duck-typed over the orchestrator services instead of
importing them: ``statesync`` imports this package for the digest engine,
so this package must not import ``statesync`` back.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .digest import key_hash

#: Virtual nodes per shard.  Balance error of a consistent-hash ring
#: falls off as ~1/sqrt(vnodes); 256 keeps the max/mean shard load
#: within a few percent at 10k gateways (the chi-square test bound).
DEFAULT_VNODES = 256


class ConsistentHashRing:
    """Maps string keys onto shards via a fixed ring of virtual nodes."""

    def __init__(self, shard_ids: Sequence[str],
                 vnodes: int = DEFAULT_VNODES):
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids: {list(shard_ids)}")
        self.shard_ids = list(shard_ids)
        self.vnodes = vnodes
        points = []
        for shard_id in shard_ids:
            for i in range(vnodes):
                points.append((key_hash(f"{shard_id}#{i}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for(self, key: str) -> str:
        """The shard owning ``key`` (first vnode clockwise of its hash)."""
        index = bisect.bisect_right(self._points, key_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignments(self, keys: Iterable[str]) -> Dict[str, int]:
        """Shard -> count over ``keys`` (balance checks)."""
        counts = {shard_id: 0 for shard_id in self.shard_ids}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts


class ShardRouter:
    """Resolves the owning shard service for each gateway."""

    def __init__(self, ring: ConsistentHashRing, shards: Dict[str, Any]):
        missing = set(ring.shard_ids) - set(shards)
        if missing:
            raise ValueError(f"ring shards without services: {sorted(missing)}")
        self.ring = ring
        self.shards = shards
        self.stats = {"routed": 0}

    def shard_id_for(self, gateway_id: str) -> str:
        return self.ring.shard_for(gateway_id)

    def shard_for(self, gateway_id: str) -> Any:
        self.stats["routed"] += 1
        return self.shards[self.ring.shard_for(gateway_id)]


class MergedGatewayView:
    """Read-only union of per-shard ``StateSync`` gateway registries."""

    def __init__(self, statesyncs: Sequence[Any]):
        self._statesyncs = list(statesyncs)

    def gateways(self) -> List[Any]:
        out: List[Any] = []
        for sync in self._statesyncs:
            out.extend(sync.gateways())
        return out

    def gateway(self, gateway_id: str) -> Optional[Any]:
        for sync in self._statesyncs:
            state = sync.gateway(gateway_id)
            if state is not None:
                return state
        return None

    def gateway_count(self) -> int:
        return sum(sync.gateway_count() for sync in self._statesyncs)

    def offline_gateways(self, max_age: float) -> List[str]:
        out: List[str] = []
        for sync in self._statesyncs:
            out.extend(sync.offline_gateways(max_age))
        return sorted(out)

    def stale_gateways(self) -> List[str]:
        out: List[str] = []
        for sync in self._statesyncs:
            out.extend(sync.stale_gateways())
        return sorted(out)


class MergedMetricsView:
    """Read-only union of per-shard ``Metricsd`` stores.

    Each gateway's samples land on exactly one shard (its owner), so
    per-label queries concatenate and cross-shard sums add.
    """

    def __init__(self, metricsds: Sequence[Any]):
        self._metricsds = list(metricsds)

    def query(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> List[Any]:
        out: List[Any] = []
        for metricsd in self._metricsds:
            out.extend(metricsd.query(name, labels))
        out.sort(key=lambda sample: sample.time)
        return out

    def latest(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> Optional[Any]:
        best = None
        for metricsd in self._metricsds:
            sample = metricsd.latest(name, labels)
            if sample is not None and (best is None
                                       or sample.time >= best.time):
                best = sample
        return best

    def series_names(self) -> List[str]:
        names = set()
        for metricsd in self._metricsds:
            names.update(metricsd.series_names())
        return sorted(names)

    def label_sets(self, name: str) -> List[Dict[str, str]]:
        out: List[Dict[str, str]] = []
        for metricsd in self._metricsds:
            out.extend(metricsd.label_sets(name))
        return out

    def sum_latest(self, name: str) -> float:
        return sum(metricsd.sum_latest(name) for metricsd in self._metricsds)
