"""Merkle/rolling-digest trees over configuration namespaces.

Real Magma streams subscriberdb state with *digests*: the gateway sends a
compact fingerprint of its applied view, and the orchestrator only ships
the parts that differ.  This module provides the fingerprint half of that
protocol for the reproduction:

- :func:`canonical_bytes` — a deterministic serialization of config
  values (dataclasses, containers, primitives) so digests are identical
  across processes, runs, and ``PYTHONHASHSEED`` values.
- :class:`DigestTree` — a fixed-fanout digest tree over one namespace.
  Keys hash into ``fanout ** depth`` leaf buckets; each leaf keeps an
  XOR accumulator of per-entry digests (O(1) incremental ``put`` /
  ``delete``) plus the per-key entry digests needed to compute exact
  deltas; internal nodes hash their children and are cached lazily, so
  an unchanged namespace recomputes *nothing* — the memoization the
  check-in storm lives on.
- :class:`OverlayTree` — a copy-on-write view over a shared base tree:
  only touched leaf buckets are copied.  Lets tens of thousands of
  simulated gateways with identical applied state share one mirror.
- :class:`DigestIndex` — per-namespace trees kept incrementally in sync
  with a :class:`~repro.core.orchestrator.config_store.ConfigStore` via
  its mutation-observer hook; trees are built on first use so stores
  that never serve digests pay nothing.

Collision stance: digests are 128-bit BLAKE2b truncations combined with
XOR at the leaves; equality is treated as content equality, which is the
same engineering bet real digest-sync systems make (a random collision is
~2^-64 per comparison, far below simulated-hardware failure rates).
"""

from __future__ import annotations

import dataclasses
from hashlib import blake2b
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...obs import profiler as _profiler

#: Bytes per digest (128-bit truncated BLAKE2b).
DIGEST_BYTES = 16

#: Path of a tree node: one base-``fanout`` digit per level from the root.
NodePath = Tuple[int, ...]


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic, type-tagged serialization of a config value.

    Supports the value shapes the config store actually holds — plain
    scalars, containers, and (frozen) dataclasses like
    ``SubscriberProfile`` / ``PolicyRule``.  Anything else raises
    ``TypeError`` instead of silently hashing an address-bearing
    ``repr`` — a nondeterministic digest is worse than no digest.
    """
    out = bytearray()
    _canonical_into(obj, out)
    return bytes(out)


def _canonical_into(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        out += b"i%d;" % obj
    elif isinstance(obj, float):
        out += b"f"
        out += repr(obj).encode("ascii")
        out += b";"
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out += b"s%d:" % len(data)
        out += data
    elif isinstance(obj, bytes):
        out += b"b%d:" % len(obj)
        out += obj
    elif isinstance(obj, (list, tuple)):
        out += b"l%d:" % len(obj)
        for item in obj:
            _canonical_into(item, out)
    elif isinstance(obj, dict):
        out += b"d%d:" % len(obj)
        for key in sorted(obj, key=_dict_sort_key):
            _canonical_into(key, out)
            _canonical_into(obj[key], out)
    elif isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in obj)
        out += b"e%d:" % len(parts)
        for part in parts:
            out += part
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = dataclasses.fields(obj)
        out += b"D"
        _canonical_into(type(obj).__name__, out)
        out += b"%d:" % len(fields)
        for f in fields:
            _canonical_into(f.name, out)
            _canonical_into(getattr(obj, f.name), out)
    else:
        raise TypeError(
            f"cannot canonicalize {type(obj).__name__!r} for digesting; "
            "config values must be scalars, containers, or dataclasses")


def _dict_sort_key(key: Any) -> Tuple[str, bytes]:
    return (type(key).__name__, canonical_bytes(key))


def _entry_digest(key: str, value: Any) -> int:
    h = blake2b(digest_size=DIGEST_BYTES)
    h.update(b"entry:")
    h.update(key.encode("utf-8"))
    h.update(b"=")
    h.update(canonical_bytes(value))
    return int.from_bytes(h.digest(), "big")


def entry_digest(key: str, value: Any) -> int:
    """128-bit digest of one ``(key, value)`` entry.

    The wrapper is the self-profiler's hook point for digest hashing;
    with no active profiler it costs one global load and an ``is None``
    test on top of the hash itself.
    """
    prof = _profiler.ACTIVE
    if prof is None:
        return _entry_digest(key, value)
    prof.push("sync.digest_hash")
    try:
        return _entry_digest(key, value)
    finally:
        prof.pop()


def key_hash(key: str) -> int:
    """Stable 64-bit bucket hash of a key (independent of the value)."""
    return int.from_bytes(
        blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


def _combine(children: Iterable[int]) -> int:
    h = blake2b(digest_size=DIGEST_BYTES)
    for digest in children:
        h.update(digest.to_bytes(DIGEST_BYTES, "big"))
    return int.from_bytes(h.digest(), "big")


class DigestTree:
    """Fixed-fanout digest tree over one namespace's ``{key: value}`` set.

    Node addressing: the root is the empty path ``()``; a node at level
    ``l`` is a tuple of ``l`` base-``fanout`` digits.  Leaves sit at
    level ``depth``.  A key's leaf is the first ``depth`` digits of its
    bucket hash, so the same key lands in the same leaf on every replica
    — divergence between two trees is always a key-set/value difference,
    never a placement difference.
    """

    __slots__ = ("fanout", "depth", "leaf_count", "_leaf_acc",
                 "_leaf_entries", "_node_cache", "_count", "stats")

    def __init__(self, fanout: int = 16, depth: int = 2):
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2: {fanout}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1: {depth}")
        self.fanout = fanout
        self.depth = depth
        self.leaf_count = fanout ** depth
        self._leaf_acc: List[int] = [0] * self.leaf_count
        # Per-leaf {key: entry_digest}; allocated lazily per bucket.
        self._leaf_entries: List[Optional[Dict[str, int]]] = \
            [None] * self.leaf_count
        self._node_cache: Dict[NodePath, int] = {}
        self._count = 0
        self.stats = {"puts": 0, "deletes": 0, "node_recomputes": 0}

    # -- key placement -------------------------------------------------------------

    def path_for_key(self, key: str) -> NodePath:
        """The leaf path (``depth`` digits) that ``key`` buckets into."""
        h = key_hash(key)
        digits = []
        for _ in range(self.depth):
            digits.append(h % self.fanout)
            h //= self.fanout
        return tuple(reversed(digits))

    def _leaf_index(self, path: NodePath) -> int:
        index = 0
        for digit in path:
            index = index * self.fanout + digit
        return index

    def is_leaf(self, path: NodePath) -> bool:
        return len(path) == self.depth

    # -- mutation ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> bool:
        """Insert/update one entry; returns True if the digest changed."""
        return self.put_digest(key, entry_digest(key, value))

    def put_digest(self, key: str, digest: int) -> bool:
        """Insert/update with a precomputed entry digest (mirror rebuilds)."""
        path = self.path_for_key(key)
        index = self._leaf_index(path)
        entries = self._writable_leaf(index)
        old = entries.get(key)
        if old == digest:
            return False
        entries[key] = digest
        acc = self._leaf_acc[index] ^ digest
        if old is not None:
            acc ^= old
        else:
            self._count += 1
        self._set_leaf_acc(index, acc)
        self._invalidate(path)
        self.stats["puts"] += 1
        return True

    def delete(self, key: str) -> bool:
        """Remove one entry; returns True if it was present."""
        path = self.path_for_key(key)
        index = self._leaf_index(path)
        view = self._leaf_entry_map(index)
        if not view or key not in view:
            return False
        old = self._writable_leaf(index).pop(key)
        self._set_leaf_acc(index, self._leaf_acc[index] ^ old)
        self._count -= 1
        self._invalidate(path)
        self.stats["deletes"] += 1
        return True

    def _invalidate(self, leaf_path: NodePath) -> None:
        cache = self._node_cache
        for level in range(self.depth):
            cache.pop(leaf_path[:level], None)

    # -- leaf storage hooks (OverlayTree overrides these) ----------------------------

    def _leaf_entry_map(self, index: int) -> Optional[Dict[str, int]]:
        return self._leaf_entries[index]

    def _writable_leaf(self, index: int) -> Dict[str, int]:
        entries = self._leaf_entries[index]
        if entries is None:
            entries = {}
            self._leaf_entries[index] = entries
        return entries

    def _set_leaf_acc(self, index: int, acc: int) -> None:
        self._leaf_acc[index] = acc

    def _leaf_digest(self, index: int) -> int:
        return self._leaf_acc[index]

    # -- digests -------------------------------------------------------------------

    def node(self, path: NodePath) -> int:
        """Digest of the node at ``path`` (leaf accumulator or cached
        hash over children — only dirty subtrees recompute)."""
        path = tuple(path)
        if len(path) == self.depth:
            return self._leaf_digest(self._leaf_index(path))
        if len(path) > self.depth:
            raise ValueError(f"path {path} deeper than tree depth {self.depth}")
        cached = self._node_cache.get(path)
        if cached is not None:
            return cached
        digest = _combine(self.node(path + (i,)) for i in range(self.fanout))
        self._node_cache[path] = digest
        self.stats["node_recomputes"] += 1
        return digest

    def root(self) -> int:
        return self.node(())

    def children(self, path: NodePath) -> Dict[NodePath, int]:
        """Digests of the children of an internal node, keyed by path."""
        path = tuple(path)
        if len(path) >= self.depth:
            raise ValueError(f"node {path} is a leaf; it has no children")
        return {path + (i,): self.node(path + (i,))
                for i in range(self.fanout)}

    def leaf_entries(self, path: NodePath) -> Dict[str, int]:
        """``{key: entry_digest}`` for a leaf bucket (copy; wire-safe)."""
        path = tuple(path)
        if len(path) != self.depth:
            raise ValueError(f"{path} is not a leaf path")
        entries = self._leaf_entry_map(self._leaf_index(path))
        return dict(entries) if entries else {}

    def __len__(self) -> int:
        return self._count


class OverlayTree(DigestTree):
    """Copy-on-write view over a shared base :class:`DigestTree`.

    Reads fall through to the base until a leaf bucket is written, at
    which point only that bucket (accumulator + entry map) is copied
    into the overlay.  A fleet of simulated gateways whose applied
    config is identical can then share one base mirror and each pay
    only for the buckets their own reconciliation touches.

    The base tree must not be mutated while overlays exist.
    """

    __slots__ = ("_base",)

    def __init__(self, base: DigestTree):
        super().__init__(base.fanout, base.depth)
        self._base = base
        self._count = len(base)

    def _overlaid(self, index: int) -> bool:
        return self._leaf_entries[index] is not None

    def _leaf_entry_map(self, index: int) -> Optional[Dict[str, int]]:
        entries = self._leaf_entries[index]
        if entries is not None:
            return entries
        return self._base._leaf_entry_map(index)

    def _writable_leaf(self, index: int) -> Dict[str, int]:
        entries = self._leaf_entries[index]
        if entries is None:
            base_entries = self._base._leaf_entry_map(index)
            entries = dict(base_entries) if base_entries else {}
            self._leaf_entries[index] = entries
            self._leaf_acc[index] = self._base._leaf_digest(index)
        return entries

    def _leaf_digest(self, index: int) -> int:
        if self._overlaid(index):
            return self._leaf_acc[index]
        return self._base._leaf_digest(index)

    def node(self, path: NodePath) -> int:
        path = tuple(path)
        if len(path) < self.depth and not self._subtree_overlaid(path):
            return self._base.node(path)
        return super().node(path)

    def _subtree_overlaid(self, path: NodePath) -> bool:
        first = self._leaf_index(path + (0,) * (self.depth - len(path)))
        span = self.fanout ** (self.depth - len(path))
        return any(self._leaf_entries[i] is not None
                   for i in range(first, first + span))


class DigestIndex:
    """Per-namespace digest trees kept in sync with a config store.

    Subscribes to the store's mutation observer at construction; a
    namespace's tree is built from store contents on first use and
    incrementally maintained afterwards, so the index costs nothing for
    namespaces (or stores) that never serve digest sync.
    """

    def __init__(self, store, fanout: int = 16, depth: int = 2):
        self.store = store
        self.fanout = fanout
        self.depth = depth
        self._trees: Dict[str, DigestTree] = {}
        self.stats = {"trees_built": 0, "incremental_updates": 0}
        store.add_observer(self._on_mutation)

    def _on_mutation(self, entry) -> None:
        tree = self._trees.get(entry.key[0])
        if tree is None:
            return  # not built yet; first use will fold this mutation in
        if entry.op == "put":
            tree.put(entry.key[1], entry.value)
        else:
            tree.delete(entry.key[1])
        self.stats["incremental_updates"] += 1

    def tree(self, namespace: str) -> DigestTree:
        tree = self._trees.get(namespace)
        if tree is None:
            tree = DigestTree(self.fanout, self.depth)
            for key, value in self.store.namespace(namespace).items():
                tree.put(key, value)
            self._trees[namespace] = tree
            self.stats["trees_built"] += 1
        return tree

    def root(self, namespace: str) -> int:
        return self.tree(namespace).root()
