"""Access control and management: the generic "MME" of the AGW.

Per Table 1 this service is the MME (LTE), AMF (5G), and RADIUS AAA (WiFi)
collapsed into one technology-agnostic implementation.  RAN-specific
frontends (S1AP, NGAP, RADIUS) terminate their protocols and drive the
generic procedures here through the :class:`RanFrontend` interface - the
paper's central architectural move (§3.1).

CPU accounting: attach processing is the most computationally intensive
control-plane procedure (§4.2 - dominated by authentication crypto and
per-session state setup), so each stage submits work to the AGW CPU model's
control-plane class.  This is what produces the Fig. 6 attach-rate knee.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ...lte import nas
from ...net.rpc import RpcError
from ...sim.kernel import Event
from ..federation.feg import FEG_SERVICE
from ..policy.rules import PolicyRule
from .context import AgwContext, CPU_CLASS_CONTROL
from .directoryd import Directoryd
from .sessiond import SessionError, Sessiond
from .subscriberdb import SubscriberDb

# How the total attach CPU cost is split across procedure stages.
STAGE_ATTACH_REQUEST = 0.5   # subscriber lookup + auth vector generation
STAGE_AUTH_RESPONSE = 0.2    # RES verification + security mode
STAGE_SESSION_SETUP = 0.3    # session creation + data-plane programming


class RanFrontend:
    """What the generic MME needs from a radio-specific frontend."""

    name = "generic"

    def send_downlink_nas(self, ue_ref: Any, message: Any,
                          mme_ue_id: Optional[int] = None) -> None:
        raise NotImplementedError

    def setup_context(self, ue_ref: Any, mme_ue_id: int, session: Any,
                      attach_accept: Any) -> None:
        """Establish the RAN-side bearer and deliver the piggybacked NAS."""
        raise NotImplementedError

    def release_context(self, ue_ref: Any, mme_ue_id: int, cause: str) -> None:
        raise NotImplementedError

    def location_of(self, ue_ref: Any) -> str:
        """The RAN element (eNodeB/gNB/AP id) behind a UE reference."""
        return str(ue_ref)


class FederationClient:
    """AGW-side client for the Federation Gateway (§3.6).

    Lets the generic access-management functions authenticate and fetch
    policy for subscribers that live in a partner MNO's core instead of the
    Magma orchestrator.
    """

    def __init__(self, channel, deadline: float = 10.0):
        self.channel = channel
        self.deadline = deadline

    def get_auth_vector(self, imsi: str) -> Event:
        return self.channel.call(FEG_SERVICE, "get_auth_vector",
                                 {"imsi": imsi}, deadline=self.deadline)

    def get_policy(self, imsi: str) -> Event:
        return self.channel.call(FEG_SERVICE, "get_policy",
                                 {"imsi": imsi}, deadline=self.deadline)


class UeContextState:
    WAIT_AUTH = "wait-auth"
    WAIT_SMC = "wait-smc"
    WAIT_COMPLETE = "wait-complete"
    REGISTERED = "registered"


@dataclass
class MmeUeContext:
    mme_ue_id: int
    imsi: str
    frontend: RanFrontend
    ue_ref: Any
    state: str = UeContextState.WAIT_AUTH
    xres: bytes = b""
    kasme: bytes = b""
    attach_started: float = 0.0
    federated: bool = False
    resync_done: bool = False


class AccessManagement:
    """The generic attach/detach/session procedures."""

    def __init__(self, context: AgwContext, subscriberdb: SubscriberDb,
                 sessiond: Sessiond, directoryd: Optional[Directoryd] = None,
                 federation: Optional[FederationClient] = None):
        self.context = context
        self.subscriberdb = subscriberdb
        self.sessiond = sessiond
        self.directoryd = directoryd
        self.federation = federation
        self._ue_ids = itertools.count(1)
        self._by_mme_ue_id: Dict[int, MmeUeContext] = {}
        self._by_imsi: Dict[str, MmeUeContext] = {}
        # Fractional attach-capacity carry for the aggregated fleet path.
        self._fleet_attach_credit = 0.0
        self.stats = {"attach_requests": 0, "attach_accepted": 0,
                      "attach_rejected": 0, "auth_failures": 0,
                      "detaches": 0, "registered": 0,
                      "unknown_subscriber": 0, "overload_drops": 0}

    # -- entry points (called by RAN frontends) ---------------------------------------

    def handle_initial_ue(self, frontend: RanFrontend, ue_ref: Any,
                          message: Any) -> None:
        if isinstance(message, nas.AttachRequest):
            self.stats["attach_requests"] += 1
            if self._overloaded():
                self.stats["overload_drops"] += 1
                self.stats["attach_rejected"] += 1
                frontend.send_downlink_nas(
                    ue_ref, nas.AttachReject(imsi=message.imsi,
                                             cause="congestion"))
                return
            span = self.context.tracer.child(
                "mme.attach_stage1", component="mme", node=self.context.node)
            proc = self.context.sim.spawn(
                self._attach_stage1(frontend, ue_ref, message),
                name=f"mme-attach:{message.imsi}", ctx=span.context)
            if span.recording:
                span.end_on(proc)
        elif isinstance(message, nas.ServiceRequest):
            self._handle_service_request(frontend, ue_ref, message)
        # Other initial messages ignored.

    def handle_uplink_nas(self, frontend: RanFrontend, ue_ref: Any,
                          mme_ue_id: int, message: Any) -> None:
        ue_context = self._by_mme_ue_id.get(mme_ue_id)
        if ue_context is None:
            # NAS from a context this MME doesn't know - e.g. after a crash
            # wiped the (ephemeral, recoverable) NAS state, §3.4.  A detach
            # still cleans up the restored session (implicit detach); other
            # messages are dropped and the UE's timers force a re-attach.
            if isinstance(message, nas.DetachRequest):
                self.stats["detaches"] += 1
                self.sessiond.terminate_session(message.imsi,
                                                reason="implicit-detach")
                if self.directoryd is not None:
                    self.directoryd.remove(message.imsi)
            return
        if isinstance(message, nas.AuthenticationResponse):
            span = self.context.tracer.child(
                "mme.attach_stage2", component="mme", node=self.context.node)
            proc = self.context.sim.spawn(
                self._attach_stage2(ue_context, message),
                name=f"mme-auth:{ue_context.imsi}", ctx=span.context)
            if span.recording:
                span.end_on(proc)
        elif isinstance(message, nas.SecurityModeComplete):
            span = self.context.tracer.child(
                "mme.attach_stage3", component="mme", node=self.context.node)
            proc = self.context.sim.spawn(
                self._attach_stage3(ue_context),
                name=f"mme-session:{ue_context.imsi}", ctx=span.context)
            if span.recording:
                span.end_on(proc)
        elif isinstance(message, nas.AttachComplete):
            self._on_attach_complete(ue_context)
        elif isinstance(message, nas.DetachRequest):
            self._on_detach(ue_context, message)
        elif isinstance(message, nas.AuthenticationFailureMsg):
            if (message.cause.startswith("sync_failure:")
                    and not ue_context.resync_done
                    and not ue_context.federated):
                ue_context.resync_done = True
                usim_sqn = int(message.cause.split(":", 1)[1])
                self.context.sim.spawn(
                    self._resync_authentication(ue_context, usim_sqn),
                    name=f"mme-resync:{ue_context.imsi}")
            else:
                self.stats["auth_failures"] += 1
                self._drop_context(ue_context)

    def _overloaded(self) -> bool:
        """MME congestion control: too much control-plane work queued."""
        return (self.context.cpu.queue_depth(CPU_CLASS_CONTROL) >=
                self.context.config.mme_max_pending)

    # -- aggregated fleet entry point (workloads.fleet) --------------------------------

    def bulk_attach(self, n: int, dt: float) -> int:
        """Admit up to ``n`` cohort-aggregated attaches spanning ``dt`` s.

        The fleet abstraction batches an entire tick's attach arrivals into
        one call instead of ``n`` per-UE NAS dialogues.  Admission follows
        the same calibrated capacity the coroutine path saturates at: the
        hardware attach rate (DESIGN.md §5) accrues as a credit bank
        (capped at one tick, so an idle MME cannot absorb an unbounded
        burst), and the admitted work is charged to the control-plane CPU
        class as fluid demand so utilization telemetry sees the load.
        Rejects count as congestion drops, exactly as the per-UE overload
        path accounts them.  Returns the number admitted.
        """
        if n < 0:
            raise ValueError(f"bulk_attach needs n >= 0, got {n}")
        if dt <= 0:
            raise ValueError(f"bulk_attach needs dt > 0, got {dt}")
        self.stats["attach_requests"] += n
        hardware = self.context.config.hardware
        per_tick = hardware.attach_capacity_per_sec() * dt
        credit = min(self._fleet_attach_credit + per_tick, per_tick)
        accepted = min(n, int(credit))
        self._fleet_attach_credit = credit - accepted
        rejected = n - accepted
        if accepted:
            self.stats["attach_accepted"] += accepted
            self.sessiond.bulk_create_fleet(accepted)
        if rejected:
            self.stats["attach_rejected"] += rejected
            self.stats["overload_drops"] += rejected
        # Fluid control-plane demand for this tick: admitted attach work
        # spread over the tick.  Refreshed (or zeroed) every tick by the
        # fleet, so it never outlives the workload.
        self.context.cpu.set_fluid_demand(
            CPU_CLASS_CONTROL, "fleet-attach",
            accepted * hardware.attach_cpu_cost / dt)
        return accepted

    def bulk_detach(self, n: int) -> int:
        """Aggregated fleet detaches; returns how many sessions ended."""
        if n < 0:
            raise ValueError(f"bulk_detach needs n >= 0, got {n}")
        ended = self.sessiond.bulk_terminate_fleet(n)
        self.stats["detaches"] += ended
        return ended

    # -- attach pipeline ----------------------------------------------------------------

    def _attach_stage1(self, frontend: RanFrontend, ue_ref: Any,
                       message: nas.AttachRequest):
        """Subscriber lookup + authentication challenge."""
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL,
                                      cost * STAGE_ATTACH_REQUEST)
        imsi = message.imsi
        stale = self._by_imsi.pop(imsi, None)
        if stale is not None:
            self._by_mme_ue_id.pop(stale.mme_ue_id, None)
        profile = self.subscriberdb.get(imsi)
        federated = False
        if profile is not None and profile.k is not None:
            rand = self.context.rng.stream(
                f"auth.rand.{self.context.node}").randbytes(16)
            vector = self.subscriberdb.generate_auth_vector(imsi, rand)
            xres, kasme, autn = vector.xres, vector.kasme, vector.autn
        else:
            # Not a local subscriber: in a federated deployment, fetch an
            # auth vector from the partner MNO through the FeG (§3.6).
            vector_data = None
            if self.federation is not None:
                try:
                    vector_data = yield self.federation.get_auth_vector(imsi)
                except RpcError:
                    vector_data = None
            if vector_data is None:
                self.stats["unknown_subscriber"] += 1
                self.stats["attach_rejected"] += 1
                frontend.send_downlink_nas(
                    ue_ref, nas.AttachReject(imsi=imsi,
                                             cause="unknown subscriber"))
                return
            federated = True
            xres, kasme = vector_data["xres"], vector_data["kasme"]
            rand, autn = vector_data["rand"], vector_data["autn"]
        ue_context = MmeUeContext(
            mme_ue_id=next(self._ue_ids), imsi=imsi, frontend=frontend,
            ue_ref=ue_ref, xres=xres, kasme=kasme,
            attach_started=self.context.sim.now, federated=federated)
        self._by_mme_ue_id[ue_context.mme_ue_id] = ue_context
        self._by_imsi[imsi] = ue_context
        frontend.send_downlink_nas(
            ue_ref, nas.AuthenticationRequest(imsi=imsi, rand=rand,
                                              autn=autn),
            mme_ue_id=ue_context.mme_ue_id)

    def _resync_authentication(self, ue_context: MmeUeContext,
                               usim_sqn: int):
        """SQN resynchronization: adopt the USIM's SQN, re-challenge."""
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL,
                                      cost * STAGE_AUTH_RESPONSE)
        self.subscriberdb.resync_sqn(ue_context.imsi, usim_sqn)
        rand = self.context.rng.stream(
            f"auth.rand.{self.context.node}").randbytes(16)
        try:
            vector = self.subscriberdb.generate_auth_vector(
                ue_context.imsi, rand)
        except KeyError:
            self.stats["auth_failures"] += 1
            self._drop_context(ue_context)
            return
        ue_context.xres = vector.xres
        ue_context.kasme = vector.kasme
        ue_context.frontend.send_downlink_nas(
            ue_context.ue_ref,
            nas.AuthenticationRequest(imsi=ue_context.imsi, rand=rand,
                                      autn=vector.autn),
            mme_ue_id=ue_context.mme_ue_id)

    def _attach_stage2(self, ue_context: MmeUeContext,
                       message: nas.AuthenticationResponse):
        """RES verification + security mode command."""
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL,
                                      cost * STAGE_AUTH_RESPONSE)
        if message.res != ue_context.xres:
            self.stats["auth_failures"] += 1
            self.stats["attach_rejected"] += 1
            ue_context.frontend.send_downlink_nas(
                ue_context.ue_ref,
                nas.AuthenticationReject(imsi=ue_context.imsi),
                mme_ue_id=ue_context.mme_ue_id)
            self._drop_context(ue_context)
            return
        ue_context.state = UeContextState.WAIT_SMC
        ue_context.frontend.send_downlink_nas(
            ue_context.ue_ref, nas.SecurityModeCommand(imsi=ue_context.imsi),
            mme_ue_id=ue_context.mme_ue_id)

    def _attach_stage3(self, ue_context: MmeUeContext):
        """Session creation, data-plane programming, attach accept."""
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL,
                                      cost * STAGE_SESSION_SETUP)
        if ue_context.federated and \
                self.subscriberdb.get(ue_context.imsi) is None:
            ok = yield from self._cache_federated_profile(ue_context)
            if not ok:
                self.stats["attach_rejected"] += 1
                ue_context.frontend.send_downlink_nas(
                    ue_context.ue_ref,
                    nas.AttachReject(imsi=ue_context.imsi,
                                     cause="federated policy unavailable"),
                    mme_ue_id=ue_context.mme_ue_id)
                self._drop_context(ue_context)
                return
        try:
            session = yield from self.sessiond.create_session(ue_context.imsi)
        except SessionError as exc:
            self.stats["attach_rejected"] += 1
            ue_context.frontend.send_downlink_nas(
                ue_context.ue_ref,
                nas.AttachReject(imsi=ue_context.imsi, cause=str(exc)),
                mme_ue_id=ue_context.mme_ue_id)
            self._drop_context(ue_context)
            return
        ue_context.state = UeContextState.WAIT_COMPLETE
        accept = nas.AttachAccept(
            imsi=ue_context.imsi, ue_ip=session.ue_ip,
            guti=f"{self.context.node}-guti-{ue_context.mme_ue_id}")
        ue_context.frontend.setup_context(ue_context.ue_ref,
                                          ue_context.mme_ue_id, session,
                                          accept)

    def _cache_federated_profile(self, ue_context: MmeUeContext):
        """Fetch the roaming subscriber's policy from the MNO (via the FeG)
        and cache a federated profile locally - the paper's local-breakout
        flow: "obtain the policy ... from the federated network, then
        enforce that policy in the AGW" (§3.6)."""
        imsi = ue_context.imsi
        try:
            response = yield self.federation.get_policy(imsi)
        except RpcError:
            response = None
        if response is None:
            return False
        policy = response["policy"]
        if isinstance(policy, PolicyRule):
            # Runtime roaming-cache fill (§3.6 local breakout), not config
            # sync: the MNO, not our orchestrator, owns this policy.
            self.sessiond.policydb.upsert(policy)  # reprolint: disable=desired-state-sync
            policy_id = policy.policy_id
        else:
            policy_id = "default"
        from .subscriberdb import SubscriberProfile
        self.subscriberdb.upsert(SubscriberProfile(  # reprolint: disable=desired-state-sync
            imsi=imsi, policy_id=policy_id, federated=True))
        return True

    def _on_attach_complete(self, ue_context: MmeUeContext) -> None:
        if ue_context.state != UeContextState.WAIT_COMPLETE:
            return
        ue_context.state = UeContextState.REGISTERED
        self.stats["attach_accepted"] += 1
        self.stats["registered"] = len([
            c for c in self._by_imsi.values()
            if c.state == UeContextState.REGISTERED])
        if self.directoryd is not None:
            self.directoryd.update_location(
                ue_context.imsi, ue_context.frontend.name,
                ue_context.frontend.location_of(ue_context.ue_ref))
        self.context.monitor.count("mme.attach_accepted")
        # Attach latency with exemplar: the ambient span context (when
        # tracing is on) rides along as the sample's trace id, so the
        # orchestrator's p99 can be resolved back to this exact attach.
        sim = self.context.sim
        now = sim.now
        ctx = sim.ctx
        self.context.monitor.bounded_series(
            f"attach.latency.{self.context.node}", 4096).record(
            now, now - ue_context.attach_started,
            trace_id=ctx.trace_id if ctx is not None else None)

    def _on_detach(self, ue_context: MmeUeContext,
                   message: nas.DetachRequest) -> None:
        self.stats["detaches"] += 1
        with self.context.tracer.child("mme.detach", component="mme",
                                       node=self.context.node):
            self.sessiond.terminate_session(ue_context.imsi, reason="detach")
            if not message.switch_off:
                ue_context.frontend.send_downlink_nas(
                    ue_context.ue_ref, nas.DetachAccept(imsi=ue_context.imsi),
                    mme_ue_id=ue_context.mme_ue_id)
            ue_context.frontend.release_context(ue_context.ue_ref,
                                                ue_context.mme_ue_id,
                                                "detach")
            self._drop_context(ue_context)
            if self.directoryd is not None:
                self.directoryd.remove(ue_context.imsi)

    def _handle_service_request(self, frontend: RanFrontend, ue_ref: Any,
                                message: nas.ServiceRequest) -> None:
        imsi = message.imsi
        session = self.sessiond.session(imsi)
        ue_context = self._by_imsi.get(imsi)
        if session is None or ue_context is None:
            frontend.send_downlink_nas(
                ue_ref, nas.ServiceReject(imsi=imsi, cause="no session"))
            return
        # Idle -> connected: re-point the context at the (possibly new)
        # radio-side reference and re-establish the bearer.
        ue_context.ue_ref = ue_ref
        ue_context.frontend = frontend
        self.sessiond.set_connected(imsi, True)

        def proc(sim):
            cost = self.context.config.hardware.nas_message_cpu_cost
            yield self.context.cpu.submit(CPU_CLASS_CONTROL, max(cost, 1e-4))
            frontend.setup_context(ue_ref, ue_context.mme_ue_id, session,
                                   nas.ServiceAccept(imsi=imsi))

        span = self.context.tracer.child(
            "mme.service_request", component="mme", node=self.context.node)
        sr_proc = self.context.sim.spawn(proc(self.context.sim),
                                         name=f"service-req:{imsi}",
                                         ctx=span.context)
        if span.recording:
            span.end_on(sr_proc)

    def handle_ue_idle(self, imsi: str) -> None:
        """eNodeB reported the UE inactive: ECM-IDLE.  The session stays;
        only the radio side is gone until paging/service-request."""
        if self.sessiond.session(imsi) is not None:
            self.sessiond.set_connected(imsi, False)
            self.context.monitor.count("mme.idle_transitions")

    def page(self, imsi: str) -> bool:
        """Page an idle UE (downlink data pending).  Returns whether a
        page was sent toward the UE's last known location."""
        session = self.sessiond.session(imsi)
        if session is None:
            return False
        if session.connected:
            return True  # already reachable
        ue_context = self._by_imsi.get(imsi)
        if ue_context is None or self.directoryd is None:
            return False
        record = self.directoryd.lookup(imsi)
        if record is None:
            return False
        pager = getattr(ue_context.frontend, "page", None)
        if pager is None:
            return False
        span = self.context.tracer.begin("paging", component="mme",
                                         node=self.context.node,
                                         tags={"imsi": imsi})
        with span.active():
            pager(record.location, imsi)
        span.end()
        return True

    # -- generic procedure helpers (used by the 5G NGAP frontend) ----------------------
    # These expose the same three attach stages as reusable building blocks,
    # so a frontend with its own protocol state machine (5G registration)
    # still runs the one generic implementation of lookup/auth/session.

    def begin_authentication(self, imsi: str):
        """Generator: stage-1 work - subscriber lookup + vector generation.

        Returns an AuthVector, or None for unknown subscribers.
        """
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL,
                                      cost * STAGE_ATTACH_REQUEST)
        self.stats["attach_requests"] += 1
        profile = self.subscriberdb.get(imsi)
        if profile is None or profile.k is None:
            self.stats["unknown_subscriber"] += 1
            self.stats["attach_rejected"] += 1
            return None
        rand = self.context.rng.stream(f"auth.rand.{self.context.node}") \
            .randbytes(16)
        return self.subscriberdb.generate_auth_vector(imsi, rand)

    def verify_authentication(self, expected_xres: bytes, res: bytes):
        """Generator: stage-2 work - RES verification."""
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL,
                                      cost * STAGE_AUTH_RESPONSE)
        ok = res == expected_xres
        if not ok:
            self.stats["auth_failures"] += 1
            self.stats["attach_rejected"] += 1
        return ok

    def establish_session(self, imsi: str):
        """Generator: stage-3 work - session creation (raises SessionError)."""
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL,
                                      cost * STAGE_SESSION_SETUP)
        try:
            session = yield from self.sessiond.create_session(imsi)
        except SessionError:
            self.stats["attach_rejected"] += 1
            raise
        self.stats["attach_accepted"] += 1
        return session

    # -- generic (non-NAS) authentication, used by the WiFi frontend -------------------

    def authenticate_eap(self, imsi: str, nonce: bytes, proof: bytes):
        """Generator: EAP challenge/response verification + session.

        The generic counterpart of EPS-AKA for WiFi subscribers: the proof
        must be HMAC(wifi_secret, nonce).  Raises SessionError on failure.
        """
        from ...wifi import eap
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL, cost)
        profile = self.subscriberdb.get(imsi)
        if profile is None or profile.wifi_secret is None:
            self.stats["unknown_subscriber"] += 1
            raise SessionError(f"unknown WiFi subscriber {imsi}")
        if not eap.verify_proof(profile.wifi_secret, nonce, proof):
            self.stats["auth_failures"] += 1
            raise SessionError("EAP authentication failure")
        session = yield from self.sessiond.create_session(imsi)
        self.stats["attach_accepted"] += 1
        return session

    def authenticate_secret(self, imsi: str, secret: str):
        """Generator: WiFi-style shared-secret authentication + session.

        Returns the session record; raises SessionError on failure.  Charged
        to the control-plane CPU like any other attach.
        """
        cost = self.context.config.hardware.attach_cpu_cost
        yield self.context.cpu.submit(CPU_CLASS_CONTROL, cost)
        profile = self.subscriberdb.get(imsi)
        if profile is None or profile.wifi_secret is None:
            self.stats["unknown_subscriber"] += 1
            raise SessionError(f"unknown WiFi subscriber {imsi}")
        if profile.wifi_secret != secret:
            self.stats["auth_failures"] += 1
            raise SessionError("WiFi authentication failure")
        session = yield from self.sessiond.create_session(imsi)
        self.stats["attach_accepted"] += 1
        return session

    # -- context management ----------------------------------------------------------------

    def update_ue_ref(self, mme_ue_id: int, new_ue_ref: Any) -> bool:
        """Re-point a registered UE context at a new RAN element (intra-AGW
        handover).  Returns False for unknown/unregistered contexts."""
        ue_context = self._by_mme_ue_id.get(mme_ue_id)
        if ue_context is None or ue_context.state != UeContextState.REGISTERED:
            return False
        ue_context.ue_ref = new_ue_ref
        return True

    def release_ue(self, imsi: str, cause: str = "network") -> None:
        """Network-initiated release (e.g. session teardown on failure)."""
        ue_context = self._by_imsi.get(imsi)
        if ue_context is None:
            return
        self.sessiond.terminate_session(imsi, reason=cause)
        ue_context.frontend.release_context(ue_context.ue_ref,
                                            ue_context.mme_ue_id, cause)
        self._drop_context(ue_context)

    def _drop_context(self, ue_context: MmeUeContext) -> None:
        self._by_mme_ue_id.pop(ue_context.mme_ue_id, None)
        existing = self._by_imsi.get(ue_context.imsi)
        if existing is ue_context:
            self._by_imsi.pop(ue_context.imsi, None)

    def context_count(self) -> int:
        return len(self._by_imsi)

    def context_for(self, imsi: str) -> Optional[MmeUeContext]:
        return self._by_imsi.get(imsi)
