"""S1AP frontend: terminates the LTE control protocol at the AGW edge.

This module is the LTE-specific "left side" of Figure 4: it speaks S1AP
with eNodeBs (over the reliable RPC fabric standing in for SCTP) and
translates into the generic access-management calls on the right side.  No
S1AP or NAS type escapes northbound of this file except through the generic
:class:`~repro.core.agw.mme.RanFrontend` interface.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ...lte import s1ap
from ...lte.enodeb import ENB_S1AP_SERVICE
from ...net.rpc import RpcChannel, RpcError, RpcServer
from .context import AgwContext
from .enodebd import Enodebd
from .mme import AccessManagement, RanFrontend
from .sessiond import Sessiond

UeRef = Tuple[str, int]  # (enb_id, enb_ue_id)


class S1apFrontend(RanFrontend):
    """LTE access frontend of one AGW."""

    name = "s1ap"

    def __init__(self, context: AgwContext, server: RpcServer,
                 mme: AccessManagement, sessiond: Sessiond,
                 enodebd: Enodebd):
        self.context = context
        self.mme = mme
        self.sessiond = sessiond
        self.enodebd = enodebd
        self._channels: Dict[str, RpcChannel] = {}
        self.stats = {"s1_setups": 0, "uplink_messages": 0,
                      "downlink_messages": 0, "context_setups": 0,
                      "context_setup_failures": 0, "releases": 0}
        server.register(s1ap.S1AP_SERVICE, "setup", self._on_setup)
        server.register(s1ap.S1AP_SERVICE, "uplink", self._on_uplink)
        server.register(s1ap.S1AP_SERVICE, "path_switch",
                        self._on_path_switch)

    # -- southbound handlers (eNodeB -> AGW) --------------------------------------

    def _on_setup(self, request: s1ap.S1SetupRequest) -> s1ap.S1SetupResponse:
        self.stats["s1_setups"] += 1
        self.enodebd.register(request.enb_id, kind="enodeb")
        self._channel_for(request.enb_id)
        return s1ap.S1SetupResponse(mme_name=self.context.node,
                                    served_plmn=request.tai.plmn,
                                    accepted=True)

    def _on_uplink(self, message: Any) -> Dict[str, bool]:
        self.stats["uplink_messages"] += 1
        if isinstance(message, s1ap.InitialUeMessage):
            self.enodebd.heartbeat(message.enb_id)
            ue_ref: UeRef = (message.enb_id, message.enb_ue_id)
            self.mme.handle_initial_ue(self, ue_ref, message.nas)
            return {"accepted": True}
        if isinstance(message, s1ap.UplinkNasTransport):
            ue_ref = (message.enb_id, message.enb_ue_id)
            self.mme.handle_uplink_nas(self, ue_ref, message.mme_ue_id,
                                       message.nas)
            return {"accepted": True}
        if isinstance(message, s1ap.UeContextReleaseRequest):
            self.stats["idle_releases"] = \
                self.stats.get("idle_releases", 0) + 1
            self.mme.handle_ue_idle(message.imsi)
            return {"accepted": True}
        return {"accepted": False}

    def location_of(self, ue_ref: UeRef) -> str:
        return ue_ref[0]

    def page(self, location: str, imsi: str) -> None:
        """Send a paging request to the eNodeB the UE last camped on."""
        self.stats["pages"] = self.stats.get("pages", 0) + 1
        self._spawn_call(location, "paging", s1ap.Paging(imsi=imsi))

    def _on_path_switch(self, request: s1ap.PathSwitchRequest
                        ) -> s1ap.PathSwitchRequestAck:
        """Intra-AGW handover: re-point the UE's context and downlink
        tunnel at the target eNodeB; the session itself does not move."""
        self.enodebd.register(request.enb_id, kind="enodeb")
        self._channel_for(request.enb_id)
        moved = self.mme.update_ue_ref(request.mme_ue_id,
                                       (request.enb_id, request.enb_ue_id))
        if not moved or self.sessiond.session(request.imsi) is None:
            return s1ap.PathSwitchRequestAck(
                enb_ue_id=request.enb_ue_id, mme_ue_id=request.mme_ue_id,
                success=False, cause="unknown UE context or session")
        self.stats["path_switches"] = self.stats.get("path_switches", 0) + 1
        self.sessiond.set_enb_tunnel(request.imsi, request.enb_teid,
                                     request.enb_address or request.enb_id)
        if self.mme.directoryd is not None:
            self.mme.directoryd.update_location(request.imsi, self.name,
                                                request.enb_id)
        return s1ap.PathSwitchRequestAck(
            enb_ue_id=request.enb_ue_id, mme_ue_id=request.mme_ue_id,
            success=True)

    # -- RanFrontend interface (generic MME -> RAN) -----------------------------------

    def send_downlink_nas(self, ue_ref: UeRef, message: Any,
                          mme_ue_id: Optional[int] = None) -> None:
        enb_id, enb_ue_id = ue_ref
        self.stats["downlink_messages"] += 1
        transport = s1ap.DownlinkNasTransport(
            enb_ue_id=enb_ue_id, mme_ue_id=mme_ue_id or 0, nas=message)
        self._spawn_call(enb_id, "downlink_nas", transport)

    def setup_context(self, ue_ref: UeRef, mme_ue_id: int, session: Any,
                      attach_accept: Any) -> None:
        enb_id, enb_ue_id = ue_ref
        request = s1ap.InitialContextSetupRequest(
            enb_ue_id=enb_ue_id, mme_ue_id=mme_ue_id,
            ue_agg_max_bitrate_mbps=session.installed_rate_mbps,
            agw_teid=session.agw_teid, agw_address=self.context.node,
            nas=attach_accept)
        channel = self._channel_for(enb_id)
        imsi = session.imsi

        def proc(sim):
            try:
                response = yield channel.call(
                    ENB_S1AP_SERVICE, "initial_context_setup", request,
                    deadline=self.context.config.rpc_deadline)
            except RpcError:
                self.stats["context_setup_failures"] += 1
                return
            if response.success:
                self.stats["context_setups"] += 1
                if self.sessiond.session(imsi) is not None:
                    self.sessiond.set_enb_tunnel(
                        imsi, response.enb_teid,
                        response.enb_address or enb_id)
            else:
                self.stats["context_setup_failures"] += 1

        self.context.sim.spawn(proc(self.context.sim),
                               name=f"ics:{imsi}")

    def release_context(self, ue_ref: UeRef, mme_ue_id: int,
                        cause: str) -> None:
        enb_id, enb_ue_id = ue_ref
        self.stats["releases"] += 1
        command = s1ap.UeContextReleaseCommand(
            enb_ue_id=enb_ue_id, mme_ue_id=mme_ue_id, cause=cause)
        self._spawn_call(enb_id, "ue_context_release", command)

    # -- internals ----------------------------------------------------------------------

    def _channel_for(self, enb_id: str) -> RpcChannel:
        channel = self._channels.get(enb_id)
        if channel is None:
            channel = RpcChannel(self.context.sim, self.context.network,
                                 self.context.node, enb_id)
            self._channels[enb_id] = channel
        return channel

    def _spawn_call(self, enb_id: str, method: str, payload: Any) -> None:
        channel = self._channel_for(enb_id)

        def proc(sim):
            try:
                yield channel.call(ENB_S1AP_SERVICE, method, payload,
                                   deadline=self.context.config.rpc_deadline)
            except RpcError:
                pass  # the UE-side guard timers own failure semantics

        self.context.sim.spawn(proc(self.context.sim),
                               name=f"s1ap-dl:{enb_id}/{method}")
