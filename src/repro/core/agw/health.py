"""AGW health service: local service checks feeding telemetry northbound.

Table 1 lists telemetry as a Magma responsibility with no 3GPP
equivalent.  The health service aggregates what an operator needs to see
for a gateway without logging into it (§3.1): per-service liveness, RAN
device staleness, resource pressure, and session-plane sanity - shipped to
the orchestrator with each check-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class HealthCheck:
    name: str
    healthy: bool
    detail: str = ""


class HealthService:
    """Evaluates gateway-local health checks on demand."""

    def __init__(self, gateway: "AccessGateway",
                 enb_stale_after: float = 300.0,
                 cp_backlog_warn: float = 30.0,
                 ip_pool_warn_fraction: float = 0.9):
        self.gateway = gateway
        self.enb_stale_after = enb_stale_after
        self.cp_backlog_warn = cp_backlog_warn
        self.ip_pool_warn_fraction = ip_pool_warn_fraction

    def evaluate(self) -> List[HealthCheck]:
        gateway = self.gateway
        checks: List[HealthCheck] = []
        checks.append(HealthCheck(
            name="process", healthy=not gateway.crashed,
            detail="crashed" if gateway.crashed else "running"))
        stale = gateway.enodebd.stale_devices(self.enb_stale_after)
        checks.append(HealthCheck(
            name="ran-devices", healthy=not stale,
            detail=f"stale: {stale}" if stale else
            f"{gateway.enodebd.count()} device(s) healthy"))
        backlog = gateway.context.cpu.queued_work("cp")
        checks.append(HealthCheck(
            name="control-plane-backlog",
            healthy=backlog < self.cp_backlog_warn,
            detail=f"{backlog:.1f} core-seconds queued"))
        sessions = gateway.sessiond.session_count()
        installed = gateway.pipelined.session_count()
        checks.append(HealthCheck(
            name="session-dataplane-consistency",
            healthy=sessions == installed,
            detail=f"{sessions} sessions / {installed} installed"))
        rejected = gateway.mme.stats["attach_rejected"]
        accepted = gateway.mme.stats["attach_accepted"]
        total = rejected + accepted
        reject_fraction = rejected / total if total else 0.0
        checks.append(HealthCheck(
            name="attach-rejects",
            healthy=reject_fraction < 0.5 or total < 10,
            detail=f"{rejected}/{total} rejected"))
        return checks

    def is_healthy(self) -> bool:
        return all(check.healthy for check in self.evaluate())

    def summary(self) -> Dict[str, Any]:
        """Compact form shipped with magmad check-ins."""
        checks = self.evaluate()
        return {
            "healthy": all(c.healthy for c in checks),
            "failing": [c.name for c in checks if not c.healthy],
        }
