"""magmad: the AGW supervisor.

Three responsibilities, straight from §3.2-3.4 of the paper:

- **Checkpointing**: runtime (session) state is checkpointed regularly so a
  crashed AGW - or its cloud backup instance - can restore service for the
  affected UEs (§3.3).
- **Check-in / state sync**: the AGW periodically checks in with the
  orchestrator, reporting status and metrics and pulling the full *desired*
  configuration when its version is stale (§3.4's desired-state model - a
  single successful sync converges the replica no matter what was missed).
- **Headless operation**: when the orchestrator is unreachable, check-ins
  fail and are counted, but nothing else stops - attaches keep succeeding
  from cached subscriber state (§3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ...net.rpc import RpcChannel, RpcError
from ...sim.kernel import Interrupted, Process
from .context import AgwContext


class CheckpointStore:
    """Durable storage for AGW runtime-state snapshots.

    Stands in for the AGW's local disk and/or the cloud backup replica the
    paper describes; it survives AGW crashes by construction.
    """

    def __init__(self):
        self._snapshots: Dict[str, Dict[str, Any]] = {}
        self.stats = {"saves": 0, "loads": 0}

    def save(self, node: str, snapshot: Dict[str, Any]) -> None:
        self._snapshots[node] = snapshot
        self.stats["saves"] += 1

    def load(self, node: str) -> Optional[Dict[str, Any]]:
        self.stats["loads"] += 1
        return self._snapshots.get(node)


class Magmad:
    """Supervisor loops for one AGW."""

    def __init__(self, context: AgwContext, gateway: "AccessGateway",
                 checkpoint_store: Optional[CheckpointStore] = None,
                 orchestrator_node: Optional[str] = None):
        self.context = context
        self.gateway = gateway
        self.checkpoint_store = checkpoint_store
        self.orchestrator_node = orchestrator_node
        self._orc_channel: Optional[RpcChannel] = None
        if orchestrator_node is not None:
            self._orc_channel = RpcChannel(context.sim, context.network,
                                           context.node, orchestrator_node)
        self.config_version = 0
        self.running = False
        self._procs: List[Process] = []
        # Best-effort telemetry (§3.4): every check-in snapshots the
        # gateway's metrics into a seq-numbered buffer; the orchestrator
        # acks the highest seq it ingested.  During headless gaps the
        # buffer accumulates (bounded - oldest dropped) and is back-filled
        # on reconnect; the ack makes redelivery duplicate-free.
        self._metrics_buffer: Deque[Dict[str, Any]] = deque(
            maxlen=context.config.metrics_buffer_max)
        self._metrics_seq = 0
        self.stats = {"checkpoints": 0, "checkins_ok": 0,
                      "checkins_failed": 0, "configs_applied": 0,
                      "metrics_buffered": 0, "metrics_acked": 0}

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        sim = self.context.sim
        self._procs = []
        if self.checkpoint_store is not None:
            self._procs.append(sim.spawn(self._checkpoint_loop(),
                                         name=f"ckpt:{self.context.node}"))
        if self._orc_channel is not None:
            self._procs.append(sim.spawn(self._checkin_loop(),
                                         name=f"checkin:{self.context.node}"))

    def stop(self) -> None:
        """Stop supervisor loops *now*: interrupting them at their current
        sleep keeps a crashed AGW from holding interval timers in the
        scheduler until their next tick."""
        self.running = False
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.alive:
                proc.interrupt("magmad stopped")

    # -- checkpointing -------------------------------------------------------------

    def checkpoint_now(self) -> Dict[str, Any]:
        with self.context.tracer.begin("magmad.checkpoint",
                                       component="magmad",
                                       node=self.context.node):
            snapshot = {
                "time": self.context.sim.now,
                "sessions": self.gateway.sessiond.checkpoint(),
                "config_version": self.config_version,
            }
            if self.checkpoint_store is not None:
                self.checkpoint_store.save(self.context.node, snapshot)
            self.stats["checkpoints"] += 1
        return snapshot

    def _checkpoint_loop(self):
        interval = self.context.config.checkpoint_interval
        try:
            while self.running:
                yield self.context.sim.timeout(interval)
                if not self.running:
                    return
                self.checkpoint_now()
        except Interrupted:
            return

    # -- check-in / config sync --------------------------------------------------------

    def checkin_once(self):
        """Generator: one check-in exchange with the orchestrator."""
        self._buffer_metrics()
        backlog = list(self._metrics_buffer)
        max_backfill = self.context.config.metrics_max_backfill
        if len(backlog) > max_backfill:
            backlog = backlog[:max_backfill]  # oldest first; rest next round
        request = {
            "gateway_id": self.context.node,
            "network_id": self.context.config.network_id,
            "config_version": self.config_version,
            "status": self.gateway.status_summary(),
            "metrics_backlog": backlog,
        }
        span = self.context.tracer.begin("magmad.checkin",
                                         component="magmad",
                                         node=self.context.node)
        try:
            with span.active():
                response = yield self._orc_channel.call(
                    "statesync", "checkin", request,
                    deadline=self.context.config.rpc_deadline)
        except RpcError:
            self.stats["checkins_failed"] += 1
            span.end("error")
            return False
        span.end()
        self.stats["checkins_ok"] += 1
        self._ack_metrics(response.get("metrics_ack"))
        if response.get("config") is not None:
            self.apply_config(response["config"], response["config_version"])
        return True

    def _buffer_metrics(self) -> None:
        """Snapshot current metrics into the seq-numbered backlog."""
        self._metrics_seq += 1
        self._metrics_buffer.append({
            "seq": self._metrics_seq,
            "time": self.context.sim.now,
            "metrics": self.gateway.metrics_summary(),
        })
        self.stats["metrics_buffered"] += 1

    def _ack_metrics(self, ack: Optional[int]) -> None:
        if ack is None:
            return
        while self._metrics_buffer and self._metrics_buffer[0]["seq"] <= ack:
            self._metrics_buffer.popleft()
            self.stats["metrics_acked"] += 1

    def metrics_backlog_depth(self) -> int:
        return len(self._metrics_buffer)

    def _checkin_loop(self):
        interval = self.context.config.checkin_interval
        try:
            while self.running:
                yield self.context.sim.timeout(interval)
                if not self.running:
                    return
                yield from self.checkin_once()
        except Interrupted:
            return

    def apply_config(self, bundle: Dict[str, Any], version: int) -> None:
        """Apply a full desired-state configuration bundle."""
        subscribers = bundle.get("subscribers")
        if subscribers is not None:
            self.gateway.subscriberdb.apply_desired_state(subscribers, version)
        policies = bundle.get("policies")
        if policies is not None:
            self.gateway.policydb.apply_desired_state(policies, version)
        ran_config = bundle.get("ran")
        if ran_config is not None:
            self.gateway.enodebd.apply_desired_config(ran_config, version)
        self.config_version = version
        self.stats["configs_applied"] += 1
