"""magmad: the AGW supervisor.

Three responsibilities, straight from §3.2-3.4 of the paper:

- **Checkpointing**: runtime (session) state is checkpointed regularly so a
  crashed AGW - or its cloud backup instance - can restore service for the
  affected UEs (§3.3).
- **Check-in / state sync**: the AGW periodically checks in with the
  orchestrator, reporting status and metrics and pulling the full *desired*
  configuration when its version is stale (§3.4's desired-state model - a
  single successful sync converges the replica no matter what was missed).
- **Headless operation**: when the orchestrator is unreachable, check-ins
  fail and are counted, but nothing else stops - attaches keep succeeding
  from cached subscriber state (§3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ...net.rpc import RpcChannel, RpcError, payload_bytes
from ...sim.kernel import Interrupted, Process
from ..sync import DigestMirror, ReconcileClient
from .context import AgwContext


class CheckpointStore:
    """Durable storage for AGW runtime-state snapshots.

    Stands in for the AGW's local disk and/or the cloud backup replica the
    paper describes; it survives AGW crashes by construction.
    """

    def __init__(self):
        self._snapshots: Dict[str, Dict[str, Any]] = {}
        self.stats = {"saves": 0, "loads": 0}

    def save(self, node: str, snapshot: Dict[str, Any]) -> None:
        self._snapshots[node] = snapshot
        self.stats["saves"] += 1

    def load(self, node: str) -> Optional[Dict[str, Any]]:
        self.stats["loads"] += 1
        return self._snapshots.get(node)


class Magmad:
    """Supervisor loops for one AGW."""

    def __init__(self, context: AgwContext, gateway: "AccessGateway",
                 checkpoint_store: Optional[CheckpointStore] = None,
                 orchestrator_node: Optional[str] = None):
        self.context = context
        self.gateway = gateway
        self.checkpoint_store = checkpoint_store
        self.orchestrator_node = orchestrator_node
        self._orc_channel: Optional[RpcChannel] = None
        if orchestrator_node is not None:
            self._orc_channel = RpcChannel(context.sim, context.network,
                                           context.node, orchestrator_node)
        self.config_version = 0
        self.running = False
        self._procs: List[Process] = []
        # Best-effort telemetry (§3.4): every check-in snapshots the
        # gateway's metrics into a seq-numbered buffer; the orchestrator
        # acks the highest seq it ingested.  During headless gaps the
        # buffer accumulates (bounded - oldest dropped) and is back-filled
        # on reconnect; the ack makes redelivery duplicate-free.
        self._metrics_buffer: Deque[Dict[str, Any]] = deque(
            maxlen=context.config.metrics_buffer_max)
        self._metrics_seq = 0
        # High-water mark of shipped attach-latency samples: each buffered
        # batch carries only rows recorded strictly after the previous one
        # (the window is exclusive, so boundary samples never duplicate).
        self._latency_since = -1.0
        # Digest trees over the *applied* config (repro.core.sync): every
        # check-in carries their roots so the orchestrator can elide
        # in-sync namespaces and reconcile divergent ones by tree walk.
        self.mirror = DigestMirror()
        self.stats = {"checkpoints": 0, "checkins_ok": 0,
                      "checkins_failed": 0, "configs_applied": 0,
                      "metrics_buffered": 0, "metrics_acked": 0,
                      "reconciles": 0, "reconcile_rounds": 0,
                      "reconciles_aborted": 0, "delta_upserts": 0,
                      "delta_tombstones": 0, "digest_fast_forwards": 0,
                      "checkin_tx_bytes": 0, "checkin_rx_bytes": 0}

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        sim = self.context.sim
        self._procs = []
        if self.checkpoint_store is not None:
            self._procs.append(sim.spawn(self._checkpoint_loop(),
                                         name=f"ckpt:{self.context.node}"))
        if self._orc_channel is not None:
            self._procs.append(sim.spawn(self._checkin_loop(),
                                         name=f"checkin:{self.context.node}"))

    def stop(self) -> None:
        """Stop supervisor loops *now*: interrupting them at their current
        sleep keeps a crashed AGW from holding interval timers in the
        scheduler until their next tick."""
        self.running = False
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.alive:
                proc.interrupt("magmad stopped")

    # -- checkpointing -------------------------------------------------------------

    def checkpoint_now(self) -> Dict[str, Any]:
        with self.context.tracer.begin("magmad.checkpoint",
                                       component="magmad",
                                       node=self.context.node):
            snapshot = {
                "time": self.context.sim.now,
                "sessions": self.gateway.sessiond.checkpoint(),
                "config_version": self.config_version,
            }
            if self.checkpoint_store is not None:
                self.checkpoint_store.save(self.context.node, snapshot)
            self.stats["checkpoints"] += 1
        return snapshot

    def _checkpoint_loop(self):
        interval = self.context.config.checkpoint_interval
        try:
            while self.running:
                yield self.context.sim.timeout(interval)
                if not self.running:
                    return
                self.checkpoint_now()
        except Interrupted:
            return

    # -- check-in / config sync --------------------------------------------------------

    def checkin_once(self):
        """Generator: one check-in exchange with the orchestrator."""
        self._buffer_metrics()
        backlog = list(self._metrics_buffer)
        max_backfill = self.context.config.metrics_max_backfill
        if len(backlog) > max_backfill:
            backlog = backlog[:max_backfill]  # oldest first; rest next round
        request = {
            "gateway_id": self.context.node,
            "network_id": self.context.config.network_id,
            "config_version": self.config_version,
            "digest_roots": self.mirror.roots(),
            "status": self.gateway.status_summary(),
            "metrics_backlog": backlog,
        }
        span = self.context.tracer.begin("magmad.checkin",
                                         component="magmad",
                                         node=self.context.node)
        self._record_wire(tx=payload_bytes(request))
        try:
            with span.active():
                response = yield self._orc_channel.call(
                    "statesync", "checkin", request,
                    deadline=self.context.config.rpc_deadline)
        except RpcError:
            self.stats["checkins_failed"] += 1
            span.end("error")
            return False
        span.end()
        self.stats["checkins_ok"] += 1
        self._record_wire(rx=payload_bytes(response))
        self._ack_metrics(response.get("metrics_ack"))
        if response.get("config") is not None:
            self.apply_config(response["config"], response["config_version"])
        elif response.get("sync"):
            yield from self._reconcile(response)
        elif response.get("digest_in_sync"):
            # Roots match but the version moved (a rewrite of identical
            # values): adopt the new version without transferring anything.
            self.config_version = response["config_version"]
            self.stats["digest_fast_forwards"] += 1
        return True

    def _reconcile(self, checkin_response: Dict[str, Any]):
        """Generator: walk divergent digest trees down to leaf deltas."""
        client = ReconcileClient(self.mirror, self._apply_delta,
                                 self.context.config.network_id,
                                 self.context.node)
        request = client.start(checkin_response)
        while request is not None:
            self._record_wire(tx=payload_bytes(request))
            try:
                reply = yield self._orc_channel.call(
                    "statesync", "reconcile", request,
                    deadline=self.context.config.rpc_deadline)
            except RpcError:
                # Safe to abandon mid-walk: deltas applied so far only
                # moved this replica *toward* the orchestrator, and the
                # next check-in's roots restart the walk where it stopped.
                self.stats["reconciles_aborted"] += 1
                return False
            self._record_wire(rx=payload_bytes(reply))
            request = client.feed(reply)
        result = client.result()
        self.stats["reconciles"] += 1
        self.stats["reconcile_rounds"] += result.rounds
        self.stats["delta_upserts"] += result.upserts
        self.stats["delta_tombstones"] += result.tombstones
        if result.converged:
            self.config_version = result.config_version
            self.stats["configs_applied"] += 1
        return result.converged

    def _apply_delta(self, label: str, upserts: Dict[str, Any],
                     deletes: List[str], version: int) -> None:
        """Apply one reconciled leaf delta to the owning local store."""
        if label == "subscribers":
            self.gateway.subscriberdb.apply_desired_delta(
                upserts, deletes, version)
        elif label == "policies":
            self.gateway.policydb.apply_desired_delta(
                upserts, deletes, version)
        elif label == "ran":
            self.gateway.enodebd.apply_desired_delta(
                upserts, deletes, version)

    def _record_wire(self, tx: int = 0, rx: int = 0) -> None:
        self.stats["checkin_tx_bytes"] += tx
        self.stats["checkin_rx_bytes"] += rx
        monitor = self.context.monitor
        if tx:
            monitor.count("checkin.tx_bytes", tx)
        if rx:
            monitor.count("checkin.rx_bytes", rx)

    def _buffer_metrics(self) -> None:
        """Snapshot current metrics into the seq-numbered backlog."""
        self._metrics_seq += 1
        entry = {
            "seq": self._metrics_seq,
            "time": self.context.sim.now,
            "metrics": self.gateway.metrics_summary(),
        }
        latency = self._collect_latency()
        if latency:
            entry["latency"] = latency
        self._metrics_buffer.append(entry)
        self.stats["metrics_buffered"] += 1

    #: Newest latency rows shipped per batch (distribution samples are
    #: best-effort telemetry; a huge storm ships its tail, not its bulk).
    LATENCY_ROWS_PER_BATCH = 200

    def _collect_latency(self) -> Dict[str, List[list]]:
        """Attach-latency rows recorded since the last buffered batch.

        Rows are ``[time, value, trace_id|None]`` — the trace id is the
        sample's exemplar, carried through metricsd so the orchestrator's
        p99 stays resolvable to a real trace.
        """
        monitor = self.context.monitor
        name = f"attach.latency.{self.context.node}"
        if not monitor.has_series(name):
            return {}
        rows = monitor.series(name).recent_samples(self._latency_since)
        self._latency_since = self.context.sim.now
        if not rows:
            return {}
        rows = rows[-self.LATENCY_ROWS_PER_BATCH:]
        return {"attach_latency_s": [[t, v, tid] for t, v, tid in rows]}

    def _ack_metrics(self, ack: Optional[int]) -> None:
        if ack is None:
            return
        while self._metrics_buffer and self._metrics_buffer[0]["seq"] <= ack:
            self._metrics_buffer.popleft()
            self.stats["metrics_acked"] += 1

    def metrics_backlog_depth(self) -> int:
        return len(self._metrics_buffer)

    def _checkin_loop(self):
        interval = self.context.config.checkin_interval
        try:
            while self.running:
                yield self.context.sim.timeout(interval)
                if not self.running:
                    return
                yield from self.checkin_once()
        except Interrupted:
            return

    def apply_config(self, bundle: Dict[str, Any], version: int) -> None:
        """Apply a full desired-state configuration bundle."""
        subscribers = bundle.get("subscribers")
        if subscribers is not None:
            self.gateway.subscriberdb.apply_desired_state(subscribers, version)
            self.mirror.rebuild("subscribers", subscribers)
        policies = bundle.get("policies")
        if policies is not None:
            self.gateway.policydb.apply_desired_state(policies, version)
            self.mirror.rebuild("policies", policies)
        ran_config = bundle.get("ran")
        if ran_config is not None:
            self.gateway.enodebd.apply_desired_config(ran_config, version)
            self.mirror.rebuild("ran", ran_config)
        self.config_version = version
        self.stats["configs_applied"] += 1
