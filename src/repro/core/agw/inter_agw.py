"""Inter-AGW mobility: the paper's stated future work (§3.2, §6).

"Seamless mobility *between* AGWs would require communicating some
control-plane state from one AGW to another during hand-offs ... we expect
to add it in the future."

This module implements that hand-off as an S10-style AGW-to-AGW interface:

1. The target AGW fetches the UE's session context from the source over
   RPC (``s10/context_transfer``).  The source reports final usage to the
   OCS, writes its CDR, and releases the session.
2. The transferred *policy enforcement state* (bytes against usage caps,
   interval position) is staged at the target, and the UE re-attaches
   there; ``sessiond`` seeds the new session's enforcement from the staged
   context instead of starting fresh.

The UE's IP address changes (each AGW owns its own block - true IP
preservation would need the network virtualization the paper also defers),
but the *accounting* state moves with the user.  A side effect the paper
would appreciate: the §3.4 double-spend trick stops working, because the
cap/usage state follows the subscriber across gateways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ...net.rpc import RpcChannel, RpcError, RpcServer
from .context import AgwContext
from .sessiond import Sessiond

S10_SERVICE = "s10"


@dataclass(frozen=True)
class TransferredContext:
    """The control-plane state that moves between AGWs during hand-off."""

    imsi: str
    policy_id: str
    total_bytes: int
    interval_bytes: int
    interval_start: float
    source_agw: str
    bytes_dl: int
    bytes_ul: int


class InterAgwMobility:
    """S10-style context transfer endpoint of one AGW."""

    def __init__(self, context: AgwContext, server: RpcServer,
                 sessiond: Sessiond):
        self.context = context
        self.sessiond = sessiond
        self._channels: Dict[str, RpcChannel] = {}
        self.stats = {"transfers_out": 0, "transfers_in": 0,
                      "transfer_misses": 0}
        server.register(S10_SERVICE, "context_transfer",
                        self._on_context_transfer)

    # -- source side ---------------------------------------------------------------

    def _on_context_transfer(self, request: Dict[str, Any]
                             ) -> TransferredContext:
        imsi = request["imsi"]
        session = self.sessiond.session(imsi)
        if session is None:
            self.stats["transfer_misses"] += 1
            raise RpcError(RpcError.NOT_FOUND, f"no session for {imsi}")
        with self.context.tracer.child("s10.context_transfer_out",
                                       component="inter_agw",
                                       node=self.context.node):
            enforcement = session.enforcement
            transferred = TransferredContext(
                imsi=imsi, policy_id=session.policy_id,
                total_bytes=enforcement.total_bytes,
                interval_bytes=enforcement.interval_bytes,
                interval_start=enforcement.interval_start,
                source_agw=self.context.node,
                bytes_dl=session.bytes_dl, bytes_ul=session.bytes_ul)
            # Final usage is reported and the session released at the
            # source; unspent OCS quota is returned uncharged (no double
            # spend).
            self.sessiond.terminate_session(imsi, reason="handover-out")
            self.stats["transfers_out"] += 1
        return transferred

    # -- target side ------------------------------------------------------------------

    def fetch_context(self, imsi: str, source_agw: str):
        """Generator: pull the UE's context from ``source_agw`` and stage
        it for the upcoming attach.  Returns the context or None."""
        channel = self._channels.get(source_agw)
        if channel is None:
            channel = RpcChannel(self.context.sim, self.context.network,
                                 self.context.node, source_agw)
            self._channels[source_agw] = channel
        span = self.context.tracer.begin("handover.s10_fetch",
                                         component="inter_agw",
                                         node=self.context.node,
                                         tags={"imsi": imsi,
                                               "source": source_agw})
        try:
            with span.active():
                transferred = yield channel.call(
                    S10_SERVICE, "context_transfer", {"imsi": imsi},
                    deadline=self.context.config.rpc_deadline)
        except RpcError:
            span.end("error")
            return None
        span.end()
        self.sessiond.stage_transfer(transferred)
        self.stats["transfers_in"] += 1
        return transferred
