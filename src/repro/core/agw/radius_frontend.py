"""RADIUS frontend: terminates WiFi AAA at the AGW edge.

The WiFi column of Table 1: access control, subscriber management, and
session management all map to RADIUS AAA - and in Magma they are served by
the *same* generic functions that serve LTE/5G.  This frontend translates
Access-Request/Accounting into :class:`AccessManagement` and
:class:`Sessiond` calls; no RADIUS type escapes this module.
"""

from __future__ import annotations

from typing import Any, Dict

import itertools

from ...net.rpc import RpcServer
from ...wifi import eap
from ...wifi.radius import (
    AccessAccept,
    AccessReject,
    AccessRequest,
    AccountingRequest,
    AccountingResponse,
    EapChallengeResponse,
    EapStartRequest,
    RADIUS_SERVICE,
)
from .context import AgwContext
from .directoryd import Directoryd
from .enodebd import Enodebd
from .mme import AccessManagement
from .sessiond import SessionError, Sessiond


class RadiusFrontend:
    """WiFi access frontend of one AGW."""

    name = "radius"

    def __init__(self, context: AgwContext, server: RpcServer,
                 mme: AccessManagement, sessiond: Sessiond,
                 enodebd: Enodebd):
        self.context = context
        self.mme = mme
        self.sessiond = sessiond
        self.enodebd = enodebd
        self.stats = {"access_requests": 0, "eap_starts": 0, "accepts": 0,
                      "rejects": 0, "accounting_stops": 0,
                      "accounting_interims": 0}
        self._nonce_counter = itertools.count(1)
        self._outstanding_nonces = {}
        server.register(RADIUS_SERVICE, "eap_start", self._on_eap_start)
        server.register(RADIUS_SERVICE, "access_request",
                        self._on_access_request)
        server.register(RADIUS_SERVICE, "accounting", self._on_accounting)

    def _on_eap_start(self, request: EapStartRequest) -> EapChallengeResponse:
        """First RADIUS round trip: issue an EAP challenge."""
        self.stats["eap_starts"] += 1
        self.enodebd.register(request.ap_id, kind="wifi-ap")
        nonce = eap.make_nonce(request.username, next(self._nonce_counter))
        self._outstanding_nonces[request.username] = nonce
        return EapChallengeResponse(username=request.username, nonce=nonce)

    def _on_access_request(self, request: AccessRequest):
        self.stats["access_requests"] += 1
        self.enodebd.register(request.ap_id, kind="wifi-ap")
        expected_nonce = self._outstanding_nonces.pop(request.username, None)

        def proc(sim):
            if expected_nonce is None or request.nonce != expected_nonce:
                self.stats["rejects"] += 1
                return AccessReject(username=request.username,
                                    cause="no outstanding EAP challenge")
            try:
                session = yield from self.mme.authenticate_eap(
                    request.username, request.nonce, request.eap_proof)
            except SessionError as exc:
                self.stats["rejects"] += 1
                return AccessReject(username=request.username,
                                    cause=str(exc))
            self.stats["accepts"] += 1
            if self.mme.directoryd is not None:
                self.mme.directoryd.update_location(
                    request.username, self.name, request.ap_id)
            # WiFi has no GTP tunnel: downlink egresses straight to the AP.
            # Reuse the tunnel slot with TEID 0 toward the AP node so the
            # pipeline has a complete downlink path.
            self.sessiond.set_enb_tunnel(request.username, 0, request.ap_id)
            return AccessAccept(username=request.username,
                                framed_ip=session.ue_ip,
                                session_id=session.session_id)

        return proc(self.context.sim)

    def _on_accounting(self, request: AccountingRequest):
        if request.acct_type == AccountingRequest.ACCT_STOP:
            self.stats["accounting_stops"] += 1
            self.sessiond.terminate_session(request.username,
                                            reason="radius-stop")
            if self.mme.directoryd is not None:
                self.mme.directoryd.remove(request.username)
        elif request.acct_type == AccountingRequest.ACCT_INTERIM:
            self.stats["accounting_interims"] += 1
            self.sessiond.record_usage(request.username,
                                       dl_bytes=request.bytes_dl,
                                       ul_bytes=request.bytes_ul)
        return AccountingResponse(session_id=request.session_id or "")
