"""Subscriber database (the AGW-local, cached half).

Table 1 of the paper: Magma's *subscriber management* abstraction plays the
role of the HSS (LTE), UDM/AUSF (5G), and RADIUS AAA (WiFi).  The
authoritative store lives in the orchestrator; each AGW holds a cached copy
synchronized with the desired-state model, which is what lets an AGW keep
authenticating UEs while disconnected from the orchestrator ("headless"
operation, §3.2).

The profile schema is deliberately the *union* of capabilities across radio
technologies (§3.1): LTE/5G entries carry K/OPc for AKA, WiFi entries may
carry a password-equivalent instead; unused fields are simply None.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ...lte import auth


@dataclass(frozen=True)
class SubscriberProfile:
    """One subscriber, across all access technologies."""

    imsi: str
    k: Optional[bytes] = None            # LTE/5G secret key
    opc: Optional[bytes] = None          # LTE/5G operator-derived constant
    wifi_secret: Optional[str] = None    # WiFi password-equivalent
    policy_id: str = "default"
    apn: str = "internet"
    active: bool = True
    federated: bool = False   # roaming-cached profile from a partner MNO


class SubscriberDb:
    """AGW-local subscriber store with network-side SQN tracking."""

    def __init__(self):
        self._profiles: Dict[str, SubscriberProfile] = {}
        self._sqn: Dict[str, int] = {}
        self.version = 0  # config version last applied (desired-state sync)

    def __len__(self) -> int:
        return len(self._profiles)

    def get(self, imsi: str) -> Optional[SubscriberProfile]:
        profile = self._profiles.get(imsi)
        if profile is not None and not profile.active:
            return None
        return profile

    def upsert(self, profile: SubscriberProfile) -> None:
        self._profiles[profile.imsi] = profile

    def delete(self, imsi: str) -> bool:
        return self._profiles.pop(imsi, None) is not None

    def all_imsis(self):
        return list(self._profiles)

    def apply_desired_state(self, profiles: Dict[str, SubscriberProfile],
                            version: int) -> None:
        """Replace the entire subscriber set (the desired-state model, §3.4).

        Unlike CRUD deltas, this is idempotent and self-healing: whatever
        updates were lost, one successful sync converges the replica.
        """
        self._profiles = dict(profiles)
        self.version = version

    def apply_desired_delta(self, upserts: Dict[str, SubscriberProfile],
                            deletes: List[str], version: int) -> None:
        """Apply a digest-reconciled delta (``repro.core.sync``).

        Still the desired-state model, at leaf-bucket granularity: the
        delta is computed against a digest of *this* replica's applied
        state, so applying it converges the replica exactly - deletes
        are tombstones for keys the orchestrator no longer has, and the
        digest walk re-ships anything a lost delta left divergent.
        """
        for imsi in deletes:
            self._profiles.pop(imsi, None)
        self._profiles.update(upserts)
        self.version = version

    # -- authentication support ----------------------------------------------------

    def next_sqn(self, imsi: str) -> int:
        """Advance and return the network-side SQN for ``imsi``."""
        sqn = self._sqn.get(imsi, 0) + 1
        self._sqn[imsi] = sqn
        return sqn

    def resync_sqn(self, imsi: str, usim_sqn: int) -> None:
        """SQN resynchronization (3GPP AUTS): adopt the USIM's view so the
        next vector is acceptable.  Used when a UE arrives at an AGW whose
        SQN state lags (e.g. after moving between gateways)."""
        if usim_sqn < 0:
            raise ValueError("SQN must be >= 0")
        self._sqn[imsi] = max(self._sqn.get(imsi, 0), usim_sqn)

    def generate_auth_vector(self, imsi: str, rand: bytes) -> auth.AuthVector:
        """Generate an EPS-AKA vector for a known, active subscriber."""
        profile = self.get(imsi)
        if profile is None:
            raise KeyError(f"unknown or inactive subscriber {imsi}")
        if profile.k is None or profile.opc is None:
            raise KeyError(f"subscriber {imsi} has no AKA credentials")
        return auth.generate_vector(profile.k, profile.opc,
                                    self.next_sqn(imsi), rand)
