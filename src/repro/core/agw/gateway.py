"""The Access Gateway: Magma's core contribution, assembled.

An :class:`AccessGateway` composes the services of Figure 4 - RAN-specific
frontends on the left, generic functions on the right - around one CPU
model, one software data plane, and one RPC server on the AGW's network
node.  It is a *small fault domain* (§3.3): ``crash()`` loses all runtime
state and drops off the network; ``recover()`` restores sessions from the
last checkpoint.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...net.rpc import RpcChannel, RpcServer
from ...net.simnet import Network
from ...sim.kernel import Simulator
from ...sim.monitor import Monitor
from ...sim.rng import RngRegistry
from ..policy.accounting import AccountingLog
from .context import AgwConfig, AgwContext
from .directoryd import Directoryd
from .enodebd import Enodebd
from .magmad import CheckpointStore, Magmad
from .mme import AccessManagement, FederationClient
from .mobilityd import Mobilityd
from .pipelined import Pipelined
from .policydb import PolicyDb
from .ngap_frontend import NgapFrontend
from .radius_frontend import RadiusFrontend
from .s1ap_frontend import S1apFrontend
from .sessiond import LocalOcsClient, RpcOcsClient, Sessiond
from .subscriberdb import SubscriberDb


class AccessGateway:
    """One Magma AGW: frontends + generic functions + data plane."""

    def __init__(self, sim: Simulator, network: Network, node: str,
                 config: Optional[AgwConfig] = None,
                 orchestrator_node: Optional[str] = None,
                 ocs: Optional[Any] = None,
                 ocs_node: Optional[str] = None,
                 checkpoint_store: Optional[CheckpointStore] = None,
                 monitor: Optional[Monitor] = None,
                 rng: Optional[RngRegistry] = None):
        self.context = AgwContext(sim, network, node, config=config,
                                  monitor=monitor, rng=rng)
        self.node = node
        self.crashed = False
        self.server = RpcServer(sim, network, node)
        self.subscriberdb = SubscriberDb()
        self.policydb = PolicyDb()
        self.mobilityd = Mobilityd(self.context.config.ip_block)
        self.pipelined = Pipelined(self.context)
        self.accounting = AccountingLog()
        ocs_client = None
        if ocs is not None:
            ocs_client = LocalOcsClient(sim, ocs)
        elif ocs_node is not None:
            channel = RpcChannel(sim, network, node, ocs_node)
            ocs_client = RpcOcsClient(channel,
                                      deadline=self.context.config.rpc_deadline)
        self.sessiond = Sessiond(self.context, self.subscriberdb,
                                 self.policydb, self.mobilityd,
                                 self.pipelined, ocs_client=ocs_client,
                                 accounting=self.accounting)
        self.directoryd = Directoryd(clock=lambda: sim.now)
        self.enodebd = Enodebd(clock=lambda: sim.now)
        federation = None
        if self.context.config.feg_node is not None:
            feg_channel = RpcChannel(sim, network, node,
                                     self.context.config.feg_node)
            federation = FederationClient(feg_channel)
        self.mme = AccessManagement(self.context, self.subscriberdb,
                                    self.sessiond, directoryd=self.directoryd,
                                    federation=federation)
        self.s1ap = S1apFrontend(self.context, self.server, self.mme,
                                 self.sessiond, self.enodebd)
        self.radius = RadiusFrontend(self.context, self.server, self.mme,
                                     self.sessiond, self.enodebd)
        self.ngap = NgapFrontend(self.context, self.server, self.mme,
                                 self.sessiond, self.enodebd)
        self.magmad = Magmad(self.context, self,
                             checkpoint_store=checkpoint_store,
                             orchestrator_node=orchestrator_node)
        from .health import HealthService
        self.health = HealthService(self)
        from .inter_agw import InterAgwMobility
        self.inter_agw = InterAgwMobility(self.context, self.server,
                                          self.sessiond)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Start supervisor loops (checkpointing, orchestrator check-in)."""
        self.magmad.start()

    def crash(self) -> None:
        """Fail-stop: drop off the network and lose all runtime state."""
        if self.crashed:
            return
        self.crashed = True
        self.context.network.set_node_up(self.node, False)
        self.magmad.stop()
        rec = self.context.sim.recorder
        if rec is not None:
            rec.node(self.node).error(
                "gateway", "crash",
                sessions_lost=self.sessiond.session_count())
            rec.snapshot(f"crash:{self.node}")

    def recover(self, from_checkpoint: bool = True) -> int:
        """Restart after a crash; returns the number of sessions restored.

        A fresh process has empty runtime state; if a checkpoint exists the
        sessions (and their data-plane rules) are rebuilt from it.  MME NAS
        contexts are *not* restored - they are ephemeral and recoverable,
        §3.4: a UE mid-attach simply retries.
        """
        if not self.crashed:
            return 0
        self._wipe_runtime_state()
        self.context.network.set_node_up(self.node, True)
        self.crashed = False
        restored = 0
        store = self.magmad.checkpoint_store
        if from_checkpoint and store is not None:
            snapshot = store.load(self.node)
            if snapshot is not None:
                restored = self.sessiond.restore(snapshot["sessions"])
                self.magmad.config_version = snapshot.get("config_version", 0)
        self.magmad.start()
        rec = self.context.sim.recorder
        if rec is not None:
            rec.node(self.node).info(
                "gateway", "restore", sessions_restored=restored,
                from_checkpoint=from_checkpoint)
            rec.snapshot(f"restore:{self.node}")
        return restored

    def _wipe_runtime_state(self) -> None:
        for imsi in list(self.pipelined.installed_imsis()):
            self.pipelined.remove_session(imsi)
        self.sessiond._sessions.clear()
        self.mme._by_imsi.clear()
        self.mme._by_mme_ue_id.clear()
        self.mobilityd.restore({})

    # -- reporting -------------------------------------------------------------------

    def status_summary(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "sessions": self.sessiond.session_count(),
            "subscribers_cached": len(self.subscriberdb),
            "ran_devices": self.enodebd.count(),
            "crashed": self.crashed,
            "health": self.health.summary(),
        }

    def metrics_summary(self) -> Dict[str, float]:
        """The per-gateway telemetry bundle shipped at every check-in.

        Session/attach counters, the pipelined lookup-stack gauges
        (``dp_microflow_*``, ``dp_rules``, ...) and everything accumulated
        in the AGW monitor, flattened to one {name: value} payload that
        metricsd labels with this gateway's id.
        """
        self.pipelined.record_datapath_metrics()
        mme = self.mme.stats
        metrics: Dict[str, float] = {
            "attach_requests": float(mme["attach_requests"]),
            "attach_accepted": float(mme["attach_accepted"]),
            "attach_rejected": float(mme["attach_rejected"]),
            "sessions_active": float(self.sessiond.session_count()),
            "checkin_tx_bytes": float(self.magmad.stats["checkin_tx_bytes"]),
            "checkin_rx_bytes": float(self.magmad.stats["checkin_rx_bytes"]),
        }
        monitor = self.context.monitor
        cpu_series = f"cpu.{self.node}.util"
        if monitor.has_series(cpu_series):
            series = monitor.series(cpu_series)
            if series.count:
                # CPU headroom input for the orchestrator's health engine.
                metrics["cpu_util"] = series.last()
        metrics.update(monitor.counters())
        metrics.update(monitor.gauges())
        return metrics

    # -- traffic integration (fluid user plane) ------------------------------------------

    def page(self, imsi: str) -> bool:
        """Page an idle UE so pending downlink data can be delivered."""
        return self.mme.page(imsi)

    def admitted_downlink(self, imsi: str, offered_mbps: float) -> float:
        """Policy-shaped rate the data plane admits for a UE's downlink."""
        if self.crashed:
            return 0.0
        return self.pipelined.admitted_downlink_rate(imsi, offered_mbps)

    def set_user_plane_load(self, total_mbps: float) -> None:
        """Set the fluid user-plane CPU demand for the current tick."""
        cost = self.context.config.hardware.up_cost_per_mbps
        self.context.cpu.set_fluid_demand("up", "traffic", total_mbps * cost)

    def user_plane_service_fraction(self) -> float:
        """Fraction of offered user-plane work the CPU served last quantum."""
        return self.context.cpu.fluid_service_fraction("up")
