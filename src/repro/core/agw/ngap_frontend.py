"""NGAP frontend: terminates the 5G control protocol at the AGW edge.

The 5G column of Table 1: AMF -> access management, SMF/PCF -> session and
policy management, UPF -> the same software data plane.  This frontend owns
the 5G registration and PDU-session state machines but delegates every
substantive step to the generic functions (``AccessManagement`` /
``Sessiond``) shared with LTE and WiFi - demonstrating the paper's claim
that adding 5G did not change the core (§3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ...fiveg import nas5g, ngap
from ...net.rpc import RpcChannel, RpcError, RpcServer
from .context import AgwContext
from .enodebd import Enodebd
from .mme import AccessManagement
from .sessiond import SessionError, Sessiond

UeRef5g = Tuple[str, int]  # (gnb_id, ran_ue_id)


class Ngap5gState:
    WAIT_AUTH = "wait-auth"
    WAIT_SMC = "wait-smc"
    WAIT_REG_COMPLETE = "wait-reg-complete"
    REGISTERED = "registered"


@dataclass
class NgapUeContext:
    amf_ue_id: int
    imsi: str
    ue_ref: UeRef5g
    state: str = Ngap5gState.WAIT_AUTH
    xres: bytes = b""


class NgapFrontend:
    """5G access frontend of one AGW."""

    name = "ngap"

    def __init__(self, context: AgwContext, server: RpcServer,
                 mme: AccessManagement, sessiond: Sessiond,
                 enodebd: Enodebd):
        self.context = context
        self.mme = mme
        self.sessiond = sessiond
        self.enodebd = enodebd
        self._ue_ids = itertools.count(1)
        self._by_amf_ue_id: Dict[int, NgapUeContext] = {}
        self._by_imsi: Dict[str, NgapUeContext] = {}
        self._channels: Dict[str, RpcChannel] = {}
        self.stats = {"ng_setups": 0, "registrations": 0,
                      "registration_rejects": 0, "pdu_sessions": 0,
                      "pdu_rejects": 0, "deregistrations": 0}
        server.register(ngap.NGAP_SERVICE, "setup", self._on_setup)
        server.register(ngap.NGAP_SERVICE, "uplink", self._on_uplink)

    # -- southbound handlers ------------------------------------------------------

    def _on_setup(self, request: ngap.NgSetupRequest) -> ngap.NgSetupResponse:
        self.stats["ng_setups"] += 1
        self.enodebd.register(request.gnb_id, kind="gnb")
        self._channel_for(request.gnb_id)
        return ngap.NgSetupResponse(amf_name=self.context.node, accepted=True)

    def _on_uplink(self, message: Any) -> Dict[str, bool]:
        if isinstance(message, ngap.InitialUeMessage5g):
            ue_ref: UeRef5g = (message.gnb_id, message.ran_ue_id)
            if isinstance(message.nas, nas5g.RegistrationRequest):
                self.context.sim.spawn(
                    self._registration_stage1(ue_ref, message.nas),
                    name=f"5g-reg:{message.nas.imsi}")
            return {"accepted": True}
        if isinstance(message, ngap.UplinkNasTransport5g):
            ue_context = self._by_amf_ue_id.get(message.amf_ue_id)
            if ue_context is None:
                return {"accepted": False}
            self._dispatch_nas(ue_context, message.nas)
            return {"accepted": True}
        return {"accepted": False}

    def _dispatch_nas(self, ue_context: NgapUeContext, message: Any) -> None:
        sim = self.context.sim
        if isinstance(message, nas5g.AuthenticationResponse5g):
            sim.spawn(self._registration_stage2(ue_context, message),
                      name=f"5g-auth:{ue_context.imsi}")
        elif isinstance(message, nas5g.SecurityModeComplete5g):
            self._on_smc_complete(ue_context)
        elif isinstance(message, nas5g.RegistrationComplete):
            self._on_registration_complete(ue_context)
        elif isinstance(message, nas5g.PduSessionEstablishmentRequest):
            sim.spawn(self._pdu_session(ue_context, message),
                      name=f"5g-pdu:{ue_context.imsi}")
        elif isinstance(message, nas5g.PduSessionReleaseRequest):
            self.sessiond.terminate_session(ue_context.imsi,
                                            reason="pdu-release")
            self._send_downlink(ue_context.ue_ref, ue_context.amf_ue_id,
                                nas5g.PduSessionReleaseComplete(
                                    imsi=ue_context.imsi,
                                    pdu_session_id=message.pdu_session_id))
        elif isinstance(message, nas5g.DeregistrationRequest):
            self._on_deregistration(ue_context, message)

    # -- registration ------------------------------------------------------------------

    def _registration_stage1(self, ue_ref: UeRef5g,
                             request: nas5g.RegistrationRequest):
        imsi = request.imsi
        vector = yield from self.mme.begin_authentication(imsi)
        if vector is None:
            self.stats["registration_rejects"] += 1
            self._send_downlink(ue_ref, 0, nas5g.RegistrationReject(
                imsi=imsi, cause="unknown subscriber"))
            return
        stale = self._by_imsi.pop(imsi, None)
        if stale is not None:
            self._by_amf_ue_id.pop(stale.amf_ue_id, None)
        ue_context = NgapUeContext(amf_ue_id=next(self._ue_ids), imsi=imsi,
                                   ue_ref=ue_ref, xres=vector.xres)
        self._by_amf_ue_id[ue_context.amf_ue_id] = ue_context
        self._by_imsi[imsi] = ue_context
        self._send_downlink(ue_ref, ue_context.amf_ue_id,
                            nas5g.AuthenticationRequest5g(
                                imsi=imsi, rand=vector.rand,
                                autn=vector.autn))

    def _registration_stage2(self, ue_context: NgapUeContext,
                             message: nas5g.AuthenticationResponse5g):
        ok = yield from self.mme.verify_authentication(ue_context.xres,
                                                       message.res_star)
        if not ok:
            self.stats["registration_rejects"] += 1
            self._send_downlink(ue_context.ue_ref, ue_context.amf_ue_id,
                                nas5g.RegistrationReject(
                                    imsi=ue_context.imsi,
                                    cause="authentication failure"))
            self._drop(ue_context)
            return
        ue_context.state = Ngap5gState.WAIT_SMC
        self._send_downlink(ue_context.ue_ref, ue_context.amf_ue_id,
                            nas5g.SecurityModeCommand5g(imsi=ue_context.imsi))

    def _on_smc_complete(self, ue_context: NgapUeContext) -> None:
        ue_context.state = Ngap5gState.WAIT_REG_COMPLETE
        guti = f"{self.context.node}-5g-guti-{ue_context.amf_ue_id}"
        self._send_downlink(ue_context.ue_ref, ue_context.amf_ue_id,
                            nas5g.RegistrationAccept(imsi=ue_context.imsi,
                                                     guti_5g=guti))

    def _on_registration_complete(self, ue_context: NgapUeContext) -> None:
        ue_context.state = Ngap5gState.REGISTERED
        self.stats["registrations"] += 1
        if self.mme.directoryd is not None:
            self.mme.directoryd.update_location(
                ue_context.imsi, self.name, ue_context.ue_ref[0])

    # -- PDU session ----------------------------------------------------------------------

    def _pdu_session(self, ue_context: NgapUeContext,
                     request: nas5g.PduSessionEstablishmentRequest):
        if ue_context.state != Ngap5gState.REGISTERED:
            self._send_downlink(ue_context.ue_ref, ue_context.amf_ue_id,
                                nas5g.PduSessionEstablishmentReject(
                                    imsi=ue_context.imsi,
                                    pdu_session_id=request.pdu_session_id,
                                    cause="not registered"))
            return
        try:
            session = yield from self.mme.establish_session(ue_context.imsi)
        except SessionError as exc:
            self.stats["pdu_rejects"] += 1
            self._send_downlink(ue_context.ue_ref, ue_context.amf_ue_id,
                                nas5g.PduSessionEstablishmentReject(
                                    imsi=ue_context.imsi,
                                    pdu_session_id=request.pdu_session_id,
                                    cause=str(exc)))
            return
        self.stats["pdu_sessions"] += 1
        accept = nas5g.PduSessionEstablishmentAccept(
            imsi=ue_context.imsi, pdu_session_id=request.pdu_session_id,
            ue_ip=session.ue_ip)
        gnb_id, ran_ue_id = ue_context.ue_ref
        setup = ngap.PduSessionResourceSetupRequest(
            ran_ue_id=ran_ue_id, amf_ue_id=ue_context.amf_ue_id,
            pdu_session_id=request.pdu_session_id,
            agw_teid=session.agw_teid, agw_address=self.context.node,
            nas=accept)
        channel = self._channel_for(gnb_id)
        imsi = ue_context.imsi
        try:
            response = yield channel.call(
                ngap.GNB_NGAP_SERVICE, "pdu_session_setup", setup,
                deadline=self.context.config.rpc_deadline)
        except RpcError:
            return
        if response.success and self.sessiond.session(imsi) is not None:
            self.sessiond.set_enb_tunnel(imsi, response.gnb_teid,
                                         response.gnb_address or gnb_id)

    # -- deregistration ----------------------------------------------------------------------

    def _on_deregistration(self, ue_context: NgapUeContext,
                           message: nas5g.DeregistrationRequest) -> None:
        self.stats["deregistrations"] += 1
        self.sessiond.terminate_session(ue_context.imsi,
                                        reason="deregistration")
        if not message.switch_off:
            self._send_downlink(ue_context.ue_ref, ue_context.amf_ue_id,
                                nas5g.DeregistrationAccept(
                                    imsi=ue_context.imsi))
        self._drop(ue_context)
        if self.mme.directoryd is not None:
            self.mme.directoryd.remove(ue_context.imsi)

    def location_of(self, ue_ref: UeRef5g) -> str:
        return ue_ref[0]

    # -- plumbing ----------------------------------------------------------------------------

    def _send_downlink(self, ue_ref: UeRef5g, amf_ue_id: int,
                       message: Any) -> None:
        gnb_id, ran_ue_id = ue_ref
        transport = ngap.DownlinkNasTransport5g(
            ran_ue_id=ran_ue_id, amf_ue_id=amf_ue_id, nas=message)
        channel = self._channel_for(gnb_id)

        def proc(sim):
            try:
                yield channel.call(ngap.GNB_NGAP_SERVICE, "downlink_nas",
                                   transport,
                                   deadline=self.context.config.rpc_deadline)
            except RpcError:
                pass

        self.context.sim.spawn(proc(self.context.sim),
                               name=f"ng-dl:{gnb_id}")

    def _channel_for(self, gnb_id: str) -> RpcChannel:
        channel = self._channels.get(gnb_id)
        if channel is None:
            channel = RpcChannel(self.context.sim, self.context.network,
                                 self.context.node, gnb_id)
            self._channels[gnb_id] = channel
        return channel

    def _drop(self, ue_context: NgapUeContext) -> None:
        self._by_amf_ue_id.pop(ue_context.amf_ue_id, None)
        existing = self._by_imsi.get(ue_context.imsi)
        if existing is ue_context:
            self._by_imsi.pop(ue_context.imsi, None)
