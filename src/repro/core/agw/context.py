"""AGW configuration and shared runtime context.

Hardware profiles are calibrated to the paper's reported operating points
(DESIGN.md §5):

- ``BARE_METAL`` (Intel J3160, 4 cores): pure attach capacity 4/s; under a
  saturating user plane, max-min scheduling leaves the control plane 2 of 4
  cores => the Fig. 6 knee at 2 attach/s ("above 2 UE/s the bare-metal AGW
  is unable to service all connection attempts").  Forwarding 432 Mbps
  costs ~1.7 cores, leaving headroom (Fig. 5's "RAN is the bottleneck").
- ``VIRTUAL`` (Xeon 6126 vCPUs): 16 attaches/s on 4 vCPUs (§4.2) and
  ~500 Mbps of user plane per core, saturating the paper's 2.5 Gbps traffic
  generator at 5 cores (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ...net.simnet import Network
from ...sim.cpu import CpuModel
from ...sim.kernel import Simulator
from ...sim.monitor import Monitor
from ...sim.rng import RngRegistry

CPU_CLASS_CONTROL = "cp"
CPU_CLASS_USER = "up"


@dataclass(frozen=True)
class AgwHardwareProfile:
    """Calibrated CPU characteristics of an AGW platform."""

    name: str
    cores: int
    attach_cpu_cost: float          # total core-seconds per attach
    nas_message_cpu_cost: float     # per non-attach NAS message
    up_cost_per_mbps: float         # core-seconds per second per Mbps forwarded
    quantum: float = 0.05

    def attach_capacity_per_sec(self, cores_available: Optional[float] = None) -> float:
        """Theoretical attach saturation rate on the given cores."""
        cores = self.cores if cores_available is None else cores_available
        return cores / self.attach_cpu_cost

    def up_capacity_mbps(self, cores_available: Optional[float] = None) -> float:
        cores = self.cores if cores_available is None else cores_available
        return cores / self.up_cost_per_mbps


BARE_METAL = AgwHardwareProfile(
    name="bare-metal-j3160",
    cores=4,
    attach_cpu_cost=1.0,
    nas_message_cpu_cost=0.002,
    up_cost_per_mbps=0.004,
)

VIRTUAL_4VCPU = AgwHardwareProfile(
    name="virtual-xeon6126-4vcpu",
    cores=4,
    attach_cpu_cost=0.25,
    nas_message_cpu_cost=0.0005,
    up_cost_per_mbps=0.002,
)

VIRTUAL_8VCPU = AgwHardwareProfile(
    name="virtual-xeon6126-8vcpu",
    cores=8,
    attach_cpu_cost=0.25,
    nas_message_cpu_cost=0.0005,
    up_cost_per_mbps=0.002,
)


def virtual_profile(vcpus: int) -> AgwHardwareProfile:
    """A virtual AGW with an arbitrary vCPU count (Figs. 7-8 sweeps)."""
    if vcpus < 1:
        raise ValueError("need at least one vCPU")
    return replace(VIRTUAL_4VCPU, name=f"virtual-xeon6126-{vcpus}vcpu",
                   cores=vcpus)


@dataclass
class AgwConfig:
    """Per-AGW deployment configuration."""

    hardware: AgwHardwareProfile = BARE_METAL
    # Static CPU partition {"cp": n, "up": m}; None = flexible scheduling.
    cpu_partition: Optional[Dict[str, float]] = None
    ip_block: str = "10.128.0.0/16"
    checkpoint_interval: float = 10.0
    checkin_interval: float = 60.0
    quota_request_bytes: Optional[int] = None  # None = OCS default
    sgi_port: str = "internet"
    ran_port: str = "ran"
    gtpa_port: str = "gtpa"
    rpc_deadline: float = 5.0
    # MME overload protection: reject new attaches outright when this much
    # control-plane work is already queued, instead of letting doomed
    # attempts consume CPU past their guard timers (congestion collapse).
    mme_max_pending: int = 25
    # Federation (§3.6): mode + where the Federation Gateway lives.
    deployment_mode: str = "standalone"
    feg_node: Optional[str] = None
    # Multi-network (tenant) membership: which logical network's config
    # this gateway pulls from the orchestrator.
    network_id: str = "default"
    # Telemetry buffering during headless operation (§3.4): how many
    # check-in-interval snapshots to retain while the orchestrator is
    # unreachable, and how many to back-fill per check-in on reconnect.
    metrics_buffer_max: int = 240
    metrics_max_backfill: int = 20


class AgwContext:
    """Shared handles every AGW service needs."""

    def __init__(self, sim: Simulator, network: Network, node: str,
                 config: Optional[AgwConfig] = None,
                 monitor: Optional[Monitor] = None,
                 rng: Optional[RngRegistry] = None):
        self.sim = sim
        self.network = network
        self.node = node
        self.config = config or AgwConfig()
        self.monitor = monitor or Monitor()
        self.rng = rng or RngRegistry(0)
        hardware = self.config.hardware
        self.cpu = CpuModel(
            sim, cores=hardware.cores, quantum=hardware.quantum,
            partition=self.config.cpu_partition, monitor=self.monitor,
            name=node)
        network.add_node(node)

    @property
    def tracer(self):
        """The installed :class:`repro.obs.tracing.Tracer`, or a no-op."""
        tracer = self.sim.tracer
        if tracer is None:
            from ...obs.tracing import NOOP_TRACER
            return NOOP_TRACER
        return tracer
