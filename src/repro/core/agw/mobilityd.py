"""mobilityd: UE IP address management (and intra-AGW mobility anchor).

Each AGW owns an IP block (configuration state from the orchestrator) and
assigns addresses to sessions.  Assignments are sticky per IMSI while held,
which is what makes mobility between radios *behind the same AGW* seamless:
the UE keeps its IP and its data-plane rules, only the RAN-side tunnel
endpoint changes (§3.2 - inter-AGW mobility is explicitly out of scope).
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional


class IpPoolExhausted(Exception):
    """No free addresses remain in the AGW's block."""


class Mobilityd:
    """IP allocation from a configured block."""

    def __init__(self, ip_block: str = "10.128.0.0/16"):
        network = ipaddress.ip_network(ip_block)
        self.ip_block = ip_block
        # Skip network/broadcast-ish addresses; hosts() handles it.
        self._hosts = network.hosts()
        self._free: List[str] = []
        self._assigned: Dict[str, str] = {}   # imsi -> ip
        self._reverse: Dict[str, str] = {}    # ip -> imsi

    @property
    def assigned_count(self) -> int:
        return len(self._assigned)

    def allocate(self, imsi: str) -> str:
        """Assign (or re-return) an IP for ``imsi``."""
        existing = self._assigned.get(imsi)
        if existing is not None:
            return existing
        ip = None
        while self._free:
            candidate = self._free.pop()
            if candidate not in self._reverse:  # purged lazily post-restore
                ip = candidate
                break
        while ip is None:
            try:
                ip = str(next(self._hosts))
            except StopIteration:
                raise IpPoolExhausted(f"block {self.ip_block} exhausted") from None
            if ip in self._reverse:
                # A restored session already holds this address (the fresh
                # backup's sequential cursor has no memory of the crash).
                ip = None
        self._assigned[imsi] = ip
        self._reverse[ip] = imsi
        return ip

    def release(self, imsi: str) -> Optional[str]:
        ip = self._assigned.pop(imsi, None)
        if ip is not None:
            self._reverse.pop(ip, None)
            self._free.append(ip)
        return ip

    def lookup_imsi(self, ip: str) -> Optional[str]:
        return self._reverse.get(ip)

    def lookup_ip(self, imsi: str) -> Optional[str]:
        return self._assigned.get(imsi)

    def restore(self, assignments: Dict[str, str]) -> None:
        """Rebuild assignment state from a checkpoint (crash recovery).

        One bulk call replaces the whole assignment table - callers must
        NOT invoke this per entry (that is O(n^2) across a restore).  Any
        free-list entry that collides with a restored address is dropped
        lazily by :meth:`allocate`; addresses the sequential cursor has not
        reached yet are skipped there too, so post-restore allocations can
        never hand out an address a restored session still holds.
        """
        self._assigned = dict(assignments)
        self._reverse = {ip: imsi for imsi, ip in assignments.items()}
