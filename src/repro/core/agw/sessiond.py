"""sessiond: session and policy management (generic across RANs).

Per Table 1, this is the MME/PCRF (LTE), SMF/PCF (5G), and RADIUS (WiFi)
role collapsed into one technology-agnostic service.  A *session* is the
unit of runtime state the paper localizes to one AGW (§3.2-3.4): the UE's
IP, its tunnel endpoints, its policy enforcement state, its usage counters,
and its online-charging quota.

Sessions are checkpointed by ``magmad`` and restorable after a crash
(crash-recovery failure model, §3.3/3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...lte.identifiers import TeidAllocator
from ...sim.kernel import Event
from ..federation.modes import user_plane_egress
from ..policy.accounting import AccountingLog, ChargingDataRecord
from ..policy.enforcer import EnforcementState, UNLIMITED_MBPS
from ..policy.rules import ChargingMode
from .context import AgwContext
from .mobilityd import Mobilityd
from .pipelined import Pipelined
from .policydb import PolicyDb
from .subscriberdb import SubscriberDb


class SessionError(Exception):
    """Session establishment or management failure."""


class OcsClient:
    """Interface to the online charging system (local or over RPC)."""

    def request_quota(self, imsi: str, agw_id: str,
                      requested_bytes: Optional[int]) -> Event:
        raise NotImplementedError

    def report_usage(self, grant_id: int, used_bytes: int,
                     final: bool) -> Event:
        raise NotImplementedError


class LocalOcsClient(OcsClient):
    """Directly wraps an in-process OCS (tests and single-box setups)."""

    def __init__(self, sim, ocs):
        self.sim = sim
        self.ocs = ocs

    def request_quota(self, imsi, agw_id, requested_bytes):
        ev = self.sim.event("ocs.request_quota")
        grant = self.ocs.request_quota(imsi, agw_id, requested_bytes)
        if grant is None:
            ev.succeed(None)
        else:
            ev.succeed({"grant_id": grant.grant_id,
                        "granted_bytes": grant.granted_bytes})
        return ev

    def report_usage(self, grant_id, used_bytes, final):
        ev = self.sim.event("ocs.report_usage")
        try:
            self.ocs.report_usage(grant_id, used_bytes, final=final)
            ev.succeed(True)
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            ev.fail(exc)
        return ev


class RpcOcsClient(OcsClient):
    """OCS reached over the network (the production arrangement, §3.4)."""

    def __init__(self, channel, deadline: float = 5.0):
        self.channel = channel
        self.deadline = deadline

    def request_quota(self, imsi, agw_id, requested_bytes):
        return self.channel.call("ocs", "request_quota",
                                 {"imsi": imsi, "agw_id": agw_id,
                                  "requested_bytes": requested_bytes},
                                 deadline=self.deadline)

    def report_usage(self, grant_id, used_bytes, final):
        return self.channel.call("ocs", "report_usage",
                                 {"grant_id": grant_id,
                                  "used_bytes": used_bytes, "final": final},
                                 deadline=self.deadline)


class SessionState:
    CREATING = "creating"
    ACTIVE = "active"
    BLOCKED = "blocked"      # online charging: out of quota
    TERMINATED = "terminated"


@dataclass
class SessionRecord:
    session_id: str
    imsi: str
    ue_ip: str
    policy_id: str
    agw_teid: int
    enb_teid: Optional[int] = None
    enb_node: Optional[str] = None
    state: str = SessionState.CREATING
    start_time: float = 0.0
    bytes_dl: int = 0
    bytes_ul: int = 0
    installed_rate_mbps: float = UNLIMITED_MBPS
    enforcement: Optional[EnforcementState] = None
    cumulative_quota_used: int = 0
    home_routed: bool = False
    connected: bool = True   # ECM state: False = idle (session anchored)


class Sessiond:
    """Session lifecycle, usage accounting, and policy reaction."""

    def __init__(self, context: AgwContext, subscriberdb: SubscriberDb,
                 policydb: PolicyDb, mobilityd: Mobilityd,
                 pipelined: Pipelined, ocs_client: Optional[OcsClient] = None,
                 accounting: Optional[AccountingLog] = None):
        self.context = context
        self.subscriberdb = subscriberdb
        self.policydb = policydb
        self.mobilityd = mobilityd
        self.pipelined = pipelined
        self.ocs_client = ocs_client
        # Explicit None check: an empty AccountingLog is falsy (len == 0).
        self.accounting = AccountingLog() if accounting is None else accounting
        self._teids = TeidAllocator(start=0x1000)
        self._next_session_num = 1
        self._sessions: Dict[str, SessionRecord] = {}
        # Cohort-aggregated fleet sessions (workloads.fleet): a count, not
        # per-IMSI records.  Folded into session_count()/telemetry so an
        # aggregated population looks like real load everywhere above this
        # layer; deliberately excluded from checkpoints — it is synthetic
        # workload state owned by the fleet, re-injected on the next tick.
        self.fleet_sessions = 0
        # Inter-AGW hand-off: contexts staged by the S10 endpoint, consumed
        # by the next create_session for that IMSI.
        self._staged_transfers: Dict[str, Any] = {}
        self.stats = {"created": 0, "terminated": 0, "blocked": 0,
                      "quota_refills": 0, "quota_denials": 0}

    # -- lifecycle --------------------------------------------------------------------

    def create_session(self, imsi: str):
        """Generator: establish a session; raises SessionError on failure."""
        span = self.context.tracer.child("sessiond.create_session",
                                         component="sessiond",
                                         node=self.context.node)
        status = "error"
        try:
            with span.active():
                record = yield from self._create_session(imsi)
            status = "ok"
            return record
        finally:
            span.end(status)

    def _create_session(self, imsi: str):
        sim = self.context.sim
        profile = self.subscriberdb.get(imsi)
        if profile is None:
            raise SessionError(f"unknown or inactive subscriber {imsi}")
        if imsi in self._sessions:
            # Re-attach while a stale session exists: replace it.
            self.terminate_session(imsi, reason="reattach")
        policy = self.policydb.get(profile.policy_id)
        try:
            ue_ip = self.mobilityd.allocate(imsi)
        except Exception as exc:  # IpPoolExhausted -> a clean NAS reject
            raise SessionError(f"no IP available: {exc}") from exc
        agw_teid = self._teids.allocate()
        enforcement = EnforcementState(policy, session_start=sim.now)
        staged = self._staged_transfers.pop(imsi, None)
        if staged is not None:
            # Seed enforcement from the hand-off context: usage caps and
            # interval position follow the subscriber between AGWs.
            enforcement.total_bytes = staged.total_bytes
            enforcement.interval_bytes = staged.interval_bytes
            enforcement.interval_start = staged.interval_start
        record = SessionRecord(
            session_id=self._new_session_id(),
            imsi=imsi, ue_ip=ue_ip, policy_id=policy.policy_id,
            agw_teid=agw_teid, start_time=sim.now, enforcement=enforcement)
        if policy.charging == ChargingMode.ONLINE:
            if self.ocs_client is None:
                self._release(record)
                raise SessionError("online-charged policy but no OCS configured")
            grant = yield self.ocs_client.request_quota(
                imsi, self.context.node, self.context.config.quota_request_bytes)
            if grant is None:
                self._release(record)
                self.stats["quota_denials"] += 1
                raise SessionError(f"OCS denied quota for {imsi}")
            enforcement.add_quota(grant["grant_id"], grant["granted_bytes"])
        decision = enforcement.decide(sim.now)
        egress = user_plane_egress(self.context.config.deployment_mode,
                                   profile.federated)
        egress_port = (self.context.config.gtpa_port if egress == "gtpa"
                       else self.context.config.sgi_port)
        record.home_routed = egress == "gtpa"
        self.pipelined.install_session(imsi, ue_ip, agw_teid,
                                       decision.allowed_mbps,
                                       egress_port=egress_port,
                                       qci=policy.qci)
        record.installed_rate_mbps = decision.allowed_mbps
        record.state = SessionState.ACTIVE
        self._sessions[imsi] = record
        self.stats["created"] += 1
        return record

    def set_enb_tunnel(self, imsi: str, enb_teid: int, enb_node: str) -> None:
        record = self._require(imsi)
        record.enb_teid = enb_teid
        record.enb_node = enb_node
        self.pipelined.set_enb_tunnel(imsi, enb_teid, enb_node)

    def terminate_session(self, imsi: str, reason: str = "detach") -> bool:
        record = self._sessions.pop(imsi, None)
        if record is None:
            return False
        record.state = SessionState.TERMINATED
        sim = self.context.sim
        with self.context.tracer.child("sessiond.terminate_session",
                                       component="sessiond",
                                       node=self.context.node,
                                       tags={"reason": reason}):
            enforcement = record.enforcement
            if (enforcement is not None and self.ocs_client is not None
                    and enforcement.quota_grant_id is not None):
                self._spawn_usage_report(record, final=True)
            self.accounting.append(ChargingDataRecord(
                imsi=imsi, agw_id=self.context.node,
                session_id=record.session_id, start_time=record.start_time,
                end_time=sim.now, bytes_dl=record.bytes_dl,
                bytes_ul=record.bytes_ul, policy_id=record.policy_id))
            self.pipelined.remove_session(imsi)
            self.mobilityd.release(imsi)
            self._teids.release(record.agw_teid)
            self.stats["terminated"] += 1
        return True

    def _release(self, record: SessionRecord) -> None:
        self.mobilityd.release(record.imsi)
        self._teids.release(record.agw_teid)

    def _new_session_id(self) -> str:
        session_id = f"{self.context.node}-s{self._next_session_num}"
        self._next_session_num += 1
        return session_id

    def _seed_session_id(self, session_id: str) -> None:
        """Advance the id counter past a restored session's number.

        Restored ids minted by *this* node name must never be minted again;
        ids from another gateway (failover promotion) use a different
        prefix and cannot collide, so they do not advance the counter.
        """
        prefix = f"{self.context.node}-s"
        if not session_id.startswith(prefix):
            return
        try:
            number = int(session_id[len(prefix):])
        except ValueError:
            return
        if number >= self._next_session_num:
            self._next_session_num = number + 1

    # -- usage & policy reaction ---------------------------------------------------------

    def record_usage(self, imsi: str, dl_bytes: int, ul_bytes: int) -> None:
        """Account traffic and react to policy state changes."""
        record = self._sessions.get(imsi)
        if record is None:
            return
        now = self.context.sim.now
        record.bytes_dl += dl_bytes
        record.bytes_ul += ul_bytes
        enforcement = record.enforcement
        used = dl_bytes + ul_bytes
        enforcement.record_usage(used, now)
        record.cumulative_quota_used += used
        decision = enforcement.decide(now)
        if decision.blocked:
            if record.state != SessionState.BLOCKED:
                record.state = SessionState.BLOCKED
                self.stats["blocked"] += 1
                self.pipelined.set_session_rate(imsi, 1e-6)
                record.installed_rate_mbps = 0.0
            if decision.needs_quota:
                self._spawn_quota_refill(record)
            return
        if record.state == SessionState.BLOCKED:
            record.state = SessionState.ACTIVE
        if abs(decision.allowed_mbps - record.installed_rate_mbps) > 1e-9:
            self.pipelined.set_session_rate(imsi, decision.allowed_mbps)
            record.installed_rate_mbps = decision.allowed_mbps
        if decision.needs_quota:
            self._spawn_quota_refill(record)

    def _spawn_quota_refill(self, record: SessionRecord) -> None:
        if self.ocs_client is None:
            return
        imsi = record.imsi
        enforcement = record.enforcement
        if getattr(enforcement, "_refill_in_flight", False):
            return
        enforcement._refill_in_flight = True

        def refill(sim):
            try:
                # Close out the current grant (final report): its unused
                # remainder is released, the new grant takes over.
                if enforcement.quota_grant_id is not None:
                    try:
                        yield self.ocs_client.report_usage(
                            enforcement.quota_grant_id,
                            min(record.cumulative_quota_used,
                                enforcement._last_grant_size), final=True)
                    except Exception:  # noqa: BLE001 - OCS unreachable
                        pass
                grant = yield self.ocs_client.request_quota(
                    imsi, self.context.node,
                    self.context.config.quota_request_bytes)
            except Exception:  # noqa: BLE001 - OCS unreachable
                grant = None
            enforcement._refill_in_flight = False
            if grant is None:
                self.stats["quota_denials"] += 1
                return
            self.stats["quota_refills"] += 1
            record.cumulative_quota_used = 0
            enforcement.add_quota(grant["grant_id"], grant["granted_bytes"])
            current = self._sessions.get(imsi)
            if current is record and record.state == SessionState.BLOCKED:
                record.state = SessionState.ACTIVE
                decision = enforcement.decide(self.context.sim.now)
                self.pipelined.set_session_rate(imsi, decision.allowed_mbps)
                record.installed_rate_mbps = decision.allowed_mbps

        self.context.sim.spawn(refill(self.context.sim),
                               name=f"quota-refill:{imsi}")

    def _spawn_usage_report(self, record: SessionRecord, final: bool) -> None:
        enforcement = record.enforcement
        grant_id = enforcement.quota_grant_id

        def report(sim):
            try:
                yield self.ocs_client.report_usage(
                    grant_id,
                    min(record.cumulative_quota_used,
                        enforcement._last_grant_size),
                    final)
            except Exception:  # noqa: BLE001 - OCS unreachable; best effort
                pass

        self.context.sim.spawn(report(self.context.sim),
                               name=f"usage-report:{record.imsi}")

    def set_connected(self, imsi: str, connected: bool) -> None:
        """Track the UE's ECM state; the session stays anchored when idle."""
        record = self._sessions.get(imsi)
        if record is not None:
            record.connected = connected

    def stage_transfer(self, transferred: Any) -> None:
        """Stage an inter-AGW hand-off context for the next attach."""
        self._staged_transfers[transferred.imsi] = transferred

    # -- introspection -----------------------------------------------------------------------

    # -- aggregated fleet sessions (workloads.fleet) ---------------------------------

    def bulk_create_fleet(self, n: int) -> None:
        """Account ``n`` cohort-aggregated sessions created this tick."""
        if n < 0:
            raise ValueError(f"bulk_create_fleet needs n >= 0, got {n}")
        self.fleet_sessions += n
        self.stats["created"] += n

    def bulk_terminate_fleet(self, n: int) -> int:
        """End up to ``n`` aggregated sessions; returns how many existed."""
        if n < 0:
            raise ValueError(f"bulk_terminate_fleet needs n >= 0, got {n}")
        ended = min(n, self.fleet_sessions)
        self.fleet_sessions -= ended
        self.stats["terminated"] += ended
        return ended

    def session(self, imsi: str) -> Optional[SessionRecord]:
        return self._sessions.get(imsi)

    def active_sessions(self) -> List[SessionRecord]:
        return list(self._sessions.values())

    def session_count(self) -> int:
        """Active sessions: per-IMSI records plus aggregated fleet sessions."""
        return len(self._sessions) + self.fleet_sessions

    def allowed_rate(self, imsi: str) -> float:
        record = self._sessions.get(imsi)
        if record is None:
            return 0.0
        return record.installed_rate_mbps

    def _require(self, imsi: str) -> SessionRecord:
        record = self._sessions.get(imsi)
        if record is None:
            raise SessionError(f"no session for {imsi}")
        return record

    # -- checkpoint / restore (crash-recovery, §3.3) ----------------------------------------

    def checkpoint(self) -> List[Dict[str, Any]]:
        """Serializable snapshot of all session runtime state."""
        span = self.context.tracer.begin("sessiond.checkpoint",
                                         component="sessiond",
                                         node=self.context.node)
        snapshot = []
        for record in self._sessions.values():
            enforcement = record.enforcement
            snapshot.append({
                "session_id": record.session_id,
                "imsi": record.imsi,
                "ue_ip": record.ue_ip,
                "policy_id": record.policy_id,
                "agw_teid": record.agw_teid,
                "enb_teid": record.enb_teid,
                "enb_node": record.enb_node,
                "state": record.state,
                "start_time": record.start_time,
                "bytes_dl": record.bytes_dl,
                "bytes_ul": record.bytes_ul,
                "installed_rate_mbps": record.installed_rate_mbps,
                "home_routed": record.home_routed,
                "connected": record.connected,
                "cumulative_quota_used": record.cumulative_quota_used,
                "total_bytes": enforcement.total_bytes,
                "interval_bytes": enforcement.interval_bytes,
                "interval_start": enforcement.interval_start,
                "quota_remaining": enforcement.quota_remaining,
                "quota_grant_id": enforcement.quota_grant_id,
                "last_grant_size": enforcement._last_grant_size,
            })
        span.set_tag("sessions", len(snapshot)).end()
        return snapshot

    def restore(self, snapshot: List[Dict[str, Any]]) -> int:
        """Rebuild sessions (and data-plane state) from a checkpoint.

        Correctness: restored TEIDs and session ids re-seed their
        allocators, so the first post-restore ``create_session`` cannot
        collide with a restored session; the ECM ``connected`` flag rides
        through, so idle UEs stay idle.  Throughput: the whole data plane
        is programmed as one atomic :meth:`Pipelined.batch` bundle and
        mobilityd is rebuilt with a single bulk call after the loop.
        """
        restored = 0
        span = self.context.tracer.begin("sessiond.restore",
                                         component="sessiond",
                                         node=self.context.node)
        with span.active(), self.pipelined.batch():
            for entry in snapshot:
                imsi = entry["imsi"]
                policy = self.policydb.get(entry["policy_id"])
                enforcement = EnforcementState(
                    policy, session_start=entry["interval_start"])
                enforcement.total_bytes = entry["total_bytes"]
                enforcement.interval_bytes = entry["interval_bytes"]
                enforcement.quota_remaining = entry["quota_remaining"]
                enforcement.quota_grant_id = entry["quota_grant_id"]
                enforcement._last_grant_size = entry["last_grant_size"]
                record = SessionRecord(
                    session_id=entry["session_id"], imsi=imsi,
                    ue_ip=entry["ue_ip"], policy_id=entry["policy_id"],
                    agw_teid=entry["agw_teid"], enb_teid=entry["enb_teid"],
                    enb_node=entry["enb_node"], state=entry["state"],
                    start_time=entry["start_time"], bytes_dl=entry["bytes_dl"],
                    bytes_ul=entry["bytes_ul"],
                    installed_rate_mbps=entry["installed_rate_mbps"],
                    home_routed=entry.get("home_routed", False),
                    connected=entry.get("connected", True),
                    cumulative_quota_used=entry.get(
                        "cumulative_quota_used", 0),
                    enforcement=enforcement)
                self._sessions[imsi] = record
                self._teids.reserve(record.agw_teid)
                self._seed_session_id(record.session_id)
                egress_port = (self.context.config.gtpa_port
                               if record.home_routed
                               else self.context.config.sgi_port)
                self.pipelined.install_session(imsi, record.ue_ip,
                                               record.agw_teid,
                                               record.installed_rate_mbps,
                                               egress_port=egress_port)
                if record.enb_teid is not None and record.enb_node is not None:
                    self.pipelined.set_enb_tunnel(imsi, record.enb_teid,
                                                  record.enb_node)
                restored += 1
        self.mobilityd.restore({r.imsi: r.ue_ip
                                for r in self._sessions.values()})
        span.set_tag("sessions", restored).end()
        return restored
