"""enodebd: RAN device management.

The paper calls out device management as a first-class Magma responsibility
with *no 3GPP equivalent* (Table 1): rather than logging into each eNodeB,
operators manage RAN devices centrally through the orchestrator, and the
AGW's enodebd applies that configuration to locally connected equipment and
reports device health upstream (§3.1, §4.3.1's operational-cost reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RanDevice:
    device_id: str
    kind: str = "enodeb"           # enodeb | gnb | wifi-ap
    registered_at: float = 0.0
    last_seen: float = 0.0
    config_version: int = 0
    config: Dict[str, Any] = field(default_factory=dict)
    healthy: bool = True


class Enodebd:
    """Registry + configuration pusher for RAN devices behind this AGW."""

    def __init__(self, clock=None):
        self._clock = clock or (lambda: 0.0)
        self._devices: Dict[str, RanDevice] = {}
        self.desired_config: Dict[str, Any] = {}
        self.desired_version = 0
        self.stats = {"registrations": 0, "config_pushes": 0}

    def register(self, device_id: str, kind: str = "enodeb") -> RanDevice:
        now = self._clock()
        device = self._devices.get(device_id)
        if device is None:
            device = RanDevice(device_id=device_id, kind=kind,
                               registered_at=now, last_seen=now)
            self._devices[device_id] = device
            self.stats["registrations"] += 1
        device.last_seen = now
        self._push_config(device)
        return device

    def heartbeat(self, device_id: str) -> None:
        device = self._devices.get(device_id)
        if device is not None:
            device.last_seen = self._clock()

    def apply_desired_config(self, config: Dict[str, Any], version: int) -> None:
        """New RAN config from the orchestrator; push to all devices."""
        self.desired_config = dict(config)
        self.desired_version = version
        for device in self._devices.values():
            self._push_config(device)

    def apply_desired_delta(self, upserts: Dict[str, Any],
                            deletes: List[str], version: int) -> None:
        """Apply a digest-reconciled delta to the desired RAN config."""
        for key in deletes:
            self.desired_config.pop(key, None)
        self.desired_config.update(upserts)
        self.desired_version = version
        for device in self._devices.values():
            self._push_config(device)

    def _push_config(self, device: RanDevice) -> None:
        if device.config_version < self.desired_version:
            device.config = dict(self.desired_config)
            device.config_version = self.desired_version
            self.stats["config_pushes"] += 1

    def devices(self) -> List[RanDevice]:
        return list(self._devices.values())

    def device(self, device_id: str) -> Optional[RanDevice]:
        return self._devices.get(device_id)

    def count(self) -> int:
        return len(self._devices)

    def stale_devices(self, max_age: float) -> List[str]:
        """Devices not heard from within ``max_age`` seconds (telemetry)."""
        now = self._clock()
        return [d.device_id for d in self._devices.values()
                if now - d.last_seen > max_age]
