"""directoryd: subscriber location records within an AGW.

Maps an IMSI to where it was last seen (which frontend / RAN element).
Used for paging-like lookups and for mobility *within* the AGW: when a UE
moves between radios served by the same AGW, only this record and the
RAN-side tunnel endpoint change - the session (IP, policy state) stays put.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class LocationRecord:
    imsi: str
    frontend: str     # e.g. "s1ap", "ngap", "radius"
    location: str     # e.g. eNodeB id or AP id
    updated_at: float = 0.0


class Directoryd:
    """In-AGW location directory."""

    def __init__(self, clock=None):
        self._clock = clock or (lambda: 0.0)
        self._records: Dict[str, LocationRecord] = {}
        self.stats = {"updates": 0, "moves": 0}

    def update_location(self, imsi: str, frontend: str, location: str) -> None:
        existing = self._records.get(imsi)
        if existing is not None and (existing.location != location or
                                     existing.frontend != frontend):
            self.stats["moves"] += 1
        self._records[imsi] = LocationRecord(
            imsi=imsi, frontend=frontend, location=location,
            updated_at=self._clock())
        self.stats["updates"] += 1

    def lookup(self, imsi: str) -> Optional[LocationRecord]:
        return self._records.get(imsi)

    def remove(self, imsi: str) -> bool:
        return self._records.pop(imsi, None) is not None

    def count(self) -> int:
        return len(self._records)
