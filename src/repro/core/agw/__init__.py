"""The Magma Access Gateway and its services (paper Figure 4)."""

from .context import (
    AgwConfig,
    AgwContext,
    AgwHardwareProfile,
    BARE_METAL,
    CPU_CLASS_CONTROL,
    CPU_CLASS_USER,
    VIRTUAL_4VCPU,
    VIRTUAL_8VCPU,
    virtual_profile,
)
from .directoryd import Directoryd, LocationRecord
from .enodebd import Enodebd, RanDevice
from .failover import FailoverError, fail_back, promote_backup
from .gateway import AccessGateway
from .health import HealthCheck, HealthService
from .inter_agw import InterAgwMobility, S10_SERVICE, TransferredContext
from .magmad import CheckpointStore, Magmad
from .mme import AccessManagement, MmeUeContext, RanFrontend, UeContextState
from .mobilityd import IpPoolExhausted, Mobilityd
from .pipelined import Pipelined, SessionFlows
from .policydb import PolicyDb
from .s1ap_frontend import S1apFrontend
from .sessiond import (
    LocalOcsClient,
    OcsClient,
    RpcOcsClient,
    SessionError,
    SessionRecord,
    SessionState,
    Sessiond,
)
from .subscriberdb import SubscriberDb, SubscriberProfile

__all__ = [
    "AccessGateway",
    "AccessManagement",
    "AgwConfig",
    "AgwContext",
    "AgwHardwareProfile",
    "BARE_METAL",
    "CheckpointStore",
    "CPU_CLASS_CONTROL",
    "CPU_CLASS_USER",
    "Directoryd",
    "Enodebd",
    "FailoverError",
    "fail_back",
    "promote_backup",
    "HealthCheck",
    "HealthService",
    "InterAgwMobility",
    "IpPoolExhausted",
    "S10_SERVICE",
    "TransferredContext",
    "LocalOcsClient",
    "LocationRecord",
    "Magmad",
    "MmeUeContext",
    "Mobilityd",
    "OcsClient",
    "Pipelined",
    "PolicyDb",
    "RanDevice",
    "RanFrontend",
    "RpcOcsClient",
    "S1apFrontend",
    "SessionError",
    "SessionFlows",
    "SessionRecord",
    "SessionState",
    "Sessiond",
    "SubscriberDb",
    "SubscriberProfile",
    "UeContextState",
    "VIRTUAL_4VCPU",
    "VIRTUAL_8VCPU",
    "virtual_profile",
]
