"""pipelined: the data-plane configuration service.

Translates session-level intents ("subscriber X with IP x.x.x.x has an
active bearer toward eNodeB E with rate limit R") into OpenFlow-like
messages for the software switch (§3.5).  If the forwarding engine were
replaced, only this module would change.

Pipeline layout (mirrors Magma's OVS table split in spirit):

====== =====================================================================
table  role
====== =====================================================================
0      classification: GTP-U decap + direction tagging (uplink/downlink)
1      policy enforcement: per-session meters, DSCP marking
2      egress: tunnel encap (downlink) and port output
====== =====================================================================
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ...dataplane import actions as act
from ...dataplane.matcher import FlowMatch
from ...dataplane.openflow import FlowBundle, FlowMod, MeterMod, StatsRequest
from ...dataplane.packet import Packet, ip_packet
from ...dataplane.switch import SoftwareSwitch
from ..policy.enforcer import UNLIMITED_MBPS
from .context import AgwContext

TABLE_CLASSIFY = 0
TABLE_POLICY = 1
TABLE_EGRESS = 2

# 3GPP QCI -> IP DSCP marking (standard operator mapping, abbreviated).
# QCI 1 = conversational voice (EF), 5 = IMS signalling (AF41 here),
# 9 = default best effort.
QCI_TO_DSCP = {1: 46, 2: 36, 3: 28, 4: 28, 5: 34, 6: 18, 7: 10, 8: 10, 9: 0}


@dataclass
class SessionFlows:
    imsi: str
    ue_ip: str
    agw_teid: int
    enb_teid: Optional[int]
    enb_node: Optional[str]
    meter_id: int
    rate_mbps: float
    egress_port: str = "internet"


class Pipelined:
    """Owns and programs the AGW's software switch."""

    def __init__(self, context: AgwContext):
        self.context = context
        config = context.config
        self.switch = SoftwareSwitch(f"{context.node}-dp", num_tables=3,
                                     clock=lambda: context.sim.now)
        self.ran_port = config.ran_port
        self.sgi_port = config.sgi_port
        self.gtpa_port = config.gtpa_port
        self._meter_ids = itertools.count(1)
        self._sessions: Dict[str, SessionFlows] = {}
        self._ran_sink = []
        self._sgi_sink = []
        self._gtpa_sink = []
        self.switch.add_port(self.ran_port, self._ran_sink.append)
        self.switch.add_port(self.sgi_port, self._sgi_sink.append)
        self.switch.add_port(self.gtpa_port, self._gtpa_sink.append)
        # When a batch transaction is open, mods queue here instead of
        # hitting the switch; commit applies them as one FlowBundle.
        self._pending: Optional[List[Any]] = None
        # Aggregated fleet user-plane load (set_fleet_load), in Mbps.
        self._fleet_offered_mbps = 0.0
        self.stats = {"sessions_installed": 0, "sessions_removed": 0,
                      "rate_changes": 0, "batches": 0}

    # -- batched programming (the session hot path) -------------------------------

    @contextmanager
    def batch(self):
        """Coalesce session programming into one atomic OpenFlow bundle.

        Everything installed/removed/re-rated inside the ``with`` block is
        committed as a single :class:`FlowBundle` on exit - one control
        message and one table sort instead of ~6 switch operations per
        session.  Used by ``Sessiond.restore()`` and bulk-attach paths.
        On an exception inside the block, nothing reaches the switch.
        """
        if self._pending is not None:
            yield self          # nested: join the enclosing transaction
            return
        self._pending = []
        try:
            yield self
        except BaseException:  # roll back the bundle, re-raise unchanged
            self._pending = None
            raise
        mods, self._pending = self._pending, None
        if mods:
            self.switch.apply(FlowBundle(mods=tuple(mods)))
            self.stats["batches"] += 1

    def in_batch(self) -> bool:
        return self._pending is not None

    def _apply(self, mod: Any) -> None:
        if self._pending is not None:
            self._pending.append(mod)
        else:
            self.switch.apply(mod)

    # -- port plumbing (tests/examples can replace the sinks) ---------------------

    def set_port_delivery(self, port: str, deliver) -> None:
        self.switch.remove_port(port)
        self.switch.add_port(port, deliver)

    # -- session programming --------------------------------------------------------

    def install_session(self, imsi: str, ue_ip: str, agw_teid: int,
                        rate_mbps: Optional[float],
                        egress_port: Optional[str] = None,
                        qci: int = 9) -> SessionFlows:
        """Install classification + policy rules for a new session.

        ``egress_port`` selects local breakout (the SGi port, default) or
        the GTP aggregator port for home-routed sessions (§3.6).  The
        eNodeB-side tunnel endpoint is attached later (the S1AP initial
        context setup response arrives after the session exists) via
        :meth:`set_enb_tunnel`.
        """
        if imsi in self._sessions:
            self.remove_session(imsi)
        # No tags dict here: this is the session hot path, the span must
        # stay allocation-light.
        span = self.context.tracer.child("pipelined.install_session",
                                         component="pipelined",
                                         node=self.context.node)
        egress = egress_port or self.sgi_port
        if egress not in (self.sgi_port, self.gtpa_port):
            raise ValueError(f"unknown egress port {egress!r}")
        rate = rate_mbps if rate_mbps is not None else UNLIMITED_MBPS
        meter_id = next(self._meter_ids)
        self._apply(MeterMod(command=MeterMod.ADD, meter_id=meter_id,
                             rate_mbps=max(rate, 1e-6)))
        flows = SessionFlows(imsi=imsi, ue_ip=ue_ip, agw_teid=agw_teid,
                             enb_teid=None, enb_node=None,
                             meter_id=meter_id, rate_mbps=rate,
                             egress_port=egress)
        # Table 0: uplink - GTP-U traffic from the RAN for this bearer.
        self._apply(FlowMod(
            command=FlowMod.ADD, table_id=TABLE_CLASSIFY, priority=10,
            match=FlowMatch(in_port=self.ran_port, tun_id=agw_teid),
            actions=[act.PopGtpu(), act.SetRegister("direction", "uplink"),
                     act.SetRegister("imsi", imsi), act.GotoTable(TABLE_POLICY)],
            cookie=imsi))
        # Table 0: downlink - traffic addressed to the UE from its egress.
        self._apply(FlowMod(
            command=FlowMod.ADD, table_id=TABLE_CLASSIFY, priority=10,
            match=FlowMatch(in_port=egress, ip_dst=ue_ip),
            actions=[act.SetRegister("direction", "downlink"),
                     act.SetRegister("imsi", imsi), act.GotoTable(TABLE_POLICY)],
            cookie=imsi))
        # Table 1: policy - QoS marking by QCI, metered, then egress.
        policy_actions = [act.Meter(meter_id)]
        dscp = QCI_TO_DSCP.get(qci, 0)
        if dscp:
            policy_actions.append(act.SetDscp(dscp))
        policy_actions.append(act.GotoTable(TABLE_EGRESS))
        self._apply(FlowMod(
            command=FlowMod.ADD, table_id=TABLE_POLICY, priority=10,
            match=FlowMatch(registers={"imsi": imsi}),
            actions=policy_actions, cookie=imsi))
        # Table 2: uplink out the session's egress (SGi or GTP-A).
        self._apply(FlowMod(
            command=FlowMod.ADD, table_id=TABLE_EGRESS, priority=10,
            match=FlowMatch(registers={"imsi": imsi, "direction": "uplink"}),
            actions=[act.Output(egress)], cookie=imsi))
        # Table 2 downlink rule is installed once the eNB tunnel is known.
        self._sessions[imsi] = flows
        self.stats["sessions_installed"] += 1
        span.end()
        return flows

    def set_enb_tunnel(self, imsi: str, enb_teid: int, enb_node: str) -> None:
        """Set (or re-point, after a handover) the downlink tunnel."""
        flows = self._require(imsi)
        had_tunnel = flows.enb_teid is not None
        flows.enb_teid = enb_teid
        flows.enb_node = enb_node
        downlink = FlowMatch(registers={"imsi": imsi,
                                        "direction": "downlink"})
        if had_tunnel:
            # Drop the previous downlink egress rule (intra-AGW handover).
            # Fresh installs skip this: no rule exists, and the O(table)
            # delete scan per session would make bulk restore quadratic.
            self._apply(FlowMod(command=FlowMod.DELETE,
                                table_id=TABLE_EGRESS, priority=10,
                                match=downlink))
        self._apply(FlowMod(
            command=FlowMod.ADD, table_id=TABLE_EGRESS, priority=10,
            match=downlink,
            actions=[act.PushGtpu(teid=enb_teid, tunnel_src=self.context.node,
                                  tunnel_dst=enb_node),
                     act.Output(self.ran_port)],
            cookie=imsi))

    def remove_session(self, imsi: str) -> bool:
        flows = self._sessions.pop(imsi, None)
        if flows is None:
            return False
        span = self.context.tracer.child("pipelined.remove_session",
                                         component="pipelined",
                                         node=self.context.node)
        for table_id in (TABLE_CLASSIFY, TABLE_POLICY, TABLE_EGRESS):
            self._apply(FlowMod(command=FlowMod.DELETE_BY_COOKIE,
                                table_id=table_id, cookie=imsi))
        self._apply(MeterMod(command=MeterMod.DELETE,
                             meter_id=flows.meter_id))
        self.stats["sessions_removed"] += 1
        span.end()
        return True

    def set_session_rate(self, imsi: str, rate_mbps: float) -> None:
        """Reprogram the session's meter (throttling / un-throttling)."""
        flows = self._require(imsi)
        flows.rate_mbps = rate_mbps
        self._apply(MeterMod(command=MeterMod.MODIFY,
                             meter_id=flows.meter_id,
                             rate_mbps=max(rate_mbps, 1e-6)))
        self.stats["rate_changes"] += 1

    def has_session(self, imsi: str) -> bool:
        return imsi in self._sessions

    def session(self, imsi: str) -> Optional[SessionFlows]:
        return self._sessions.get(imsi)

    def session_count(self) -> int:
        return len(self._sessions)

    def installed_imsis(self) -> List[str]:
        return list(self._sessions)

    # -- fluid evaluation ---------------------------------------------------------------

    def admitted_downlink_rate(self, imsi: str, offered_mbps: float) -> float:
        """Fluid-mode pipeline walk for downlink traffic toward a UE."""
        flows = self._sessions.get(imsi)
        if flows is None or flows.enb_teid is None:
            return 0.0
        representative = ip_packet("8.8.8.8", flows.ue_ip)
        admitted, _cookies = self.switch.evaluate_fluid(
            representative, flows.egress_port, offered_mbps)
        return admitted

    def record_fluid_usage(self, imsi: str, mbps: float, duration: float) -> None:
        self.switch.record_fluid_usage(imsi, mbps, duration)

    def session_byte_count(self, imsi: str) -> int:
        reply = self.switch.apply(StatsRequest(cookie=imsi))
        return max((entry.bytes for entry in reply.entries), default=0)

    # -- aggregated fleet user plane (workloads.fleet) ------------------------------

    def set_fleet_load(self, offered_mbps: float) -> None:
        """Offered downlink of the cohort-aggregated population, as one
        fluid demand instead of per-UE meters.  The CPU model polices it
        (max-min against control-plane work, DESIGN.md §5), and the gauge
        rides the normal datapath-metrics export so check-in telemetry
        carries the fleet's user-plane load."""
        if offered_mbps < 0:
            raise ValueError(f"fleet load must be >= 0, got {offered_mbps}")
        self._fleet_offered_mbps = offered_mbps
        cost = self.context.config.hardware.up_cost_per_mbps
        self.context.cpu.set_fluid_demand("up", "fleet", offered_mbps * cost)

    def fleet_served_mbps(self) -> float:
        """Fleet offered load scaled by the served fraction last quantum."""
        return (self._fleet_offered_mbps *
                self.context.cpu.fluid_service_fraction("up"))

    # -- lookup-stack observability -----------------------------------------------

    def datapath_stats(self) -> Dict[str, Any]:
        """Classifier decomposition + microflow cache counters (see switch)."""
        return self.switch.datapath_stats()

    def record_datapath_metrics(self) -> None:
        """Export lookup-stack gauges into the AGW monitor (metricsd feed).

        Called from health/metrics collection loops; last value wins, so
        it is safe to call at any cadence.
        """
        monitor = self.context.monitor
        dp = self.switch.datapath_stats()
        mf = dp["microflow"]
        monitor.set_gauge("dp_microflow_size", mf["size"])
        monitor.set_gauge("dp_microflow_hits", mf["hits"])
        monitor.set_gauge("dp_microflow_misses", mf["misses"])
        monitor.set_gauge("dp_microflow_evictions", mf["evictions"])
        monitor.set_gauge("dp_microflow_invalidations", mf["invalidations"])
        monitor.set_gauge("dp_rules",
                          sum(t["rules"] for t in dp["tables"]))
        monitor.set_gauge("dp_subtables",
                          sum(t["subtables"] for t in dp["tables"]))
        monitor.set_gauge("dp_residue_rules",
                          sum(t["residue_rules"] for t in dp["tables"]))
        if self._fleet_offered_mbps:
            monitor.set_gauge("dp_fleet_offered_mbps",
                              self._fleet_offered_mbps)

    def _require(self, imsi: str) -> SessionFlows:
        flows = self._sessions.get(imsi)
        if flows is None:
            raise KeyError(f"no installed session for {imsi}")
        return flows
