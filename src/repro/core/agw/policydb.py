"""Policy database (AGW-local cache of orchestrator-authored policies)."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..policy.rules import PolicyRule, unlimited


class PolicyDb:
    """Policies by id, synchronized from the orchestrator (desired state)."""

    def __init__(self):
        self._policies: Dict[str, PolicyRule] = {
            "default": unlimited("default"),
        }
        self.version = 0

    def __len__(self) -> int:
        return len(self._policies)

    def get(self, policy_id: str) -> PolicyRule:
        """Resolve a policy id, falling back to the default policy."""
        policy = self._policies.get(policy_id)
        if policy is None:
            return self._policies["default"]
        return policy

    def has(self, policy_id: str) -> bool:
        return policy_id in self._policies

    def upsert(self, policy: PolicyRule) -> None:
        self._policies[policy.policy_id] = policy

    def apply_desired_state(self, policies: Dict[str, PolicyRule],
                            version: int) -> None:
        """Replace all policies; a default is always preserved."""
        merged = dict(policies)
        merged.setdefault("default", unlimited("default"))
        self._policies = merged
        self.version = version

    def apply_desired_delta(self, upserts: Dict[str, PolicyRule],
                            deletes: List[str], version: int) -> None:
        """Apply a digest-reconciled delta; the default always survives."""
        for policy_id in deletes:
            self._policies.pop(policy_id, None)
        self._policies.update(upserts)
        self._policies.setdefault("default", unlimited("default"))
        self.version = version
