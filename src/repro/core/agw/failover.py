"""AGW failover to a backup instance (§3.3).

"The runtime state stored in an AGW is checkpointed regularly and may be
copied to a backup instance of the AGW running as a cloud service.  When
an AGW fails, the backup cloud instance is brought into service, and can
manage connections for the affected set of UEs until the primary AGW is
restarted."

:func:`promote_backup` restores the failed AGW's checkpointed sessions
(and their data-plane state) into the standby; the site's eNodeBs are then
re-targeted at the backup (see ``Enodeb.retarget_core``).
"""

from __future__ import annotations

from typing import Optional

from .gateway import AccessGateway
from .magmad import CheckpointStore


class FailoverError(Exception):
    """Promotion failed (no checkpoint, backup not standing by, ...)."""


def promote_backup(backup: AccessGateway, failed_node: str,
                   store: Optional[CheckpointStore] = None) -> int:
    """Bring the standby into service for a failed AGW's UEs.

    Restores the failed gateway's last checkpoint into ``backup`` and
    returns the number of sessions restored.  The backup must be idle (no
    sessions of its own) - it is a dedicated warm standby, not a peer.
    """
    if backup.crashed:
        raise FailoverError("backup gateway is itself down")
    if backup.sessiond.session_count() > 0:
        raise FailoverError("backup already serves sessions")
    store = store or backup.magmad.checkpoint_store
    if store is None:
        raise FailoverError("no checkpoint store configured")
    snapshot = store.load(failed_node)
    if snapshot is None:
        raise FailoverError(f"no checkpoint found for {failed_node!r}")
    restored = backup.sessiond.restore(snapshot["sessions"])
    backup.magmad.config_version = snapshot.get("config_version",
                                                backup.magmad.config_version)
    return restored


def fail_back(primary: AccessGateway, backup: AccessGateway) -> int:
    """Return service to a recovered primary.

    The backup checkpoints its current (possibly updated) session state
    under the *primary's* node name, the primary restores from it, and the
    backup steps down.  Returns the sessions handed back.
    """
    if primary.crashed:
        raise FailoverError("primary has not recovered")
    snapshot = {
        "time": backup.context.sim.now,
        "sessions": backup.sessiond.checkpoint(),
        "config_version": backup.magmad.config_version,
    }
    store = primary.magmad.checkpoint_store
    if store is not None:
        store.save(primary.node, snapshot)
    restored = primary.sessiond.restore(snapshot["sessions"])
    for imsi in list(backup.pipelined.installed_imsis()):
        backup.pipelined.remove_session(imsi)
    backup.sessiond._sessions.clear()
    backup.mobilityd.restore({})
    return restored
