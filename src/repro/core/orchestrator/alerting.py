"""Alerting: rules evaluated over orchestrator state and metrics.

Central monitoring is one of the two generic functions Magma adds beyond
the 3GPP feature set (Table 1: "telemetry and logging - no equivalent
defined").  Operators consume these alerts through the northbound API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class Alert:
    rule_name: str
    subject: str
    message: str
    raised_at: float


@dataclass
class AlertRule:
    """A named predicate producing alert subjects when it fires."""

    name: str
    evaluate: Callable[[], List[str]]   # returns offending subjects
    message: str = ""


def metric_threshold_rule(metricsd, *, name: str, metric: str,
                          threshold: float, above: bool = True,
                          label: str = "gateway_id",
                          message: str = "") -> AlertRule:
    """An :class:`AlertRule` over ingested metricsd series.

    Fires per label value (one subject per gateway, by default) whenever
    the latest sample of ``metric`` crosses ``threshold`` — strictly above
    when ``above`` is True, strictly below otherwise.  Label sets without
    ``label`` fall back to a stringified label dict as the subject.
    """

    def evaluate() -> List[str]:
        subjects = []
        for labels in metricsd.label_sets(metric):
            sample = metricsd.latest(metric, labels or None)
            if sample is None:
                continue
            if (sample.value > threshold) if above else \
                    (sample.value < threshold):
                subjects.append(labels.get(label, str(labels)))
        return sorted(subjects)

    comparison = ">" if above else "<"
    return AlertRule(name=name, evaluate=evaluate,
                     message=message or
                     f"{metric} {comparison} {threshold:g}")


class AlertManager:
    """Evaluates rules; deduplicates active alerts until they resolve."""

    def __init__(self, clock=None):
        self._clock = clock or (lambda: 0.0)
        self._rules: Dict[str, AlertRule] = {}
        self._active: Dict[tuple, Alert] = {}
        self._history: List[Alert] = []

    def add_rule(self, rule: AlertRule) -> None:
        if rule.name in self._rules:
            raise ValueError(f"duplicate alert rule {rule.name!r}")
        self._rules[rule.name] = rule

    def evaluate(self) -> List[Alert]:
        """Run all rules; returns newly raised alerts."""
        now = self._clock()
        new_alerts: List[Alert] = []
        still_firing = set()
        for rule in self._rules.values():
            for subject in rule.evaluate():
                key = (rule.name, subject)
                still_firing.add(key)
                if key not in self._active:
                    alert = Alert(rule_name=rule.name, subject=subject,
                                  message=rule.message or rule.name,
                                  raised_at=now)
                    self._active[key] = alert
                    self._history.append(alert)
                    new_alerts.append(alert)
        # Resolve alerts whose condition cleared.
        for key in list(self._active):
            if key not in still_firing:
                del self._active[key]
        return new_alerts

    def active_alerts(self) -> List[Alert]:
        return list(self._active.values())

    def history(self) -> List[Alert]:
        return list(self._history)
