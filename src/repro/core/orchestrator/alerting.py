"""Alerting: rules evaluated over orchestrator state and metrics.

Central monitoring is one of the two generic functions Magma adds beyond
the 3GPP feature set (Table 1: "telemetry and logging - no equivalent
defined").  Operators consume these alerts through the northbound API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set


@dataclass(frozen=True)
class Alert:
    rule_name: str
    subject: str
    message: str
    raised_at: float


@dataclass
class AlertRule:
    """A named predicate producing alert subjects when it fires."""

    name: str
    evaluate: Callable[[], List[str]]   # returns offending subjects
    message: str = ""


def metric_threshold_rule(metricsd, *, name: str, metric: str,
                          threshold: float, above: bool = True,
                          label: str = "gateway_id",
                          for_duration: float = 0.0,
                          message: str = "") -> AlertRule:
    """An :class:`AlertRule` over ingested metricsd series.

    Fires per label value (one subject per gateway, by default) whenever
    the latest sample of ``metric`` crosses ``threshold`` — strictly above
    when ``above`` is True, strictly below otherwise.  Label sets without
    ``label`` fall back to a stringified label dict as the subject.

    ``for_duration`` adds hysteresis: a subject only *starts* firing once
    the crossing has been sustained (latest sample plus the unbroken run
    of crossing samples behind it spans at least ``for_duration`` of
    capture time), so one noisy sample cannot flap an alert.  Once firing,
    the subject stays firing until a sample lands back on the safe side —
    a single recovered sample resolves, matching Prometheus ``for:``.

    A series that is *known* but currently has no samples in retention is
    skipped entirely: the subject keeps its previous firing state rather
    than silently resolving on missing data.
    """
    firing: Set[str] = set()

    def crosses(value: float) -> bool:
        return (value > threshold) if above else (value < threshold)

    def evaluate() -> List[str]:
        seen = set()
        for labels in metricsd.label_sets(metric):
            subject = labels.get(label, str(labels))
            seen.add(subject)
            sample = metricsd.latest(metric, labels or None)
            if sample is None:
                # Known series with nothing in retention: no data is not
                # evidence of recovery — hold the previous state.
                continue
            if not crosses(sample.value):
                firing.discard(subject)
                continue
            if subject in firing or for_duration <= 0.0:
                firing.add(subject)
                continue
            # Sustained-crossing check: walk back through samples sorted
            # by capture time while they keep crossing.
            samples = sorted(metricsd.query(metric, labels or None),
                             key=lambda s: s.time)
            held_since = sample.time
            for prev in reversed(samples):
                if prev.time > sample.time:
                    continue
                if not crosses(prev.value):
                    break
                held_since = prev.time
            if sample.time - held_since >= for_duration:
                firing.add(subject)
        # Subjects whose label set vanished wholesale (e.g. a re-keyed
        # fleet) do resolve: there is no longer a series to watch.
        firing.intersection_update(seen)
        return sorted(firing)

    comparison = ">" if above else "<"
    return AlertRule(name=name, evaluate=evaluate,
                     message=message or
                     f"{metric} {comparison} {threshold:g}")


class AlertManager:
    """Evaluates rules; deduplicates active alerts until they resolve.

    ``recorder`` is an optional zero-arg callable returning the installed
    flight recorder (or None): every newly raised alert then logs a record
    and freezes a ring snapshot, so the operator sees the events leading
    up to the firing, not just the firing itself.
    """

    def __init__(self, clock=None, recorder=None):
        self._clock = clock or (lambda: 0.0)
        self._recorder = recorder
        self._rules: Dict[str, AlertRule] = {}
        self._active: Dict[tuple, Alert] = {}
        self._history: List[Alert] = []
        self.stats = {"evaluations": 0, "rule_errors": 0}

    def add_rule(self, rule: AlertRule) -> None:
        if rule.name in self._rules:
            raise ValueError(f"duplicate alert rule {rule.name!r}")
        self._rules[rule.name] = rule

    def evaluate(self) -> List[Alert]:
        """Run all rules; returns newly raised alerts.

        A rule that raises is skipped for this round — its error is
        counted in ``stats['rule_errors']`` and its currently active
        alerts are kept firing (an evaluation failure must never silently
        resolve an alert, and must not abort the other rules).
        """
        now = self._clock()
        self.stats["evaluations"] += 1
        new_alerts: List[Alert] = []
        still_firing = set()
        for rule in self._rules.values():
            try:
                subjects = rule.evaluate()
            except Exception:  # one bad rule must not mute the others
                self.stats["rule_errors"] += 1
                for key in self._active:
                    if key[0] == rule.name:
                        still_firing.add(key)
                continue
            for subject in subjects:
                key = (rule.name, subject)
                still_firing.add(key)
                if key not in self._active:
                    alert = Alert(rule_name=rule.name, subject=subject,
                                  message=rule.message or rule.name,
                                  raised_at=now)
                    self._active[key] = alert
                    self._history.append(alert)
                    new_alerts.append(alert)
                    self._snapshot(alert)
        # Resolve alerts whose condition cleared.
        for key in list(self._active):
            if key not in still_firing:
                del self._active[key]
        return new_alerts

    def _snapshot(self, alert: Alert) -> None:
        if self._recorder is None:
            return
        rec = self._recorder()
        if rec is None:
            return
        rec.node("alertmanager").warn(
            "alerting", "alert.raised", rule=alert.rule_name,
            subject=alert.subject, message=alert.message)
        rec.snapshot(f"alert:{alert.rule_name}:{alert.subject}")

    def active_alerts(self) -> List[Alert]:
        return list(self._active.values())

    def history(self) -> List[Alert]:
        return list(self._history)
