"""Gateway bootstrapping: challenge/response registration.

New AGWs prove possession of their hardware key before the orchestrator
will talk to them; the orchestrator then issues a session certificate with
an expiry (Magma's bootstrapper + certifier, simplified to HMAC).  This is
how 5,370 ad-hoc AGWs in the FreedomFi deployment (§4.3.2) can self-enroll
without an operator touching each box.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from dataclasses import dataclass
from typing import Dict, Optional

CERT_LIFETIME = 30 * 24 * 3600.0


class BootstrapError(Exception):
    """Registration failure (unknown gateway, bad signature, expired cert)."""


@dataclass(frozen=True)
class Challenge:
    gateway_id: str
    nonce: bytes


@dataclass(frozen=True)
class Certificate:
    gateway_id: str
    serial: int
    issued_at: float
    expires_at: float
    token: bytes


def sign_challenge(hw_key: bytes, nonce: bytes) -> bytes:
    """Gateway-side: prove possession of the hardware key."""
    return hmac.new(hw_key, b"bootstrap:" + nonce, hashlib.sha256).digest()


class Bootstrapper:
    """Orchestrator-side enrollment service."""

    def __init__(self, clock=None, cert_lifetime: float = CERT_LIFETIME):
        self._clock = clock or (lambda: 0.0)
        self.cert_lifetime = cert_lifetime
        self._hw_keys: Dict[str, bytes] = {}
        self._challenges: Dict[str, Challenge] = {}
        self._certs: Dict[str, Certificate] = {}
        self._serials = itertools.count(1)
        self._nonce_counter = itertools.count(1)
        self.stats = {"challenges": 0, "certs_issued": 0, "rejected": 0}

    def preregister(self, gateway_id: str, hw_key: bytes) -> None:
        """Operator records the gateway's hardware key (out of band)."""
        self._hw_keys[gateway_id] = hw_key

    def request_challenge(self, gateway_id: str) -> Challenge:
        if gateway_id not in self._hw_keys:
            self.stats["rejected"] += 1
            raise BootstrapError(f"unknown gateway {gateway_id!r}")
        nonce = hashlib.sha256(
            f"{gateway_id}:{next(self._nonce_counter)}".encode()).digest()
        challenge = Challenge(gateway_id=gateway_id, nonce=nonce)
        self._challenges[gateway_id] = challenge
        self.stats["challenges"] += 1
        return challenge

    def complete(self, gateway_id: str, signature: bytes) -> Certificate:
        challenge = self._challenges.pop(gateway_id, None)
        if challenge is None:
            self.stats["rejected"] += 1
            raise BootstrapError("no outstanding challenge")
        expected = sign_challenge(self._hw_keys[gateway_id], challenge.nonce)
        if not hmac.compare_digest(signature, expected):
            self.stats["rejected"] += 1
            raise BootstrapError("bad signature")
        now = self._clock()
        cert = Certificate(
            gateway_id=gateway_id, serial=next(self._serials),
            issued_at=now, expires_at=now + self.cert_lifetime,
            token=hmac.new(self._hw_keys[gateway_id],
                           f"cert:{gateway_id}:{now}".encode(),
                           hashlib.sha256).digest())
        self._certs[gateway_id] = cert
        self.stats["certs_issued"] += 1
        return cert

    def validate(self, gateway_id: str, token: bytes) -> bool:
        cert = self._certs.get(gateway_id)
        if cert is None or cert.token != token:
            return False
        return self._clock() <= cert.expires_at

    def is_enrolled(self, gateway_id: str) -> bool:
        return gateway_id in self._certs
