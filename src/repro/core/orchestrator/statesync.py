"""State synchronization service: the orchestrator's side of check-ins.

Implements the desired-state push of §3.4: each gateway check-in carries
the gateway's applied config version; when stale, the response carries
the current configuration, and losing any number of pushes never
desynchronizes a gateway - the next successful check-in converges it.

Two transfer paths, selected per check-in:

- **Full bundle** (the original path, and the ``digest_sync=False``
  escape hatch): the response carries the *entire* network bundle.
- **Digest sync** (default): check-ins carry per-namespace digest roots;
  matching namespaces are elided and divergent ones are narrowed by a
  digest-tree walk (``statesync/reconcile``) that ships only divergent
  leaf-bucket deltas with tombstones - real Magma's subscriberdb digest
  streaming.  A gateway that never sends roots (older client, direct
  caller) transparently gets the full-bundle path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ...net.rpc import payload_bytes
from ...obs.tracing import tracer_of
from ...sim.kernel import Simulator
from ...sim.monitor import Monitor
from ..sync import DigestIndex, ReconcileServer
from .config_store import ConfigStore
from .metricsd import Metricsd

NS_SUBSCRIBERS = "subscribers"
NS_POLICIES = "policies"
NS_RAN = "ran"
NS_GATEWAYS = "gateways"
DEFAULT_NETWORK = "default"

#: Retained samples per wire-bytes series (scalar aggregates stay exact).
WIRE_SERIES_SAMPLES = 4096


def scoped(namespace: str, network_id: str) -> str:
    """Multi-tenant scoping: each logical *network* gets its own
    subscriber/policy/RAN namespaces (the §6 network-virtualization
    direction).  The default network keeps the bare namespace so
    single-network deployments stay simple."""
    if network_id == DEFAULT_NETWORK:
        return namespace
    return f"{namespace}@{network_id}"


@dataclass
class GatewayState:
    gateway_id: str
    first_seen: float
    last_checkin: float
    config_version: int = 0
    checkins: int = 0
    status: Dict[str, Any] = field(default_factory=dict)
    network_id: str = DEFAULT_NETWORK
    # Highest metrics-backlog seq ingested from this gateway; the ack that
    # makes headless back-fill duplicate-free.
    last_metrics_seq: int = 0


class StateSync:
    """Tracks gateway liveness and serves desired-state config sync."""

    def __init__(self, sim: Simulator, store: ConfigStore,
                 metricsd: Optional[Metricsd] = None,
                 digest_sync: bool = True,
                 digests: Optional[DigestIndex] = None,
                 monitor: Optional[Monitor] = None,
                 convergence: Optional["ConvergenceTracker"] = None):
        self.sim = sim
        self.store = store
        self.metricsd = metricsd
        self.monitor = monitor
        # Shared publish->all-applied lag tracker (one per orchestrator,
        # shared across shards); fed on every check-in.
        self.convergence = convergence
        # digest_sync=False is the escape hatch mirroring
        # Simulator(timer_wheel=False): byte-identical event order to the
        # pre-digest protocol, for A/B runs and bisection.
        self.digest_sync = digest_sync
        self.digests: Optional[DigestIndex] = None
        self.reconciler: Optional[ReconcileServer] = None
        if digest_sync:
            self.digests = digests if digests is not None \
                else DigestIndex(store)
            self.reconciler = ReconcileServer(self.digests, store, scoped)
        self._gateways: Dict[str, GatewayState] = {}
        # Check-in recency order (oldest first): each check-in moves the
        # gateway to the end, so offline_gateways() scans only the stale
        # prefix instead of every registered gateway.
        self._by_recency: "OrderedDict[str, GatewayState]" = OrderedDict()
        # network -> applied config version -> gateway ids: stale_gateways()
        # reads the few stale buckets instead of walking the fleet (in
        # steady state every gateway sits in one converged bucket).
        self._by_applied: Dict[str, Dict[int, Set[str]]] = {}
        # network -> (store version, per-namespace versions): recomputing
        # the namespace-version tuple is 3 dict probes + allocation per
        # check-in; at 50k-gateway storms it shows up, and it only changes
        # when the store version moves.
        self._ns_versions_memo: Dict[str, Tuple[int, tuple]] = {}
        # network -> (per-namespace versions, bundle): the bundle is reused
        # until one of the *network's own* namespaces changes, so a
        # thousand-gateway check-in storm (or churn in another tenant's
        # namespaces) never rebuilds an identical bundle.
        self._bundle_cache: Dict[str, tuple] = {}
        # network -> (per-namespace versions, payload bytes): sizing the
        # bundle is O(bundle), so it is cached exactly like the bundle.
        self._bundle_bytes: Dict[str, Tuple[tuple, int]] = {}
        self.stats = {"checkins": 0, "config_pushes": 0,
                      "bundle_rebuilds": 0, "bundle_cache_hits": 0,
                      "digest_syncs": 0, "digest_elisions": 0,
                      "reconcile_requests": 0, "reconcile_upserts": 0,
                      "reconcile_tombstones": 0,
                      "rx_bytes": 0, "tx_bytes": 0}

    # -- the checkin handler (registered as statesync/checkin) ---------------------

    def handle_checkin(self, request: Dict[str, Any]) -> Dict[str, Any]:
        gateway_id = request["gateway_id"]
        now = self.sim.now
        state = self._gateways.get(gateway_id)
        if state is None:
            state = GatewayState(gateway_id=gateway_id, first_seen=now,
                                 last_checkin=now)
            self._gateways[gateway_id] = state
        else:
            self._applied_bucket(state).discard(gateway_id)
        state.last_checkin = now
        state.checkins += 1
        state.config_version = request.get("config_version", 0)
        state.status = request.get("status", {})
        state.network_id = request.get("network_id", DEFAULT_NETWORK)
        self._by_recency[gateway_id] = state
        self._by_recency.move_to_end(gateway_id)
        self._applied_bucket(state).add(gateway_id)
        self.stats["checkins"] += 1
        if self.convergence is not None:
            self.convergence.note_applied(state.network_id, gateway_id,
                                          state.config_version)
        span = tracer_of(self.sim).child("statesync.checkin",
                                         component="statesync",
                                         tags={"gateway_id": gateway_id})
        response: Dict[str, Any] = {"config_version": self.store.version}
        backlog = request.get("metrics_backlog")
        if backlog is not None:
            # Seq-acked back-fill: samples buffered during a headless gap
            # are ingested at their *capture* time; anything at or below the
            # last acked seq is a redelivery and is skipped.  The ack moves
            # even with no metricsd attached so the gateway's buffer drains.
            for entry in backlog:
                seq = entry["seq"]
                if seq <= state.last_metrics_seq:
                    continue
                if self.metricsd is not None:
                    self.metricsd.ingest_bundle(
                        entry["metrics"], entry["time"],
                        labels={"gateway_id": gateway_id})
                    # Latency distributions ride next to the scalar bundle:
                    # {series: [[time, value, trace_id|None], ...]}.  Each
                    # row lands at its capture time, carrying its exemplar
                    # trace id through to metricsd.
                    for name, rows in (entry.get("latency") or {}).items():
                        for row in rows:
                            self.metricsd.ingest(
                                name, row[1], row[0],
                                labels={"gateway_id": gateway_id},
                                trace_id=row[2] if len(row) > 2 else None)
                state.last_metrics_seq = seq
            response["metrics_ack"] = state.last_metrics_seq
        else:
            # Legacy single-bundle path (direct callers/tests).
            metrics = request.get("metrics")
            if metrics and self.metricsd is not None:
                self.metricsd.ingest_bundle(metrics, now,
                                            labels={"gateway_id": gateway_id})
        # Push only when *this gateway's network* changed since the version
        # it applied - version bumps from other tenants' namespaces leave
        # its desired state identical, so no bundle (full-state semantics
        # per push are preserved; only no-op pushes are elided).
        digest_roots = request.get("digest_roots")
        if state.config_version >= self.network_config_version(
                state.network_id):
            response["config"] = None
        elif (self.digest_sync and digest_roots is not None
              and state.config_version > 0):
            # Digest path: elide matching namespaces entirely; open a tree
            # walk for divergent ones.  A first-contact gateway (version 0)
            # still gets the full bundle - walking a fully-divergent tree
            # would ship every leaf anyway, at more round trips.
            response["config"] = None
            sync = self.reconciler.sync_info(state.network_id, digest_roots)
            if sync:
                response["sync"] = sync
                self.stats["digest_syncs"] += 1
            else:
                # Same content under a newer version number (a rewrite of
                # identical values): fast-forward the gateway's version.
                response["digest_in_sync"] = True
                self.stats["digest_elisions"] += 1
        else:
            response["config"] = self.config_bundle(state.network_id)
            self.stats["config_pushes"] += 1
        self._record_wire("checkin", request, response, state.network_id)
        span.end()
        return response

    # -- the reconcile handler (registered as statesync/reconcile) -----------------

    def handle_reconcile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One round of the digest-tree walk (see ``repro.core.sync``)."""
        if self.reconciler is None:
            raise ValueError("digest sync is disabled on this StateSync")
        response = self.reconciler.handle(request)
        response["config_version"] = self.store.version
        self.stats["reconcile_requests"] += 1
        for label_deltas in response["deltas"].values():
            for delta in label_deltas.values():
                self.stats["reconcile_upserts"] += len(delta["set"])
                self.stats["reconcile_tombstones"] += len(delta["delete"])
        self._record_wire("reconcile", request, response, None)
        return response

    # -- wire-size observability ----------------------------------------------------

    def _record_wire(self, kind: str, request: Dict[str, Any],
                     response: Dict[str, Any],
                     network_id: Optional[str]) -> None:
        rx = payload_bytes(request)
        # The full bundle dominates the response and is shared across a
        # storm of check-ins; size it once per (network, versions) and sum
        # the shallow remainder per response.
        tx = payload_bytes({k: v for k, v in response.items()
                            if k != "config"})
        if response.get("config") is not None:
            tx += self._bundle_payload_bytes(network_id)
        else:
            tx += payload_bytes(None)
        self.stats["rx_bytes"] += rx
        self.stats["tx_bytes"] += tx
        if self.monitor is not None:
            now = self.sim.now
            self.monitor.bounded_series(
                f"sync.{kind}.rx_bytes", WIRE_SERIES_SAMPLES).record(now, rx)
            self.monitor.bounded_series(
                f"sync.{kind}.tx_bytes", WIRE_SERIES_SAMPLES).record(now, tx)

    def _bundle_payload_bytes(self, network_id: str) -> int:
        versions = self._network_ns_versions(network_id)
        cached = self._bundle_bytes.get(network_id)
        if cached is not None and cached[0] == versions:
            return cached[1]
        # Read the bundle straight out of the cache (the caller just built
        # it) so sizing doesn't perturb the rebuild/cache-hit stats.
        bundled = self._bundle_cache.get(network_id)
        bundle = bundled[1] if bundled is not None \
            and bundled[0] == versions else self.config_bundle(network_id)
        size = payload_bytes(bundle)
        self._bundle_bytes[network_id] = (versions, size)
        return size

    # -- bundle construction ----------------------------------------------------------

    def _network_ns_versions(self, network_id: str) -> tuple:
        """Store versions of the namespaces this network's bundle reads
        (memoized per store version - see class docstring)."""
        store_version = self.store.version
        memo = self._ns_versions_memo.get(network_id)
        if memo is not None and memo[0] == store_version:
            return memo[1]
        versions = tuple(self.store.namespace_version(scoped(ns, network_id))
                         for ns in (NS_SUBSCRIBERS, NS_POLICIES, NS_RAN))
        self._ns_versions_memo[network_id] = (store_version, versions)
        return versions

    def network_config_version(self, network_id: str = DEFAULT_NETWORK) -> int:
        """Latest store version that changed this network's desired state."""
        return max(self._network_ns_versions(network_id))

    def config_bundle(self, network_id: str = DEFAULT_NETWORK
                      ) -> Dict[str, Any]:
        """The network's full desired state (versioned delta cache).

        Cached against the network's per-namespace versions rather than the
        global store version: writes to other networks (or namespaces this
        bundle does not serve) bump the global version but hit the cache.
        """
        versions = self._network_ns_versions(network_id)
        cached = self._bundle_cache.get(network_id)
        if cached is not None and cached[0] == versions:
            self.stats["bundle_cache_hits"] += 1
            return cached[1]
        bundle = {
            "subscribers": self.store.namespace(
                scoped(NS_SUBSCRIBERS, network_id)),
            "policies": self.store.namespace(
                scoped(NS_POLICIES, network_id)),
            "ran": self.store.namespace(scoped(NS_RAN, network_id)),
        }
        self._bundle_cache[network_id] = (versions, bundle)
        self.stats["bundle_rebuilds"] += 1
        return bundle

    def config_delta(self, network_id: str = DEFAULT_NETWORK,
                     since_version: int = 0) -> Dict[str, Any]:
        """Only the namespaces that changed after ``since_version``.

        Namespace-granular deltas for callers that track their applied
        version; an up-to-date caller gets ``{}``.  Convergence still
        rides on full bundles (the paper's desired-state push) - this is
        the cheap path for callers that poll more often than they change.
        """
        bundle = self.config_bundle(network_id)
        names = (("subscribers", NS_SUBSCRIBERS), ("policies", NS_POLICIES),
                 ("ran", NS_RAN))
        return {key: bundle[key] for key, ns in names
                if self.store.namespace_version(
                    scoped(ns, network_id)) > since_version}

    # -- gateway registry ----------------------------------------------------------------

    def gateways(self) -> List[GatewayState]:
        return list(self._gateways.values())

    def gateway(self, gateway_id: str) -> Optional[GatewayState]:
        return self._gateways.get(gateway_id)

    def gateway_count(self) -> int:
        return len(self._gateways)

    def offline_gateways(self, max_age: float) -> List[str]:
        """Gateways whose last check-in is older than ``max_age``.

        ``_by_recency`` is ordered by last check-in (each check-in moves
        the gateway to the end), so this scans exactly the offline prefix
        plus one sentinel entry.
        """
        now = self.sim.now
        out = []
        for gateway_id, state in self._by_recency.items():
            if now - state.last_checkin <= max_age:
                break
            out.append(gateway_id)
        return sorted(out)

    def stale_gateways(self) -> List[str]:
        """Gateways whose applied config lags *their own network's* desired
        state.  Comparing against the global ``store.version`` would report
        every other tenant's gateways stale forever after any one tenant's
        write — the same per-network scoping ``handle_checkin`` uses to
        elide no-op pushes.  Reads the per-network applied-version buckets:
        a converged fleet is one bucket probe, not a fleet walk."""
        out: List[str] = []
        for network_id, buckets in self._by_applied.items():
            net_version = self.network_config_version(network_id)
            for version, gateway_ids in buckets.items():
                if version < net_version:
                    out.extend(gateway_ids)
        return sorted(out)

    def _applied_bucket(self, state: GatewayState) -> Set[str]:
        buckets = self._by_applied.setdefault(state.network_id, {})
        bucket = buckets.get(state.config_version)
        if bucket is None:
            bucket = set()
            buckets[state.config_version] = bucket
        return bucket

    # -- checkpoint / restore ------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the gateway registry (shard fail-over support).

        Only the registry needs saving: bundles, digests, and indexes are
        all derived state, rebuilt on demand from the config store and the
        restored registry.
        """
        return {"gateways": [{
            "gateway_id": g.gateway_id,
            "first_seen": g.first_seen,
            "last_checkin": g.last_checkin,
            "config_version": g.config_version,
            "checkins": g.checkins,
            "status": dict(g.status),
            "network_id": g.network_id,
            "last_metrics_seq": g.last_metrics_seq,
        } for g in self._by_recency.values()]}

    def restore(self, snapshot: Dict[str, Any]) -> int:
        """Rebuild the registry (and its indexes) from a checkpoint."""
        self._gateways = {}
        self._by_recency = OrderedDict()
        self._by_applied = {}
        for entry in snapshot["gateways"]:
            state = GatewayState(
                gateway_id=entry["gateway_id"],
                first_seen=entry["first_seen"],
                last_checkin=entry["last_checkin"],
                config_version=entry["config_version"],
                checkins=entry["checkins"],
                status=dict(entry["status"]),
                network_id=entry["network_id"],
                last_metrics_seq=entry["last_metrics_seq"])
            self._gateways[state.gateway_id] = state
            self._by_recency[state.gateway_id] = state
            self._applied_bucket(state).add(state.gateway_id)
        return len(self._gateways)


class ConvergenceTracker:
    """Publish→all-applied convergence lag as a first-class series.

    The desired-state model's core health question is not "did the push
    arrive" (pushes are allowed to be lost) but "how long until every
    gateway's applied version caught up with a publish".  The orchestrator
    calls :meth:`note_publish` on every northbound write; every check-in
    reports the gateway's applied version through :meth:`note_applied`.
    When the fleet-wide applied *floor* crosses a pending publish, the
    publish is converged and its lag lands in the ``sync.convergence.lag_s``
    series (monitor and/or metricsd, labelled by network).

    A gateway counts toward the floor from its first check-in onward, so a
    fleet member that goes dark holds its network's publishes pending —
    which is exactly the visibility the health engine wants: the pending
    age *is* the convergence lag the operator is living with.
    """

    SERIES = "sync.convergence.lag_s"

    def __init__(self, sim: Simulator, monitor: Optional[Monitor] = None,
                 metricsd: Optional[Metricsd] = None):
        self.sim = sim
        self.monitor = monitor
        self.metricsd = metricsd
        # network -> publish version -> publish time, oldest publish first.
        self._pending: Dict[str, "OrderedDict[int, float]"] = {}
        # network -> gateway id -> last applied version seen at check-in.
        self._applied: Dict[str, Dict[str, int]] = {}
        self.last_lag: Dict[str, float] = {}
        self.stats = {"publishes": 0, "converged": 0}

    def note_publish(self, network_id: str, version: int) -> None:
        pending = self._pending.setdefault(network_id, OrderedDict())
        if version in pending:
            return
        pending[version] = self.sim.now
        self.stats["publishes"] += 1

    def note_applied(self, network_id: str, gateway_id: str,
                     version: int) -> None:
        applied = self._applied.setdefault(network_id, {})
        if applied.get(gateway_id) == version:
            return  # steady-state check-in: nothing moved
        applied[gateway_id] = version
        pending = self._pending.get(network_id)
        if not pending:
            return
        floor = min(applied.values())
        now = self.sim.now
        while pending:
            oldest_version, published = next(iter(pending.items()))
            if oldest_version > floor:
                break
            pending.popitem(last=False)
            lag = now - published
            self.last_lag[network_id] = lag
            self.stats["converged"] += 1
            if self.monitor is not None:
                self.monitor.series(self.SERIES).record(now, lag)
            if self.metricsd is not None:
                self.metricsd.ingest(self.SERIES, lag, now,
                                     labels={"network_id": network_id})

    # -- health-engine queries -------------------------------------------------

    def pending_count(self, network_id: str = DEFAULT_NETWORK) -> int:
        return len(self._pending.get(network_id, ()))

    def pending_networks(self) -> List[str]:
        """Networks with at least one unconverged publish."""
        return [network_id for network_id, pending in self._pending.items()
                if pending]

    def oldest_pending_age(self, network_id: str = DEFAULT_NETWORK) -> float:
        """Seconds the oldest unconverged publish has been waiting (0 when
        fully converged): the live convergence lag."""
        pending = self._pending.get(network_id)
        if not pending:
            return 0.0
        return self.sim.now - next(iter(pending.values()))

    def oldest_unapplied_publish(self, network_id: str,
                                 applied_version: int) -> Optional[float]:
        """Publish time of the oldest pending version a gateway at
        ``applied_version`` has not applied yet (None if caught up)."""
        pending = self._pending.get(network_id)
        if pending:
            for version, published in pending.items():
                if version > applied_version:
                    return published
        return None
