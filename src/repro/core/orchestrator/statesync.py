"""State synchronization service: the orchestrator's side of check-ins.

Implements the desired-state push of §3.4: each gateway check-in carries
the gateway's applied config version; when stale, the response carries the
*entire* current configuration bundle, not a delta.  Losing any number of
pushes therefore never desynchronizes a gateway - the next successful
check-in converges it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...obs.tracing import tracer_of
from ...sim.kernel import Simulator
from .config_store import ConfigStore
from .metricsd import Metricsd

NS_SUBSCRIBERS = "subscribers"
NS_POLICIES = "policies"
NS_RAN = "ran"
NS_GATEWAYS = "gateways"
DEFAULT_NETWORK = "default"


def scoped(namespace: str, network_id: str) -> str:
    """Multi-tenant scoping: each logical *network* gets its own
    subscriber/policy/RAN namespaces (the §6 network-virtualization
    direction).  The default network keeps the bare namespace so
    single-network deployments stay simple."""
    if network_id == DEFAULT_NETWORK:
        return namespace
    return f"{namespace}@{network_id}"


@dataclass
class GatewayState:
    gateway_id: str
    first_seen: float
    last_checkin: float
    config_version: int = 0
    checkins: int = 0
    status: Dict[str, Any] = field(default_factory=dict)
    network_id: str = DEFAULT_NETWORK
    # Highest metrics-backlog seq ingested from this gateway; the ack that
    # makes headless back-fill duplicate-free.
    last_metrics_seq: int = 0


class StateSync:
    """Tracks gateway liveness and serves desired-state config bundles."""

    def __init__(self, sim: Simulator, store: ConfigStore,
                 metricsd: Optional[Metricsd] = None):
        self.sim = sim
        self.store = store
        self.metricsd = metricsd
        self._gateways: Dict[str, GatewayState] = {}
        # network -> (per-namespace versions, bundle): the bundle is reused
        # until one of the *network's own* namespaces changes, so a
        # thousand-gateway check-in storm (or churn in another tenant's
        # namespaces) never rebuilds an identical bundle.
        self._bundle_cache: Dict[str, tuple] = {}
        self.stats = {"checkins": 0, "config_pushes": 0,
                      "bundle_rebuilds": 0, "bundle_cache_hits": 0}

    # -- the checkin handler (registered as statesync/checkin) ---------------------

    def handle_checkin(self, request: Dict[str, Any]) -> Dict[str, Any]:
        gateway_id = request["gateway_id"]
        now = self.sim.now
        state = self._gateways.get(gateway_id)
        if state is None:
            state = GatewayState(gateway_id=gateway_id, first_seen=now,
                                 last_checkin=now)
            self._gateways[gateway_id] = state
        state.last_checkin = now
        state.checkins += 1
        state.config_version = request.get("config_version", 0)
        state.status = request.get("status", {})
        state.network_id = request.get("network_id", DEFAULT_NETWORK)
        self.stats["checkins"] += 1
        span = tracer_of(self.sim).child("statesync.checkin",
                                         component="statesync",
                                         tags={"gateway_id": gateway_id})
        response: Dict[str, Any] = {"config_version": self.store.version}
        backlog = request.get("metrics_backlog")
        if backlog is not None:
            # Seq-acked back-fill: samples buffered during a headless gap
            # are ingested at their *capture* time; anything at or below the
            # last acked seq is a redelivery and is skipped.  The ack moves
            # even with no metricsd attached so the gateway's buffer drains.
            for entry in backlog:
                seq = entry["seq"]
                if seq <= state.last_metrics_seq:
                    continue
                if self.metricsd is not None:
                    self.metricsd.ingest_bundle(
                        entry["metrics"], entry["time"],
                        labels={"gateway_id": gateway_id})
                state.last_metrics_seq = seq
            response["metrics_ack"] = state.last_metrics_seq
        else:
            # Legacy single-bundle path (direct callers/tests).
            metrics = request.get("metrics")
            if metrics and self.metricsd is not None:
                self.metricsd.ingest_bundle(metrics, now,
                                            labels={"gateway_id": gateway_id})
        # Push only when *this gateway's network* changed since the version
        # it applied - version bumps from other tenants' namespaces leave
        # its desired state identical, so no bundle (full-state semantics
        # per push are preserved; only no-op pushes are elided).
        if state.config_version < self.network_config_version(state.network_id):
            response["config"] = self.config_bundle(state.network_id)
            self.stats["config_pushes"] += 1
        else:
            response["config"] = None
        span.end()
        return response

    # -- bundle construction ----------------------------------------------------------

    def _network_ns_versions(self, network_id: str) -> tuple:
        """Store versions of the namespaces this network's bundle reads."""
        return tuple(self.store.namespace_version(scoped(ns, network_id))
                     for ns in (NS_SUBSCRIBERS, NS_POLICIES, NS_RAN))

    def network_config_version(self, network_id: str = DEFAULT_NETWORK) -> int:
        """Latest store version that changed this network's desired state."""
        return max(self._network_ns_versions(network_id))

    def config_bundle(self, network_id: str = DEFAULT_NETWORK
                      ) -> Dict[str, Any]:
        """The network's full desired state (versioned delta cache).

        Cached against the network's per-namespace versions rather than the
        global store version: writes to other networks (or namespaces this
        bundle does not serve) bump the global version but hit the cache.
        """
        versions = self._network_ns_versions(network_id)
        cached = self._bundle_cache.get(network_id)
        if cached is not None and cached[0] == versions:
            self.stats["bundle_cache_hits"] += 1
            return cached[1]
        bundle = {
            "subscribers": self.store.namespace(
                scoped(NS_SUBSCRIBERS, network_id)),
            "policies": self.store.namespace(
                scoped(NS_POLICIES, network_id)),
            "ran": self.store.namespace(scoped(NS_RAN, network_id)),
        }
        self._bundle_cache[network_id] = (versions, bundle)
        self.stats["bundle_rebuilds"] += 1
        return bundle

    def config_delta(self, network_id: str = DEFAULT_NETWORK,
                     since_version: int = 0) -> Dict[str, Any]:
        """Only the namespaces that changed after ``since_version``.

        Namespace-granular deltas for callers that track their applied
        version; an up-to-date caller gets ``{}``.  Convergence still
        rides on full bundles (the paper's desired-state push) - this is
        the cheap path for callers that poll more often than they change.
        """
        bundle = self.config_bundle(network_id)
        names = (("subscribers", NS_SUBSCRIBERS), ("policies", NS_POLICIES),
                 ("ran", NS_RAN))
        return {key: bundle[key] for key, ns in names
                if self.store.namespace_version(
                    scoped(ns, network_id)) > since_version}

    # -- gateway registry ----------------------------------------------------------------

    def gateways(self) -> List[GatewayState]:
        return list(self._gateways.values())

    def gateway(self, gateway_id: str) -> Optional[GatewayState]:
        return self._gateways.get(gateway_id)

    def gateway_count(self) -> int:
        return len(self._gateways)

    def offline_gateways(self, max_age: float) -> List[str]:
        now = self.sim.now
        return sorted(g.gateway_id for g in self._gateways.values()
                      if now - g.last_checkin > max_age)

    def stale_gateways(self) -> List[str]:
        """Gateways whose applied config lags *their own network's* desired
        state.  Comparing against the global ``store.version`` would report
        every other tenant's gateways stale forever after any one tenant's
        write — the same per-network scoping ``handle_checkin`` uses to
        elide no-op pushes."""
        return sorted(g.gateway_id for g in self._gateways.values()
                      if g.config_version <
                      self.network_config_version(g.network_id))
