"""State synchronization service: the orchestrator's side of check-ins.

Implements the desired-state push of §3.4: each gateway check-in carries
the gateway's applied config version; when stale, the response carries the
*entire* current configuration bundle, not a delta.  Losing any number of
pushes therefore never desynchronizes a gateway - the next successful
check-in converges it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...sim.kernel import Simulator
from .config_store import ConfigStore
from .metricsd import Metricsd

NS_SUBSCRIBERS = "subscribers"
NS_POLICIES = "policies"
NS_RAN = "ran"
NS_GATEWAYS = "gateways"
DEFAULT_NETWORK = "default"


def scoped(namespace: str, network_id: str) -> str:
    """Multi-tenant scoping: each logical *network* gets its own
    subscriber/policy/RAN namespaces (the §6 network-virtualization
    direction).  The default network keeps the bare namespace so
    single-network deployments stay simple."""
    if network_id == DEFAULT_NETWORK:
        return namespace
    return f"{namespace}@{network_id}"


@dataclass
class GatewayState:
    gateway_id: str
    first_seen: float
    last_checkin: float
    config_version: int = 0
    checkins: int = 0
    status: Dict[str, Any] = field(default_factory=dict)
    network_id: str = DEFAULT_NETWORK


class StateSync:
    """Tracks gateway liveness and serves desired-state config bundles."""

    def __init__(self, sim: Simulator, store: ConfigStore,
                 metricsd: Optional[Metricsd] = None):
        self.sim = sim
        self.store = store
        self.metricsd = metricsd
        self._gateways: Dict[str, GatewayState] = {}
        self._bundle_cache: Dict[str, tuple] = {}  # network -> (ver, bundle)
        self.stats = {"checkins": 0, "config_pushes": 0}

    # -- the checkin handler (registered as statesync/checkin) ---------------------

    def handle_checkin(self, request: Dict[str, Any]) -> Dict[str, Any]:
        gateway_id = request["gateway_id"]
        now = self.sim.now
        state = self._gateways.get(gateway_id)
        if state is None:
            state = GatewayState(gateway_id=gateway_id, first_seen=now,
                                 last_checkin=now)
            self._gateways[gateway_id] = state
        state.last_checkin = now
        state.checkins += 1
        state.config_version = request.get("config_version", 0)
        state.status = request.get("status", {})
        state.network_id = request.get("network_id", DEFAULT_NETWORK)
        self.stats["checkins"] += 1
        metrics = request.get("metrics")
        if metrics and self.metricsd is not None:
            self.metricsd.ingest_bundle(metrics, now,
                                        labels={"gateway": gateway_id})
        response: Dict[str, Any] = {"config_version": self.store.version}
        if state.config_version < self.store.version:
            response["config"] = self.config_bundle(state.network_id)
            self.stats["config_pushes"] += 1
        else:
            response["config"] = None
        return response

    # -- bundle construction ----------------------------------------------------------

    def config_bundle(self, network_id: str = DEFAULT_NETWORK
                      ) -> Dict[str, Any]:
        """The network's full desired state (cached per store version)."""
        cached = self._bundle_cache.get(network_id)
        if cached is None or cached[0] != self.store.version:
            bundle = {
                "subscribers": self.store.namespace(
                    scoped(NS_SUBSCRIBERS, network_id)),
                "policies": self.store.namespace(
                    scoped(NS_POLICIES, network_id)),
                "ran": self.store.namespace(scoped(NS_RAN, network_id)),
            }
            self._bundle_cache[network_id] = (self.store.version, bundle)
            return bundle
        return cached[1]

    # -- gateway registry ----------------------------------------------------------------

    def gateways(self) -> List[GatewayState]:
        return list(self._gateways.values())

    def gateway(self, gateway_id: str) -> Optional[GatewayState]:
        return self._gateways.get(gateway_id)

    def gateway_count(self) -> int:
        return len(self._gateways)

    def offline_gateways(self, max_age: float) -> List[str]:
        now = self.sim.now
        return sorted(g.gateway_id for g in self._gateways.values()
                      if now - g.last_checkin > max_age)

    def stale_gateways(self) -> List[str]:
        """Gateways whose applied config lags the store version."""
        return sorted(g.gateway_id for g in self._gateways.values()
                      if g.config_version < self.store.version)
