"""metricsd: the orchestrator's telemetry store (Prometheus stand-in).

Metrics state is "captured on a best-effort basis" (§3.4): gateways push
samples with their check-ins; nothing blocks on metrics delivery, and a
bounded retention window drops old samples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

Labels = Tuple[Tuple[str, str], ...]


def _freeze(labels: Optional[Dict[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


@dataclass(frozen=True)
class Sample:
    time: float
    value: float
    trace_id: Optional[int] = None


class Metricsd:
    """Time-series metric samples keyed by (name, labels)."""

    def __init__(self, retention: float = 7 * 24 * 3600.0,
                 max_samples_per_series: int = 100_000):
        self.retention = retention
        self.max_samples = max_samples_per_series
        self._series: Dict[Tuple[str, Labels], Deque[Sample]] = {}
        # Newest-by-capture-time sample per series.  Deques hold samples in
        # *arrival* order, and metric back-fill delivers old samples late —
        # "latest" must mean newest capture time, not last arrival, or a
        # recovering gateway's back-fill would flip alerts onto stale data.
        self._latest: Dict[Tuple[str, Labels], Sample] = {}
        # High-water ingest time: back-filled samples (headless gaps) carry
        # capture times older than "now", so retention is judged against the
        # newest time ever seen, not against each sample's own time.
        self._now = 0.0
        self.stats = {"ingested": 0, "dropped_old": 0}

    def ingest(self, name: str, value: float, time: float,
               labels: Optional[Dict[str, str]] = None,
               trace_id: Optional[int] = None) -> None:
        if time > self._now:
            self._now = time
        elif self._now - time > self.retention:
            # Too old to matter by the time it arrived (late back-fill).
            self.stats["dropped_old"] += 1
            return
        key = (name, _freeze(labels))
        series = self._series.get(key)
        if series is None:
            series = deque()
            self._series[key] = series
        sample = Sample(time=time, value=value, trace_id=trace_id)
        series.append(sample)
        cur = self._latest.get(key)
        if cur is None or time >= cur.time:
            self._latest[key] = sample
        self.stats["ingested"] += 1
        self._evict(key, series, self._now)

    def ingest_bundle(self, metrics: Dict[str, float], time: float,
                      labels: Optional[Dict[str, str]] = None) -> None:
        for name, value in metrics.items():
            self.ingest(name, value, time, labels)

    def _evict(self, key: Tuple[str, Labels], series: Deque[Sample],
               now: float) -> None:
        latest = self._latest.get(key)
        evicted_latest = False
        while series and (now - series[0].time > self.retention
                          or len(series) > self.max_samples):
            if series.popleft() is latest:
                evicted_latest = True
            self.stats["dropped_old"] += 1
        if not series:
            # Retention drained the series; drop the stale latest cache but
            # keep the (now empty) deque registered so label_sets/latest
            # still report the series as *known* — alert rules treat "known
            # but sampleless" as skip, not as resolved.
            self._latest.pop(key, None)
            return
        if evicted_latest:
            best = series[0]
            for s in series:
                if s.time >= best.time:
                    best = s
            self._latest[key] = best

    # -- queries ---------------------------------------------------------------

    def query(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> List[Sample]:
        return list(self._series.get((name, _freeze(labels)), ()))

    def latest(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> Optional[Sample]:
        """Newest sample by capture time (None for empty/unknown series).

        Robust to out-of-order arrival: a late back-filled sample older
        than what is already stored never becomes "latest".
        """
        return self._latest.get((name, _freeze(labels)))

    def series_names(self) -> List[str]:
        return sorted({name for (name, _labels) in self._series})

    def label_sets(self, name: str) -> List[Dict[str, str]]:
        return [dict(labels) for (n, labels) in self._series if n == name]

    def sum_latest(self, name: str) -> float:
        """Sum of the latest sample across all label sets of ``name``."""
        total = 0.0
        for key, latest in self._latest.items():
            if key[0] == name:
                total += latest.value
        return total
