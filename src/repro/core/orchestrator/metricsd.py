"""metricsd: the orchestrator's telemetry store (Prometheus stand-in).

Metrics state is "captured on a best-effort basis" (§3.4): gateways push
samples with their check-ins; nothing blocks on metrics delivery, and a
bounded retention window drops old samples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

Labels = Tuple[Tuple[str, str], ...]


def _freeze(labels: Optional[Dict[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


@dataclass(frozen=True)
class Sample:
    time: float
    value: float


class Metricsd:
    """Time-series metric samples keyed by (name, labels)."""

    def __init__(self, retention: float = 7 * 24 * 3600.0,
                 max_samples_per_series: int = 100_000):
        self.retention = retention
        self.max_samples = max_samples_per_series
        self._series: Dict[Tuple[str, Labels], Deque[Sample]] = {}
        # High-water ingest time: back-filled samples (headless gaps) carry
        # capture times older than "now", so retention is judged against the
        # newest time ever seen, not against each sample's own time.
        self._now = 0.0
        self.stats = {"ingested": 0, "dropped_old": 0}

    def ingest(self, name: str, value: float, time: float,
               labels: Optional[Dict[str, str]] = None) -> None:
        if time > self._now:
            self._now = time
        elif self._now - time > self.retention:
            # Too old to matter by the time it arrived (late back-fill).
            self.stats["dropped_old"] += 1
            return
        key = (name, _freeze(labels))
        series = self._series.get(key)
        if series is None:
            series = deque()
            self._series[key] = series
        series.append(Sample(time=time, value=value))
        self.stats["ingested"] += 1
        self._evict(series, self._now)

    def ingest_bundle(self, metrics: Dict[str, float], time: float,
                      labels: Optional[Dict[str, str]] = None) -> None:
        for name, value in metrics.items():
            self.ingest(name, value, time, labels)

    def _evict(self, series: Deque[Sample], now: float) -> None:
        while series and (now - series[0].time > self.retention
                          or len(series) > self.max_samples):
            series.popleft()
            self.stats["dropped_old"] += 1

    # -- queries ---------------------------------------------------------------

    def query(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> List[Sample]:
        return list(self._series.get((name, _freeze(labels)), ()))

    def latest(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> Optional[Sample]:
        series = self._series.get((name, _freeze(labels)))
        if not series:
            return None
        return series[-1]

    def series_names(self) -> List[str]:
        return sorted({name for (name, _labels) in self._series})

    def label_sets(self, name: str) -> List[Dict[str, str]]:
        return [dict(labels) for (n, labels) in self._series if n == name]

    def sum_latest(self, name: str) -> float:
        """Sum of the latest sample across all label sets of ``name``."""
        total = 0.0
        for key, series in self._series.items():
            if key[0] == name and series:
                total += series[-1].value
        return total
