"""The Magma orchestrator: central control plane (§3.2)."""

from .alerting import Alert, AlertManager, AlertRule
from .bootstrapper import (
    BootstrapError,
    Bootstrapper,
    Certificate,
    Challenge,
    sign_challenge,
)
from .config_store import ConfigStore, WalEntry
from .metricsd import Metricsd, Sample
from .orchestrator import Orchestrator, OrchestratorConfig
from .statesync import (
    DEFAULT_NETWORK,
    GatewayState,
    NS_GATEWAYS,
    NS_POLICIES,
    NS_RAN,
    NS_SUBSCRIBERS,
    StateSync,
    scoped,
)

__all__ = [
    "Alert",
    "AlertManager",
    "AlertRule",
    "BootstrapError",
    "Bootstrapper",
    "Certificate",
    "Challenge",
    "ConfigStore",
    "GatewayState",
    "Metricsd",
    "NS_GATEWAYS",
    "NS_POLICIES",
    "NS_RAN",
    "NS_SUBSCRIBERS",
    "Orchestrator",
    "OrchestratorConfig",
    "Sample",
    "StateSync",
    "scoped",
    "DEFAULT_NETWORK",
    "WalEntry",
    "sign_challenge",
]
