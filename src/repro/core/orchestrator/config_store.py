"""Durable configuration store (the orchestrator's Postgres stand-in).

Configuration state is "only ever written by the orchestrator ... the
source of truth is stored durably" (§3.4).  This store provides those
semantics: every mutation appends to a write-ahead log before updating the
in-memory view, the global version is monotonic, and :meth:`recover`
rebuilds the exact state from the log alone (exercised by the failure
tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class WalEntry:
    version: int
    op: str            # "put" | "delete"
    key: Tuple[str, str]
    value: Any = None


class ConfigStore:
    """Versioned KV store, keyed by (namespace, id), with a WAL."""

    def __init__(self):
        self._wal: List[WalEntry] = []
        self._data: Dict[Tuple[str, str], Any] = {}
        self._version = 0
        self._ns_versions: Dict[str, int] = {}
        self._observers: List[Callable[[WalEntry], None]] = []

    def add_observer(self, fn: Callable[[WalEntry], None]) -> None:
        """Call ``fn(entry)`` after every applied mutation.

        Lets derived structures (the digest index) stay incrementally in
        sync without polling the WAL.  Observers run synchronously after
        the store state is updated, so they may read back what they see.
        """
        self._observers.append(fn)

    @property
    def version(self) -> int:
        """Global monotonic version; bumps on every mutation."""
        return self._version

    def namespace_version(self, namespace: str) -> int:
        """Global version of the last mutation touching ``namespace``.

        Lets consumers (statesync's bundle cache) tell whether a version
        bump actually changed the state they serve, instead of rebuilding
        on every write anywhere in the store.
        """
        return self._ns_versions.get(namespace, 0)

    def put(self, namespace: str, key: str, value: Any) -> int:
        self._version += 1
        entry = WalEntry(self._version, "put", (namespace, key), value)
        self._wal.append(entry)       # WAL first, then apply
        self._data[(namespace, key)] = value
        self._ns_versions[namespace] = self._version
        self._notify(entry)
        return self._version

    def delete(self, namespace: str, key: str) -> int:
        if (namespace, key) not in self._data:
            raise KeyError(f"{namespace}/{key} not found")
        self._version += 1
        entry = WalEntry(self._version, "delete", (namespace, key))
        self._wal.append(entry)
        del self._data[(namespace, key)]
        self._ns_versions[namespace] = self._version
        self._notify(entry)
        return self._version

    def _notify(self, entry: WalEntry) -> None:
        for fn in self._observers:
            fn(entry)

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self._data.get((namespace, key), default)

    def contains(self, namespace: str, key: str) -> bool:
        return (namespace, key) in self._data

    def namespace(self, namespace: str) -> Dict[str, Any]:
        """All entries in a namespace as {key: value}."""
        return {key: value for (ns, key), value in self._data.items()
                if ns == namespace}

    def keys(self, namespace: str) -> List[str]:
        return [key for (ns, key) in self._data if ns == namespace]

    def wal(self) -> List[WalEntry]:
        return list(self._wal)

    def recover(self) -> "ConfigStore":
        """Rebuild a fresh store by replaying this store's WAL (crash test)."""
        fresh = ConfigStore()
        for entry in self._wal:
            if entry.op == "put":
                fresh._data[entry.key] = entry.value
            elif entry.op == "delete":
                fresh._data.pop(entry.key, None)
            fresh._version = entry.version
            fresh._ns_versions[entry.key[0]] = entry.version
            fresh._wal.append(entry)
        return fresh
