"""The Magma orchestrator: central point of control (§3.2).

Composes the durable config store, state-sync service, metrics store,
bootstrapper, and alert manager, and exposes the *northbound API* that
operators (and their OSS/BSS systems) integrate with.  All configuration
mutations flow through here - AGWs never write config state (§3.4).

The orchestrator has its own CPU model so the §4.3.2 scaling study can
measure control-plane load as a function of gateway count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ...net.rpc import RpcError, RpcServer
from ...net.simnet import Network
from ...sim.cpu import CpuModel
from ...sim.kernel import Simulator
from ...sim.monitor import Monitor
from ..agw.subscriberdb import SubscriberProfile
from ..policy.rules import PolicyRule
from .alerting import AlertManager, AlertRule, metric_threshold_rule
from .bootstrapper import Bootstrapper, BootstrapError
from .config_store import ConfigStore
from .metricsd import Metricsd
from .statesync import (
    DEFAULT_NETWORK,
    NS_POLICIES,
    NS_RAN,
    NS_SUBSCRIBERS,
    StateSync,
    scoped,
)


@dataclass
class OrchestratorConfig:
    """Sizing and per-operation CPU costs for the orchestrator cluster."""

    cores: float = 12.0              # ~3 modest VMs of the minimal deploy
    checkin_cpu_cost: float = 0.002
    metrics_cpu_cost_per_sample: float = 0.0002
    config_push_cpu_cost: float = 0.01
    northbound_cpu_cost: float = 0.005
    offline_threshold: float = 300.0
    quantum: float = 0.05


class Orchestrator:
    """The central controller, reachable at a network node."""

    def __init__(self, sim: Simulator, network: Network, node: str = "orc",
                 config: Optional[OrchestratorConfig] = None,
                 monitor: Optional[Monitor] = None):
        self.sim = sim
        self.network = network
        self.node = node
        self.config = config or OrchestratorConfig()
        self.monitor = monitor or Monitor()
        network.add_node(node)
        self.cpu = CpuModel(sim, cores=self.config.cores,
                            quantum=self.config.quantum,
                            monitor=self.monitor, name=node)
        self.store = ConfigStore()
        self.metricsd = Metricsd()
        self.statesync = StateSync(sim, self.store, self.metricsd)
        self.bootstrapper = Bootstrapper(clock=lambda: sim.now)
        self.alerts = AlertManager(clock=lambda: sim.now)
        self.alerts.add_rule(AlertRule(
            name="gateway-offline",
            evaluate=lambda: self.statesync.offline_gateways(
                self.config.offline_threshold),
            message="gateway has missed check-ins"))
        self.alerts.add_rule(AlertRule(
            name="gateway-unhealthy",
            evaluate=self._unhealthy_gateways,
            message="gateway self-reports failing health checks"))
        self.alerts.add_rule(metric_threshold_rule(
            self.metricsd, name="attach-rejections",
            metric="attach_rejected", threshold=0.0, above=True,
            message="gateway has rejected attach attempts"))
        self.server = RpcServer(sim, network, node)
        self.server.register("statesync", "checkin", self._checkin_handler)
        self.server.register("bootstrap", "challenge", self._challenge_handler)
        self.server.register("bootstrap", "complete", self._complete_handler)

    # -- RPC handlers ---------------------------------------------------------------

    def _checkin_handler(self, request: Dict[str, Any]):
        cost = self.config.checkin_cpu_cost
        backlog = request.get("metrics_backlog")
        if backlog is not None:
            samples = sum(len(entry.get("metrics", {})) for entry in backlog)
        else:
            samples = len(request.get("metrics") or {})
        cost += samples * self.config.metrics_cpu_cost_per_sample
        response = self.statesync.handle_checkin(request)
        if response.get("config") is not None:
            cost += self.config.config_push_cpu_cost

        def proc(sim):
            yield self.cpu.submit("checkin", cost)
            return response

        return proc(self.sim)

    def _challenge_handler(self, request: Dict[str, Any]):
        try:
            challenge = self.bootstrapper.request_challenge(
                request["gateway_id"])
        except BootstrapError as exc:
            raise RpcError(RpcError.PERMISSION_DENIED, str(exc))
        return {"nonce": challenge.nonce}

    def _complete_handler(self, request: Dict[str, Any]):
        try:
            cert = self.bootstrapper.complete(request["gateway_id"],
                                              request["signature"])
        except BootstrapError as exc:
            raise RpcError(RpcError.PERMISSION_DENIED, str(exc))
        return {"serial": cert.serial, "token": cert.token,
                "expires_at": cert.expires_at}

    # -- northbound API (operator-facing) ----------------------------------------------

    def add_subscriber(self, profile: SubscriberProfile,
                       network_id: str = DEFAULT_NETWORK) -> int:
        """Provision a subscriber network-wide; returns the config version.

        ``network_id`` selects the logical network (tenant) in multi-network
        deployments; gateways only receive their own network's config.
        """
        self._charge_northbound()
        return self.store.put(scoped(NS_SUBSCRIBERS, network_id),
                              profile.imsi, profile)

    def delete_subscriber(self, imsi: str,
                          network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self.store.delete(scoped(NS_SUBSCRIBERS, network_id), imsi)

    def get_subscriber(self, imsi: str,
                       network_id: str = DEFAULT_NETWORK
                       ) -> Optional[SubscriberProfile]:
        return self.store.get(scoped(NS_SUBSCRIBERS, network_id), imsi)

    def subscriber_count(self, network_id: str = DEFAULT_NETWORK) -> int:
        return len(self.store.keys(scoped(NS_SUBSCRIBERS, network_id)))

    def upsert_policy(self, policy: PolicyRule,
                      network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self.store.put(scoped(NS_POLICIES, network_id),
                              policy.policy_id, policy)

    def delete_policy(self, policy_id: str,
                      network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self.store.delete(scoped(NS_POLICIES, network_id), policy_id)

    def set_ran_config(self, key: str, value: Any,
                       network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self.store.put(scoped(NS_RAN, network_id), key, value)

    def list_gateways(self) -> List[Dict[str, Any]]:
        return [{
            "gateway_id": g.gateway_id,
            "last_checkin": g.last_checkin,
            "config_version": g.config_version,
            "checkins": g.checkins,
            "status": g.status,
        } for g in self.statesync.gateways()]

    def gateway_status(self, gateway_id: str) -> Optional[Dict[str, Any]]:
        state = self.statesync.gateway(gateway_id)
        if state is None:
            return None
        return {"gateway_id": state.gateway_id,
                "last_checkin": state.last_checkin,
                "config_version": state.config_version,
                "status": state.status}

    def query_metric(self, name: str,
                     labels: Optional[Dict[str, str]] = None):
        return self.metricsd.query(name, labels)

    def evaluate_alerts(self):
        return self.alerts.evaluate()

    def _unhealthy_gateways(self) -> List[str]:
        """Gateways whose last check-in carried failing health checks."""
        unhealthy = []
        for state in self.statesync.gateways():
            health = state.status.get("health")
            if health is not None and health.get("healthy") is False:
                unhealthy.append(state.gateway_id)
        return sorted(unhealthy)

    def _charge_northbound(self) -> None:
        self.cpu.submit("northbound", self.config.northbound_cpu_cost)
