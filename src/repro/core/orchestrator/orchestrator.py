"""The Magma orchestrator: central point of control (§3.2).

Composes the durable config store, state-sync service, metrics store,
bootstrapper, and alert manager, and exposes the *northbound API* that
operators (and their OSS/BSS systems) integrate with.  All configuration
mutations flow through here - AGWs never write config state (§3.4).

The orchestrator has its own CPU model so the §4.3.2 scaling study can
measure control-plane load as a function of gateway count.

**Scale-out** (``num_shards > 0``): the control plane splits into N
``StateSync`` shards, each with its own metrics store, CPU model, and
network node.  Gateways are partitioned by consistent hash of
``gateway_id`` (``repro.core.sync.shard``); check-ins arriving at the
main node are routed to the owning shard, and gateways may also address
their shard's node directly (``shard_node_for``).  The config store stays
single-writer on the main node - shards serve reads of it, which is the
real orchestrator's stateless-service-over-shared-DB shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ...net.rpc import RpcError, RpcServer
from ...net.simnet import Network
from ...sim.cpu import CpuModel
from ...sim.kernel import Simulator
from ...sim.monitor import Monitor
from ..agw.subscriberdb import SubscriberProfile
from ..policy.rules import PolicyRule
from ..sync import (
    ConsistentHashRing,
    DigestIndex,
    MergedGatewayView,
    MergedMetricsView,
    ShardRouter,
)
from .alerting import AlertManager, AlertRule, metric_threshold_rule
from .bootstrapper import Bootstrapper, BootstrapError
from .config_store import ConfigStore
from .metricsd import Metricsd
from .statesync import (
    DEFAULT_NETWORK,
    NS_POLICIES,
    NS_RAN,
    NS_SUBSCRIBERS,
    ConvergenceTracker,
    StateSync,
    scoped,
)


@dataclass
class OrchestratorConfig:
    """Sizing and per-operation CPU costs for the orchestrator cluster."""

    cores: float = 12.0              # ~3 modest VMs of the minimal deploy
    checkin_cpu_cost: float = 0.002
    metrics_cpu_cost_per_sample: float = 0.0002
    config_push_cpu_cost: float = 0.01
    reconcile_cpu_cost: float = 0.003
    northbound_cpu_cost: float = 0.005
    offline_threshold: float = 300.0
    quantum: float = 0.05


class OrchestratorShard:
    """One horizontal slice of the control plane: its own state-sync
    registry, metrics store, CPU, and RPC endpoint."""

    def __init__(self, shard_id: str, node: str, statesync: StateSync,
                 metricsd: Metricsd, cpu: CpuModel, server: RpcServer):
        self.shard_id = shard_id
        self.node = node
        self.statesync = statesync
        self.metricsd = metricsd
        self.cpu = cpu
        self.server = server


class Orchestrator:
    """The central controller, reachable at a network node."""

    def __init__(self, sim: Simulator, network: Network, node: str = "orc",
                 config: Optional[OrchestratorConfig] = None,
                 monitor: Optional[Monitor] = None,
                 digest_sync: bool = True,
                 num_shards: int = 0):
        self.sim = sim
        self.network = network
        self.node = node
        self.config = config or OrchestratorConfig()
        self.monitor = monitor or Monitor()
        self.num_shards = num_shards
        network.add_node(node)
        self.cpu = CpuModel(sim, cores=self.config.cores,
                            quantum=self.config.quantum,
                            monitor=self.monitor, name=node)
        self.store = ConfigStore()
        self.digests = DigestIndex(self.store) if digest_sync else None
        # Publish→all-applied lag tracker, shared by every shard's
        # StateSync; its metricsd sink is attached below once one exists.
        self.convergence = ConvergenceTracker(sim, monitor=self.monitor)
        self.shards: List[OrchestratorShard] = []
        self.router: Optional[ShardRouter] = None
        if num_shards > 0:
            # Each shard is its own slice of the cluster's cores: the load
            # question is whether N small shards absorb what one big
            # process would, so total hardware is held constant.
            shard_cores = self.config.cores / num_shards
            for i in range(num_shards):
                shard_node = f"{node}-s{i}"
                network.add_node(shard_node)
                shard_metricsd = Metricsd()
                shard_sync = StateSync(sim, self.store, shard_metricsd,
                                       digest_sync=digest_sync,
                                       digests=self.digests,
                                       monitor=self.monitor,
                                       convergence=self.convergence)
                shard_cpu = CpuModel(sim, cores=shard_cores,
                                     quantum=self.config.quantum,
                                     monitor=self.monitor, name=shard_node)
                shard_server = RpcServer(sim, network, shard_node)
                shard_server.register(
                    "statesync", "checkin",
                    self._make_checkin_handler(shard_sync, shard_cpu))
                shard_server.register(
                    "statesync", "reconcile",
                    self._make_reconcile_handler(shard_sync, shard_cpu))
                self.shards.append(OrchestratorShard(
                    shard_id=shard_node, node=shard_node,
                    statesync=shard_sync, metricsd=shard_metricsd,
                    cpu=shard_cpu, server=shard_server))
            ring = ConsistentHashRing([s.shard_id for s in self.shards])
            self.router = ShardRouter(ring,
                                      {s.shard_id: s for s in self.shards})
            self.statesync: Union[StateSync, MergedGatewayView] = \
                MergedGatewayView([s.statesync for s in self.shards])
            self.metricsd: Union[Metricsd, MergedMetricsView] = \
                MergedMetricsView([s.metricsd for s in self.shards])
        else:
            self.metricsd = Metricsd()
            self.statesync = StateSync(sim, self.store, self.metricsd,
                                       digest_sync=digest_sync,
                                       digests=self.digests,
                                       monitor=self.monitor,
                                       convergence=self.convergence)
        # Convergence-lag samples land in one concrete store: the first
        # shard's when sharded (the merged view reads across shards), the
        # single store otherwise.
        self.convergence.metricsd = self.shards[0].metricsd \
            if self.shards else self.metricsd
        self.bootstrapper = Bootstrapper(clock=lambda: sim.now)
        self.alerts = AlertManager(
            clock=lambda: sim.now,
            recorder=lambda: self.sim.recorder)
        self.alerts.add_rule(AlertRule(
            name="gateway-offline",
            evaluate=lambda: self.statesync.offline_gateways(
                self.config.offline_threshold),
            message="gateway has missed check-ins"))
        self.alerts.add_rule(AlertRule(
            name="gateway-unhealthy",
            evaluate=self._unhealthy_gateways,
            message="gateway self-reports failing health checks"))
        self.alerts.add_rule(metric_threshold_rule(
            self.metricsd, name="attach-rejections",
            metric="attach_rejected", threshold=0.0, above=True,
            message="gateway has rejected attach attempts"))
        # Windowed health/SLO scoring over the state assembled above.
        # Deferred import: obs.health is a consumer of orchestrator state
        # and must not become a load-time dependency cycle.
        from ...obs.health import HealthEngine
        self.health = HealthEngine(self)
        self.server = RpcServer(sim, network, node)
        self.server.register("statesync", "checkin", self._checkin_handler)
        self.server.register("statesync", "reconcile",
                             self._reconcile_handler)
        self.server.register("bootstrap", "challenge", self._challenge_handler)
        self.server.register("bootstrap", "complete", self._complete_handler)

    # -- sharding --------------------------------------------------------------------

    def shard_for(self, gateway_id: str) -> Optional[OrchestratorShard]:
        """The shard owning ``gateway_id`` (None when unsharded)."""
        if self.router is None:
            return None
        return self.router.shard_for(gateway_id)

    def shard_node_for(self, gateway_id: str) -> str:
        """The node a gateway should address its check-ins to."""
        shard = self.shard_for(gateway_id)
        return self.node if shard is None else shard.node

    # -- RPC handlers ---------------------------------------------------------------

    def _route(self, gateway_id: str) -> tuple:
        """(statesync, cpu) serving ``gateway_id``'s sync traffic."""
        shard = self.shard_for(gateway_id)
        if shard is None:
            return self.statesync, self.cpu
        return shard.statesync, shard.cpu

    def _checkin_handler(self, request: Dict[str, Any]):
        statesync, cpu = self._route(request["gateway_id"])
        return self._run_checkin(statesync, cpu, request)

    def _reconcile_handler(self, request: Dict[str, Any]):
        statesync, cpu = self._route(request["gateway_id"])
        return self._run_reconcile(statesync, cpu, request)

    def _make_checkin_handler(self, statesync: StateSync, cpu: CpuModel):
        def handler(request: Dict[str, Any]):
            return self._run_checkin(statesync, cpu, request)
        return handler

    def _make_reconcile_handler(self, statesync: StateSync, cpu: CpuModel):
        def handler(request: Dict[str, Any]):
            return self._run_reconcile(statesync, cpu, request)
        return handler

    def _run_checkin(self, statesync: StateSync, cpu: CpuModel,
                     request: Dict[str, Any]):
        cost = self.config.checkin_cpu_cost
        backlog = request.get("metrics_backlog")
        if backlog is not None:
            samples = sum(len(entry.get("metrics", {})) for entry in backlog)
        else:
            samples = len(request.get("metrics") or {})
        cost += samples * self.config.metrics_cpu_cost_per_sample
        response = statesync.handle_checkin(request)
        if response.get("config") is not None:
            cost += self.config.config_push_cpu_cost

        def proc(sim):
            yield cpu.submit("checkin", cost)
            return response

        return proc(self.sim)

    def _run_reconcile(self, statesync: StateSync, cpu: CpuModel,
                       request: Dict[str, Any]):
        response = statesync.handle_reconcile(request)

        def proc(sim):
            yield cpu.submit("reconcile", self.config.reconcile_cpu_cost)
            return response

        return proc(self.sim)

    def _challenge_handler(self, request: Dict[str, Any]):
        try:
            challenge = self.bootstrapper.request_challenge(
                request["gateway_id"])
        except BootstrapError as exc:
            raise RpcError(RpcError.PERMISSION_DENIED, str(exc))
        return {"nonce": challenge.nonce}

    def _complete_handler(self, request: Dict[str, Any]):
        try:
            cert = self.bootstrapper.complete(request["gateway_id"],
                                              request["signature"])
        except BootstrapError as exc:
            raise RpcError(RpcError.PERMISSION_DENIED, str(exc))
        return {"serial": cert.serial, "token": cert.token,
                "expires_at": cert.expires_at}

    # -- northbound API (operator-facing) ----------------------------------------------

    def add_subscriber(self, profile: SubscriberProfile,
                       network_id: str = DEFAULT_NETWORK) -> int:
        """Provision a subscriber network-wide; returns the config version.

        ``network_id`` selects the logical network (tenant) in multi-network
        deployments; gateways only receive their own network's config.
        """
        self._charge_northbound()
        return self._published(network_id, self.store.put(
            scoped(NS_SUBSCRIBERS, network_id), profile.imsi, profile))

    def delete_subscriber(self, imsi: str,
                          network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self._published(network_id, self.store.delete(
            scoped(NS_SUBSCRIBERS, network_id), imsi))

    def get_subscriber(self, imsi: str,
                       network_id: str = DEFAULT_NETWORK
                       ) -> Optional[SubscriberProfile]:
        return self.store.get(scoped(NS_SUBSCRIBERS, network_id), imsi)

    def subscriber_count(self, network_id: str = DEFAULT_NETWORK) -> int:
        return len(self.store.keys(scoped(NS_SUBSCRIBERS, network_id)))

    def upsert_policy(self, policy: PolicyRule,
                      network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self._published(network_id, self.store.put(
            scoped(NS_POLICIES, network_id), policy.policy_id, policy))

    def delete_policy(self, policy_id: str,
                      network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self._published(network_id, self.store.delete(
            scoped(NS_POLICIES, network_id), policy_id))

    def set_ran_config(self, key: str, value: Any,
                       network_id: str = DEFAULT_NETWORK) -> int:
        self._charge_northbound()
        return self._published(network_id, self.store.put(
            scoped(NS_RAN, network_id), key, value))

    def _published(self, network_id: str, version: int) -> int:
        """Note a northbound write so convergence lag is measured from it."""
        self.convergence.note_publish(network_id, version)
        return version

    def list_gateways(self) -> List[Dict[str, Any]]:
        return [{
            "gateway_id": g.gateway_id,
            "last_checkin": g.last_checkin,
            "config_version": g.config_version,
            "checkins": g.checkins,
            "status": g.status,
        } for g in self.statesync.gateways()]

    def gateway_status(self, gateway_id: str) -> Optional[Dict[str, Any]]:
        state = self.statesync.gateway(gateway_id)
        if state is None:
            return None
        return {"gateway_id": state.gateway_id,
                "last_checkin": state.last_checkin,
                "config_version": state.config_version,
                "status": state.status}

    def query_metric(self, name: str,
                     labels: Optional[Dict[str, str]] = None):
        return self.metricsd.query(name, labels)

    def health_report(self) -> Dict[str, Any]:
        """Northbound: per-AGW, per-shard, and fleet health scores."""
        return self.health.report()

    def evaluate_alerts(self):
        return self.alerts.evaluate()

    def _unhealthy_gateways(self) -> List[str]:
        """Gateways whose last check-in carried failing health checks."""
        unhealthy = []
        for state in self.statesync.gateways():
            health = state.status.get("health")
            if health is not None and health.get("healthy") is False:
                unhealthy.append(state.gateway_id)
        return sorted(unhealthy)

    def _charge_northbound(self) -> None:
        self.cpu.submit("northbound", self.config.northbound_cpu_cost)
