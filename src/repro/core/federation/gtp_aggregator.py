"""GTP Aggregator (GTP-A): the home-routed user-plane concentrator (§3.6).

In home-roaming mode, user traffic from thousands of distributed AGWs is
tunneled to one GTP-A (a single bare-metal box in the FreedomFi deployment:
8-core Xeon, 2x10G NICs) which connects to the partner MNO's P-GW.  Being a
centralized, on-path device, its capacity bounds the federated network's
home-routed throughput - the scaling implication the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...sim.fairshare import max_min_share
from ...sim.kernel import Simulator

DEFAULT_GTPA_CAPACITY_MBPS = 18_000.0  # ~2x10G NICs, minus overhead


class GtpAggregator:
    """Fluid-mode aggregation point for home-routed traffic."""

    def __init__(self, sim: Simulator, node: str = "gtp-a",
                 capacity_mbps: float = DEFAULT_GTPA_CAPACITY_MBPS,
                 mno_core: Optional["PartnerMnoCore"] = None):
        if capacity_mbps <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.node = node
        self.capacity_mbps = capacity_mbps
        self.mno_core = mno_core
        self._offers: Dict[Tuple[str, str], float] = {}  # (agw, imsi) -> mbps
        self.stats = {"bytes_forwarded": 0, "peak_offered_mbps": 0.0}

    def offer(self, agw_id: str, imsi: str, mbps: float) -> None:
        """Register the offered home-routed rate for one session this tick."""
        if mbps < 0:
            raise ValueError("offered rate must be >= 0")
        key = (agw_id, imsi)
        if mbps == 0.0:
            self._offers.pop(key, None)
        else:
            self._offers[key] = mbps

    def withdraw(self, agw_id: str, imsi: str) -> None:
        self._offers.pop((agw_id, imsi), None)

    def allocate(self) -> Dict[Tuple[str, str], float]:
        """Admitted per-session rates under the GTP-A capacity."""
        offered = {f"{a}|{i}": r for (a, i), r in self._offers.items()}
        self.stats["peak_offered_mbps"] = max(
            self.stats["peak_offered_mbps"], sum(offered.values()))
        shared = max_min_share(offered, self.capacity_mbps)
        result = {}
        for key, rate in shared.items():
            agw_id, imsi = key.split("|", 1)
            result[(agw_id, imsi)] = rate
        return result

    def admitted(self, agw_id: str, imsi: str) -> float:
        return self.allocate().get((agw_id, imsi), 0.0)

    def forward(self, duration: float) -> float:
        """Account one tick of forwarding; returns total Mbps carried."""
        allocation = self.allocate()
        total_mbps = sum(allocation.values())
        for (agw_id, imsi), mbps in allocation.items():
            used = int(mbps * 1e6 / 8.0 * duration)
            self.stats["bytes_forwarded"] += used
            if self.mno_core is not None:
                self.mno_core.pgw_record_usage(imsi, used)
        return total_mbps

    def utilization(self) -> float:
        return min(1.0, sum(self._offers.values()) / self.capacity_mbps)

    def start_accounting(self, tick: float = 1.0) -> None:
        """Meter forwarded traffic once per tick (call exactly once; the
        per-AGW traffic engines only register offers)."""
        if tick <= 0:
            raise ValueError("tick must be positive")
        if getattr(self, "_accounting", False):
            return
        self._accounting = True

        def loop():
            while self._accounting:
                yield self.sim.timeout(tick)
                if self._accounting:
                    self.forward(tick)

        self.sim.spawn(loop(), name=f"gtpa-accounting:{self.node}")

    def stop_accounting(self) -> None:
        self._accounting = False
