"""Federation Gateway (FeG): Magma's adapter to external MNO cores (§3.6).

Exactly as the AGW terminates access-specific protocols from the radio
network, the FeG terminates the 3GPP-defined *core-side* interfaces (S6a,
Gx, Gy) toward a partner MNO, exposing a simple internal RPC service that
AGWs call.  The FeG is a centralized, on-path element - the deliberate
single point of interconnection MNOs require - which is why its capacity
matters for scaling (§4.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ...net.rpc import RpcChannel, RpcError, RpcServer
from ...net.simnet import Network
from ...sim.cpu import CpuModel
from ...sim.kernel import Simulator

FEG_SERVICE = "feg"


@dataclass
class FegConfig:
    cores: float = 16.0               # one "heavy" orchestrator VM
    request_cpu_cost: float = 0.001
    mno_deadline: float = 10.0


class FederationGateway:
    """The FeG service, hosted at a network node (usually the orchestrator)."""

    def __init__(self, sim: Simulator, network: Network, node: str,
                 mno_node: str, config: Optional[FegConfig] = None,
                 server: Optional[RpcServer] = None):
        self.sim = sim
        self.network = network
        self.node = node
        self.mno_node = mno_node
        self.config = config or FegConfig()
        network.add_node(node)
        self.cpu = CpuModel(sim, cores=self.config.cores, name=f"feg-{node}")
        self.server = server or RpcServer(sim, network, node)
        self._mno = RpcChannel(sim, network, node, mno_node)
        self.server.register(FEG_SERVICE, "get_auth_vector",
                             self._on_get_auth_vector)
        self.server.register(FEG_SERVICE, "get_policy", self._on_get_policy)
        self.server.register("ocs", "request_quota", self._on_request_quota)
        self.server.register("ocs", "report_usage", self._on_report_usage)
        self.stats = {"auth_requests": 0, "policy_requests": 0,
                      "quota_requests": 0, "mno_errors": 0}

    # -- handlers (AGW-facing) -----------------------------------------------------

    def _on_get_auth_vector(self, request: Dict[str, Any]):
        self.stats["auth_requests"] += 1

        def proc(sim):
            yield self.cpu.submit("feg", self.config.request_cpu_cost)
            try:
                vector = yield self._mno.call(
                    "s6a", "authentication_information", request,
                    deadline=self.config.mno_deadline)
            except RpcError as exc:
                self.stats["mno_errors"] += 1
                if exc.code == RpcError.NOT_FOUND:
                    return None
                raise
            return vector

        return proc(self.sim)

    def _on_get_policy(self, request: Dict[str, Any]):
        self.stats["policy_requests"] += 1

        def proc(sim):
            yield self.cpu.submit("feg", self.config.request_cpu_cost)
            try:
                response = yield self._mno.call("gx", "ccr_initial", request,
                                                deadline=self.config.mno_deadline)
            except RpcError as exc:
                self.stats["mno_errors"] += 1
                if exc.code == RpcError.NOT_FOUND:
                    return None
                raise
            return response

        return proc(self.sim)

    def _on_request_quota(self, request: Dict[str, Any]):
        """Gy proxy: AGWs use the standard OCS client interface."""
        self.stats["quota_requests"] += 1

        def proc(sim):
            yield self.cpu.submit("feg", self.config.request_cpu_cost)
            grant = yield self._mno.call("gy", "request_quota", request,
                                         deadline=self.config.mno_deadline)
            return grant

        return proc(self.sim)

    def _on_report_usage(self, request: Dict[str, Any]):
        def proc(sim):
            yield self.cpu.submit("feg", self.config.request_cpu_cost)
            result = yield self._mno.call("gy", "report_usage", request,
                                          deadline=self.config.mno_deadline)
            return result

        return proc(self.sim)
