"""Deployment modes (§3.6).

- **standalone**: an independent network; all control and user plane
  terminate in the AGW.
- **local_breakout**: control plane federates with an existing MNO (auth
  vectors and policy fetched through the FeG), but user traffic breaks out
  locally from the AGW straight to the Internet.
- **home_routed**: both planes terminate in the external MNO; user traffic
  is tunneled via the GTP aggregator to the MNO's P-GW.
"""

from __future__ import annotations


class DeploymentMode:
    STANDALONE = "standalone"
    LOCAL_BREAKOUT = "local_breakout"
    HOME_ROUTED = "home_routed"

    ALL = (STANDALONE, LOCAL_BREAKOUT, HOME_ROUTED)


def validate_mode(mode: str) -> str:
    if mode not in DeploymentMode.ALL:
        raise ValueError(f"unknown deployment mode {mode!r}; "
                         f"choose from {DeploymentMode.ALL}")
    return mode


def user_plane_egress(mode: str, federated_subscriber: bool) -> str:
    """Which egress the data plane should use for a session.

    Returns ``"sgi"`` (local Internet breakout) or ``"gtpa"`` (tunnel to
    the MNO via the GTP aggregator).
    """
    validate_mode(mode)
    if mode == DeploymentMode.HOME_ROUTED and federated_subscriber:
        return "gtpa"
    return "sgi"
