"""Federation with external MNO cores (paper §3.6)."""

from .feg import FEG_SERVICE, FederationGateway, FegConfig
from .gtp_aggregator import DEFAULT_GTPA_CAPACITY_MBPS, GtpAggregator
from .mno_core import MnoSubscriber, PartnerMnoCore
from .modes import DeploymentMode, user_plane_egress, validate_mode

__all__ = [
    "DEFAULT_GTPA_CAPACITY_MBPS",
    "DeploymentMode",
    "FEG_SERVICE",
    "FederationGateway",
    "FegConfig",
    "GtpAggregator",
    "MnoSubscriber",
    "PartnerMnoCore",
    "user_plane_egress",
    "validate_mode",
]
