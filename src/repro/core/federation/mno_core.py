"""Partner MNO core model (the federated network of §3.6).

A traditional mobile operator's core, as seen from Magma's Federation
Gateway: an HSS answering S6a authentication-information requests, a PCRF
answering Gx credit-control/policy requests, an OCS answering Gy quota
requests, and a P-GW terminating home-routed user-plane traffic.

This is deliberately a *model* of the 3GPP reference points, not a full
EPC: the FeG is the only component that talks to it, over a single point
of interconnection (the paper: "traditional MNOs prefer a single point of
interconnection between their sensitive core network and extension
networks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ...lte import auth
from ...net.rpc import RpcError, RpcServer
from ...net.simnet import Network
from ...sim.kernel import Simulator
from ...sim.rng import RngRegistry
from ..policy.ocs import OnlineChargingSystem
from ..policy.rules import PolicyRule, unlimited


@dataclass
class MnoSubscriber:
    imsi: str
    k: bytes
    opc: bytes
    policy: PolicyRule
    sqn: int = 0


class PartnerMnoCore:
    """The incumbent operator's core network, reachable at one node."""

    def __init__(self, sim: Simulator, network: Network, node: str = "mno",
                 rng: Optional[RngRegistry] = None,
                 ocs: Optional[OnlineChargingSystem] = None):
        self.sim = sim
        self.network = network
        self.node = node
        self.rng = rng or RngRegistry(0)
        self.ocs = ocs
        self._subscribers: Dict[str, MnoSubscriber] = {}
        # P-GW side: usage accounting for home-routed traffic.
        self.pgw_usage_bytes: Dict[str, int] = {}
        network.add_node(node)
        self.server = RpcServer(sim, network, node)
        self.server.register("s6a", "authentication_information",
                             self._on_auth_info)
        self.server.register("gx", "ccr_initial", self._on_ccr_initial)
        self.server.register("gy", "request_quota", self._on_gy_quota)
        self.server.register("gy", "report_usage", self._on_gy_report)
        self.stats = {"s6a_requests": 0, "s6a_unknown": 0, "gx_requests": 0,
                      "gy_requests": 0}

    # -- provisioning -------------------------------------------------------------

    def provision(self, imsi: str, k: bytes, opc: bytes,
                  policy: Optional[PolicyRule] = None) -> None:
        self._subscribers[imsi] = MnoSubscriber(
            imsi=imsi, k=k, opc=opc,
            policy=policy or unlimited(f"mno-{imsi}"))
        if self.ocs is not None:
            try:
                self.ocs.account(imsi)
            except Exception:  # noqa: BLE001 - provision a default balance
                self.ocs.provision(imsi, balance_bytes=10_000_000_000)

    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- 3GPP reference-point handlers ------------------------------------------------

    def _on_auth_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """S6a AIR: return an authentication vector (never the key itself)."""
        self.stats["s6a_requests"] += 1
        subscriber = self._subscribers.get(request["imsi"])
        if subscriber is None:
            self.stats["s6a_unknown"] += 1
            raise RpcError(RpcError.NOT_FOUND, "unknown IMSI")
        subscriber.sqn += 1
        rand = self.rng.stream(f"mno.rand.{self.node}").randbytes(16)
        vector = auth.generate_vector(subscriber.k, subscriber.opc,
                                      subscriber.sqn, rand)
        return {"rand": vector.rand, "xres": vector.xres,
                "autn": vector.autn, "kasme": vector.kasme}

    def _on_ccr_initial(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Gx CCR-I: return the policy to install for this subscriber."""
        self.stats["gx_requests"] += 1
        subscriber = self._subscribers.get(request["imsi"])
        if subscriber is None:
            raise RpcError(RpcError.NOT_FOUND, "unknown IMSI")
        return {"policy": subscriber.policy}

    def _on_gy_quota(self, request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        self.stats["gy_requests"] += 1
        if self.ocs is None:
            raise RpcError(RpcError.FAILED_PRECONDITION, "no OCS")
        grant = self.ocs.request_quota(request["imsi"], request["agw_id"],
                                       request.get("requested_bytes"))
        if grant is None:
            return None
        return {"grant_id": grant.grant_id,
                "granted_bytes": grant.granted_bytes}

    def _on_gy_report(self, request: Dict[str, Any]) -> bool:
        if self.ocs is None:
            raise RpcError(RpcError.FAILED_PRECONDITION, "no OCS")
        self.ocs.report_usage(request["grant_id"], request["used_bytes"],
                              final=request.get("final", False))
        return True

    # -- P-GW user plane (home-routed traffic lands here) --------------------------------

    def pgw_record_usage(self, imsi: str, used_bytes: int) -> None:
        self.pgw_usage_bytes[imsi] = \
            self.pgw_usage_bytes.get(imsi, 0) + used_bytes

    def pgw_total_bytes(self) -> int:
        return sum(self.pgw_usage_bytes.values())
