"""Accounting: charging data records (CDRs) and per-subscriber rollups.

Magma handles *metering and accounting* while billing lives in the OCS/BSS
(§3.4).  ``sessiond`` emits a CDR when a session closes (or periodically for
long sessions); operators' business systems consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class ChargingDataRecord:
    """One closed (or interim) accounting record."""

    imsi: str
    agw_id: str
    session_id: str
    start_time: float
    end_time: float
    bytes_dl: int
    bytes_ul: int
    policy_id: str
    interim: bool = False

    @property
    def total_bytes(self) -> int:
        return self.bytes_dl + self.bytes_ul

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class AccountingLog:
    """Append-only CDR log with per-subscriber aggregation."""

    def __init__(self):
        self._records: List[ChargingDataRecord] = []

    def append(self, record: ChargingDataRecord) -> None:
        if record.end_time < record.start_time:
            raise ValueError("CDR ends before it starts")
        self._records.append(record)

    def records(self) -> List[ChargingDataRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def usage_by_subscriber(self) -> Dict[str, int]:
        """Total bytes per IMSI across all records."""
        usage: Dict[str, int] = {}
        for record in self._records:
            usage[record.imsi] = usage.get(record.imsi, 0) + record.total_bytes
        return usage

    def usage_for(self, imsi: str) -> int:
        return self.usage_by_subscriber().get(imsi, 0)
