"""Policy enforcement state: per-session usage tracking and rate decisions.

``sessiond`` keeps one :class:`EnforcementState` per active session.  The
enforcer answers two questions each accounting tick:

- *What rate may this session receive right now?*  (the policy's normal
  rate, the throttled rate once a cap is exhausted, or zero when online
  charging has no quota left)
- *Has anything changed that the data plane must be reprogrammed for?*
  (meter reconfiguration when transitioning to/from throttled state)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .rules import ChargingMode, PolicyRule

UNLIMITED_MBPS = 10_000.0  # sentinel "no shaping" rate for meters


class EnforcementDecision:
    """What the data plane should currently allow for a session."""

    __slots__ = ("allowed_mbps", "throttled", "blocked", "needs_quota")

    def __init__(self, allowed_mbps: float, throttled: bool = False,
                 blocked: bool = False, needs_quota: bool = False):
        self.allowed_mbps = allowed_mbps
        self.throttled = throttled
        self.blocked = blocked
        self.needs_quota = needs_quota


class EnforcementState:
    """Mutable per-session policy state (runtime state, AGW-local)."""

    def __init__(self, policy: PolicyRule, session_start: float = 0.0,
                 quota_refill_threshold: float = 0.2):
        self.policy = policy
        self.total_bytes = 0
        self.interval_bytes = 0
        self.interval_start = session_start
        self.quota_remaining = 0      # online charging: bytes left in grant
        self.quota_grant_id: Optional[int] = None
        self.quota_refill_threshold = quota_refill_threshold
        self._last_grant_size = 0

    # -- usage accounting ------------------------------------------------------

    def record_usage(self, used_bytes: int, now: float) -> None:
        """Account ``used_bytes`` of traffic against the policy."""
        if used_bytes < 0:
            raise ValueError("usage must be >= 0")
        self._maybe_reset_interval(now)
        self.total_bytes += used_bytes
        self.interval_bytes += used_bytes
        if self.policy.charging == ChargingMode.ONLINE:
            self.quota_remaining = max(0, self.quota_remaining - used_bytes)

    def add_quota(self, grant_id: int, granted_bytes: int) -> None:
        self.quota_grant_id = grant_id
        self.quota_remaining += granted_bytes
        self._last_grant_size = granted_bytes

    def _maybe_reset_interval(self, now: float) -> None:
        interval = self.policy.cap_interval_s
        if interval is None:
            return
        if now - self.interval_start >= interval:
            # Advance to the current interval boundary.
            periods = int((now - self.interval_start) / interval)
            self.interval_start += periods * interval
            self.interval_bytes = 0

    # -- decisions ------------------------------------------------------------------

    def decide(self, now: float) -> EnforcementDecision:
        """The current enforcement decision for this session."""
        self._maybe_reset_interval(now)
        policy = self.policy
        if policy.charging == ChargingMode.ONLINE:
            if self.quota_remaining <= 0:
                return EnforcementDecision(0.0, blocked=True, needs_quota=True)
            needs_quota = (self._last_grant_size > 0 and
                           self.quota_remaining <
                           self._last_grant_size * self.quota_refill_threshold)
            rate = policy.rate_limit_mbps or UNLIMITED_MBPS
            return EnforcementDecision(rate, needs_quota=needs_quota)
        if policy.usage_cap_bytes is not None and \
                self.interval_bytes >= policy.usage_cap_bytes:
            throttled_rate = policy.throttled_rate_mbps
            if throttled_rate is None:
                return EnforcementDecision(0.0, throttled=True, blocked=True)
            return EnforcementDecision(throttled_rate, throttled=True)
        return EnforcementDecision(policy.rate_limit_mbps or UNLIMITED_MBPS)
