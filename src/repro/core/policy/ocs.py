"""Online charging system (OCS).

Volume-based billing per §3.4: the OCS owns the subscriber's prepaid
balance and authorizes small quotas (default 1 MB) to AGWs on the user's
behalf.  Whether a quota has been granted is *configuration* state; the
amount remaining inside a grant is *runtime* state local to the AGW.

Reservation semantics reproduce the paper's double-spend bound: a grant
*reserves* balance; the OCS charges only what usage reports account for.  A
reservation abandoned by a crashed/moved AGW eventually expires and its
unreported remainder is released uncharged - so a strategic user's maximum
free consumption is capped by the quota size per AGW move, "a business
decision" (§3.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

DEFAULT_QUOTA_BYTES = 1_000_000  # the paper's example quota: 1 MB
DEFAULT_RESERVATION_TTL = 300.0


class OcsError(Exception):
    """Unknown subscriber or invalid charging operation."""


@dataclass
class QuotaGrant:
    grant_id: int
    imsi: str
    agw_id: str
    granted_bytes: int
    reported_bytes: int = 0
    issued_at: float = 0.0
    closed: bool = False


@dataclass
class Account:
    imsi: str
    balance_bytes: int
    reserved_bytes: int = 0
    charged_bytes: int = 0

    @property
    def available_bytes(self) -> int:
        return max(0, self.balance_bytes - self.reserved_bytes)


class OnlineChargingSystem:
    """A third-party OCS as seen from Magma: balances, grants, reports."""

    def __init__(self, quota_bytes: int = DEFAULT_QUOTA_BYTES,
                 reservation_ttl: float = DEFAULT_RESERVATION_TTL,
                 clock=None):
        if quota_bytes <= 0:
            raise ValueError("quota size must be positive")
        self.quota_bytes = quota_bytes
        self.reservation_ttl = reservation_ttl
        self._clock = clock or (lambda: 0.0)
        self._accounts: Dict[str, Account] = {}
        self._grants: Dict[int, QuotaGrant] = {}
        self._grant_ids = itertools.count(1)
        self.stats = {"grants": 0, "denials": 0, "reports": 0,
                      "expired_reservations": 0}

    # -- account management -------------------------------------------------------

    def provision(self, imsi: str, balance_bytes: int) -> Account:
        if balance_bytes < 0:
            raise ValueError("balance must be >= 0")
        account = Account(imsi=imsi, balance_bytes=balance_bytes)
        self._accounts[imsi] = account
        return account

    def top_up(self, imsi: str, amount_bytes: int) -> None:
        self._account(imsi).balance_bytes += amount_bytes

    def account(self, imsi: str) -> Account:
        return self._account(imsi)

    def _account(self, imsi: str) -> Account:
        account = self._accounts.get(imsi)
        if account is None:
            raise OcsError(f"no OCS account for {imsi}")
        return account

    # -- charging session ----------------------------------------------------------

    def request_quota(self, imsi: str, agw_id: str,
                      requested_bytes: Optional[int] = None) -> Optional[QuotaGrant]:
        """Authorize a quota for ``imsi`` at ``agw_id``; None if denied."""
        self._expire_stale()
        account = self._account(imsi)
        want = requested_bytes or self.quota_bytes
        grant_size = min(want, account.available_bytes)
        if grant_size <= 0:
            self.stats["denials"] += 1
            return None
        grant = QuotaGrant(grant_id=next(self._grant_ids), imsi=imsi,
                           agw_id=agw_id, granted_bytes=grant_size,
                           issued_at=self._clock())
        account.reserved_bytes += grant_size
        self._grants[grant.grant_id] = grant
        self.stats["grants"] += 1
        return grant

    def report_usage(self, grant_id: int, used_bytes: int,
                     final: bool = False) -> None:
        """AGW reports consumption against a grant (charges the balance)."""
        grant = self._grants.get(grant_id)
        if grant is None or grant.closed:
            raise OcsError(f"unknown or closed grant {grant_id}")
        if used_bytes < grant.reported_bytes:
            raise OcsError("usage reports must be monotonic")
        delta = min(used_bytes, grant.granted_bytes) - grant.reported_bytes
        account = self._account(grant.imsi)
        account.charged_bytes += delta
        account.balance_bytes -= delta
        account.reserved_bytes -= delta
        grant.reported_bytes += delta
        self.stats["reports"] += 1
        if final:
            self._close(grant)

    def _close(self, grant: QuotaGrant) -> None:
        account = self._account(grant.imsi)
        unreported = grant.granted_bytes - grant.reported_bytes
        account.reserved_bytes -= unreported  # released, not charged
        grant.closed = True

    def housekeeping(self) -> None:
        """Release reservations whose TTL lapsed (also runs lazily on each
        quota request).  Crashed/moved AGWs leave orphaned grants; this is
        the mechanism that bounds the operator's exposure to quota size."""
        self._expire_stale()

    def _expire_stale(self) -> None:
        now = self._clock()
        for grant in list(self._grants.values()):
            if grant.closed:
                continue
            if now - grant.issued_at > self.reservation_ttl:
                self.stats["expired_reservations"] += 1
                self._close(grant)

    # -- analysis ---------------------------------------------------------------------

    def unbilled_exposure(self, imsi: str) -> int:
        """Bytes ``imsi`` could consume without ever being charged.

        The paper's double-spend bound: the sum of open grants' unreported
        remainders - capped at quota_size per open grant/AGW.
        """
        return sum(g.granted_bytes - g.reported_bytes
                   for g in self._grants.values()
                   if g.imsi == imsi and not g.closed)
