"""Policy and charging: rules, enforcement, online charging, accounting."""

from .accounting import AccountingLog, ChargingDataRecord
from .enforcer import EnforcementDecision, EnforcementState, UNLIMITED_MBPS
from .ocs import (
    Account,
    DEFAULT_QUOTA_BYTES,
    OcsError,
    OnlineChargingSystem,
    QuotaGrant,
)
from .rules import (
    ChargingMode,
    GB,
    MB,
    PolicyRule,
    capped,
    prepaid,
    rate_limited,
    unlimited,
)

__all__ = [
    "Account",
    "AccountingLog",
    "ChargingDataRecord",
    "ChargingMode",
    "DEFAULT_QUOTA_BYTES",
    "EnforcementDecision",
    "EnforcementState",
    "GB",
    "MB",
    "OcsError",
    "OnlineChargingSystem",
    "PolicyRule",
    "QuotaGrant",
    "UNLIMITED_MBPS",
    "capped",
    "prepaid",
    "rate_limited",
    "unlimited",
]
