"""Network policy rules.

The paper's canonical example (§2.1): *"rate limit customer C to X Mbps
until they have sent Y GB in interval t1, then limit to Z Mbps for interval
t2."*  :class:`PolicyRule` expresses exactly that family - a sustained rate
limit, an optional usage cap per interval, a throttled rate once the cap is
hit, and an optional online-charging mode where usage draws down OCS quota
grants (§3.4).

Policies are *configuration state*: authored at the orchestrator, pushed to
AGWs, and cached there for headless operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

GB = 1_000_000_000
MB = 1_000_000


class ChargingMode:
    NONE = "none"          # free/unlimited accounting only
    ONLINE = "online"      # draws quota grants from the OCS


@dataclass(frozen=True)
class PolicyRule:
    """A per-subscriber-class policy."""

    policy_id: str
    rate_limit_mbps: Optional[float] = None   # None = unshaped
    usage_cap_bytes: Optional[int] = None     # None = no cap
    throttled_rate_mbps: Optional[float] = None  # once cap is hit
    cap_interval_s: Optional[float] = None    # rolling interval; None = lifetime
    qci: int = 9
    charging: str = ChargingMode.NONE
    priority: int = 10

    def __post_init__(self):
        if self.rate_limit_mbps is not None and self.rate_limit_mbps <= 0:
            raise ValueError("rate limit must be positive")
        if self.usage_cap_bytes is not None and self.usage_cap_bytes <= 0:
            raise ValueError("usage cap must be positive")
        if self.throttled_rate_mbps is not None and self.throttled_rate_mbps <= 0:
            raise ValueError("throttled rate must be positive")
        if self.usage_cap_bytes is None and self.throttled_rate_mbps is not None:
            raise ValueError("throttled rate requires a usage cap")
        if self.charging not in (ChargingMode.NONE, ChargingMode.ONLINE):
            raise ValueError(f"unknown charging mode {self.charging!r}")


def unlimited(policy_id: str = "unlimited") -> PolicyRule:
    """The AccessParks policy (§4.3.1): backhaul UEs get unrestricted access."""
    return PolicyRule(policy_id=policy_id)


def rate_limited(policy_id: str, mbps: float) -> PolicyRule:
    return PolicyRule(policy_id=policy_id, rate_limit_mbps=mbps)


def capped(policy_id: str, mbps: float, cap_bytes: int,
           throttled_mbps: float, interval_s: Optional[float] = None) -> PolicyRule:
    """The paper's X-until-Y-then-Z policy."""
    return PolicyRule(policy_id=policy_id, rate_limit_mbps=mbps,
                      usage_cap_bytes=cap_bytes,
                      throttled_rate_mbps=throttled_mbps,
                      cap_interval_s=interval_s)


def prepaid(policy_id: str, mbps: Optional[float] = None) -> PolicyRule:
    """Online-charged policy: usage draws down OCS quota grants."""
    return PolicyRule(policy_id=policy_id, rate_limit_mbps=mbps,
                      charging=ChargingMode.ONLINE)
