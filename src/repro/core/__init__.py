"""Magma core: access gateways, orchestrator, federation, policy."""
