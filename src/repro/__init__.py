"""repro: reproduction of "Building Flexible, Low-Cost Wireless Access
Networks With Magma" (NSDI 2023).

Subpackages:

- ``repro.sim`` - discrete-event kernel, CPU model, monitors, RNG.
- ``repro.net`` - simulated network, transports, RPC, backhaul profiles.
- ``repro.dataplane`` - OVS-like programmable software data plane.
- ``repro.lte`` / ``repro.fiveg`` / ``repro.wifi`` - radio access substrates.
- ``repro.core`` - the Magma contribution: AGW, orchestrator, federation,
  policy/charging.
- ``repro.baseline`` - traditional monolithic EPC for comparison.
- ``repro.workloads`` - attach storms, HTTP/IoT traffic, diurnal usage.
- ``repro.costmodel`` - CapEx/OpEx models behind Tables 2-3.
- ``repro.experiments`` - one module per paper figure/table.
"""

__version__ = "1.0.0"
