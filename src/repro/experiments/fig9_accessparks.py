"""Figure 9: per-hour AccessParks usage (Mar-Apr 2022).

We cannot access the operator's production data, so this experiment
regenerates the figure's *shape* from the calibrated synthetic diurnal
generator (see DESIGN.md substitutions): hourly active subscribers and
aggregate throughput for a 14-site fixed-wireless-backhaul network over
two months, with the diurnal cycle, weekend uplift, and week-over-week
growth the deployment exhibited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..workloads.diurnal import DiurnalConfig, HourSample, generate_trace, summarize
from .common import format_table


@dataclass
class Fig9Result:
    samples: List[HourSample]
    stats: dict

    def hourly_series(self) -> List[Tuple[int, int, float]]:
        """(hour_index, active_subscribers, throughput_mbps) rows."""
        return [(s.hour_index, s.active_subscribers, s.throughput_mbps)
                for s in self.samples]

    def daily_rows(self) -> List[List[object]]:
        """Per-day peak subscribers and mean throughput (compact view)."""
        rows = []
        days = {}
        for sample in self.samples:
            days.setdefault(sample.day, []).append(sample)
        for day in sorted(days):
            entries = days[day]
            rows.append([
                day,
                max(e.active_subscribers for e in entries),
                sum(e.throughput_mbps for e in entries) / len(entries),
            ])
        return rows

    def render(self) -> str:
        header = (
            "Figure 9 - AccessParks-style hourly usage (synthetic trace)\n"
            f"peak subscribers {self.stats['peak_subscribers']}, "
            f"mean throughput {self.stats['mean_throughput_mbps']:.0f} Mbps, "
            f"peak hour {self.stats['peak_hour_of_day']}:00, "
            f"peak/trough {self.stats['peak_to_trough_ratio']:.1f}x\n")
        return header + format_table(
            ["day", "peak_subscribers", "mean_throughput_mbps"],
            self.daily_rows())


def run_fig9(config: DiurnalConfig = None, seed: int = 0) -> Fig9Result:
    samples = generate_trace(config or DiurnalConfig(), seed=seed)
    return Fig9Result(samples=samples, stats=summarize(samples))
