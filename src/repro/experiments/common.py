"""Shared experiment scaffolding: the emulation testbed (§4.1).

``build_emulated_site`` is this reproduction's Spirent Landslide: it stands
up an AGW, a configurable number of emulated eNodeBs and pre-provisioned
UEs, exactly as the paper's testbed does ("the emulated SIM cards were
pre-provisioned into the orchestrator and AGW in advance of all
experiments").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.agw import (
    AccessGateway,
    AgwConfig,
    CheckpointStore,
    SubscriberProfile,
)
from ..core.policy import PolicyRule
from ..lte import CellConfig, Enodeb, Ue, UeConfig, auth, make_imsi
from ..net import Network, backhaul
from ..sim import Monitor, RngRegistry, Simulator

OPERATOR_OP = b"repro-operator-op"


def subscriber_keys(index: int):
    """Deterministic per-subscriber K/OPc (test-network credentials)."""
    k = index.to_bytes(4, "big") * 4
    opc = auth.derive_opc(k, OPERATOR_OP)
    return k, opc


@dataclass
class EmulatedSite:
    """One cell site under emulation: AGW + eNodeBs + UE population."""

    sim: Simulator
    network: Network
    rng: RngRegistry
    monitor: Monitor
    agw: AccessGateway
    enbs: List[Enodeb]
    ues: List[Ue]
    imsis: List[str]
    checkpoint_store: CheckpointStore

    def run_attach(self, ue: Ue, limit: float = 120.0):
        done = ue.attach()
        return self.sim.run_until_triggered(done, limit=self.sim.now + limit)


def build_emulated_site(num_enbs: int = 1, num_ues: int = 1,
                        config: Optional[AgwConfig] = None,
                        cell_config: Optional[CellConfig] = None,
                        ue_config: Optional[UeConfig] = None,
                        policies: Optional[Dict[str, PolicyRule]] = None,
                        policy_id: str = "default",
                        ocs=None,
                        orchestrator_node: Optional[str] = None,
                        seed: int = 0,
                        sanitizer=None) -> EmulatedSite:
    """Stand up a complete emulated Magma cell site, S1 established.

    ``sanitizer`` (a :class:`repro.sim.SimSan`) arms the runtime sanitizer
    on the site's kernel and watches its RNG registry.
    """
    sim = Simulator(sanitizer=sanitizer)
    rng = RngRegistry(seed)
    if sanitizer is not None:
        sanitizer.watch_rng(rng)
    monitor = Monitor()
    network = Network(sim, rng)
    store = CheckpointStore()
    agw = AccessGateway(sim, network, "agw-1", config=config,
                        orchestrator_node=orchestrator_node, ocs=ocs,
                        checkpoint_store=store, monitor=monitor, rng=rng)
    if policies:
        for policy in policies.values():
            agw.policydb.upsert(policy)
    enbs = []
    for i in range(num_enbs):
        enb_id = f"enb-{i + 1}"
        network.connect(enb_id, "agw-1", backhaul.lan(f"lan-{enb_id}"))
        enbs.append(Enodeb(sim, network, enb_id, "agw-1",
                           cell_config=cell_config))
    ues: List[Ue] = []
    imsis: List[str] = []
    for i in range(num_ues):
        imsi = make_imsi(i + 1)
        k, opc = subscriber_keys(i + 1)
        agw.subscriberdb.upsert(SubscriberProfile(
            imsi=imsi, k=k, opc=opc, policy_id=policy_id,
            wifi_secret=f"wifi-{imsi}"))
        ues.append(Ue(sim, imsi, k, opc, enbs[i % len(enbs)],
                      config=ue_config))
        imsis.append(imsi)
    agw.start()
    for enb in enbs:
        enb.s1_setup()
    sim.run(until=1.0)
    for enb in enbs:
        if not enb.s1_ready:
            raise RuntimeError(f"S1 setup failed for {enb.enb_id}")
    return EmulatedSite(sim=sim, network=network, rng=rng, monitor=monitor,
                        agw=agw, enbs=enbs, ues=ues, imsis=imsis,
                        checkpoint_store=store)


def format_table(headers: List[str], rows: List[List[object]]) -> str:
    """Fixed-width text table for bench/experiment output."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(r[i]) for r in text_rows), default=0))
              for i in range(len(headers))]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(headers))))
    return "\n".join(lines)
