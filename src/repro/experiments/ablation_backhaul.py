"""Ablation: backhaul quality vs control-plane experience (§3.1).

Because Magma terminates the radio protocols *at the cell site*, the UE's
attach dialogue never crosses the backhaul - attach latency is the same on
fiber, microwave, or satellite.  In the baseline architecture every NAS
round trip traverses the backhaul to the remote core, so attach latency
balloons with RTT and suffers under loss.

Same UEs, same eNodeB model, same workload; only where the core sits
differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..baseline import MonolithicEpc
from ..core.agw import AccessGateway, SubscriberProfile
from ..lte import Enodeb, Ue, make_imsi
from ..net import Network, backhaul
from ..sim import RngRegistry, Simulator, median
from .common import format_table, subscriber_keys

PROFILES = ("fiber", "microwave", "satellite")


@dataclass
class BackhaulPoint:
    profile: str
    magma_median_latency: float
    magma_csr: float
    baseline_median_latency: float
    baseline_csr: float


@dataclass
class BackhaulResult:
    points: List[BackhaulPoint]
    num_ues: int

    def rows(self) -> List[List[object]]:
        return [[p.profile,
                 f"{p.magma_median_latency:.2f}", f"{p.magma_csr * 100:.0f}",
                 f"{p.baseline_median_latency:.2f}",
                 f"{p.baseline_csr * 100:.0f}"]
                for p in self.points]

    def render(self) -> str:
        header = (f"Backhaul ablation ({self.num_ues} attaches per cell): "
                  f"attach latency and CSR by backhaul quality\n")
        return header + format_table(
            ["backhaul", "magma_latency_s", "magma_csr_pct",
             "baseline_latency_s", "baseline_csr_pct"], self.rows())

    def point(self, profile: str) -> BackhaulPoint:
        for p in self.points:
            if p.profile == profile:
                return p
        raise KeyError(profile)


def _measure(architecture: str, profile: str, num_ues: int,
             seed: int) -> Tuple[float, float]:
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    link = backhaul.by_name(profile)
    if architecture == "magma":
        agw = AccessGateway(sim, network, "core", rng=rng)
        network.add_node("orc-far")
        network.connect("core", "orc-far", link)      # backhaul: northbound
        network.connect("enb-1", "core", backhaul.lan())
        provision = lambda p: agw.subscriberdb.upsert(p)  # noqa: E731
        agw.start()
    else:
        epc = MonolithicEpc(sim, network, "core", rng=rng)
        network.connect("enb-1", "core", link)        # backhaul: to the core
        provision = lambda p: epc.provision(p)  # noqa: E731
    enb = Enodeb(sim, network, "enb-1", "core")
    ues = []
    for i in range(num_ues):
        imsi = make_imsi(i + 1)
        k, opc = subscriber_keys(i + 1)
        provision(SubscriberProfile(imsi=imsi, k=k, opc=opc))
        ues.append(Ue(sim, imsi, k, opc, enb))
    enb.s1_setup()
    sim.run(until=10.0)
    if not enb.s1_ready:
        return float("inf"), 0.0
    latencies = []
    successes = 0
    for ue in ues:
        done = ue.attach()
        outcome = sim.run_until_triggered(done, limit=sim.now + 120.0)
        if outcome.success:
            successes += 1
            latencies.append(outcome.latency)
    csr = successes / num_ues
    return (median(latencies) if latencies else float("inf")), csr


def run_backhaul_ablation(num_ues: int = 10, seed: int = 0) -> BackhaulResult:
    points = []
    for profile in PROFILES:
        magma_latency, magma_csr = _measure("magma", profile, num_ues, seed)
        base_latency, base_csr = _measure("baseline", profile, num_ues, seed)
        points.append(BackhaulPoint(
            profile=profile,
            magma_median_latency=magma_latency, magma_csr=magma_csr,
            baseline_median_latency=base_latency, baseline_csr=base_csr))
    return BackhaulResult(points=points, num_ues=num_ues)
