"""Ablation: small fault domains (per-AGW) vs one monolithic core (§3.3).

The same network - M cell sites, N UEs per site - built both ways.  One
random core element fails.  In the Magma build that is one AGW: only its
site's UEs lose service, and checkpoint restore brings them back.  In the
baseline build it is the EPC: every UE in the network loses service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..baseline import MonolithicEpc
from ..core.agw import AccessGateway, CheckpointStore, SubscriberProfile
from ..lte import Enodeb, Ue, make_imsi
from ..net import Network, backhaul
from ..sim import RngRegistry, Simulator
from .common import format_table, subscriber_keys


@dataclass
class FaultDomainResult:
    num_sites: int
    ues_per_site: int
    magma_affected_fraction: float
    baseline_affected_fraction: float
    magma_sessions_restored: int

    def rows(self) -> List[List[object]]:
        return [
            ["Magma (one AGW per site)",
             f"{self.magma_affected_fraction * 100:.0f}%",
             self.magma_sessions_restored],
            ["baseline (one EPC)",
             f"{self.baseline_affected_fraction * 100:.0f}%", "n/a"],
        ]

    def render(self) -> str:
        header = (f"Fault-domain ablation: {self.num_sites} sites x "
                  f"{self.ues_per_site} UEs, one core element fails\n")
        return header + format_table(
            ["architecture", "users_affected", "sessions_restored"],
            self.rows())


def _serving(agw_or_epc, imsis) -> int:
    count = 0
    for imsi in imsis:
        if isinstance(agw_or_epc, AccessGateway):
            if agw_or_epc.sessiond.session(imsi) is not None \
                    and not agw_or_epc.crashed:
                count += 1
        else:
            context = agw_or_epc.context_for(imsi)
            if context is not None and context.state == "registered" \
                    and not agw_or_epc.crashed:
                count += 1
    return count


def run_fault_domain_ablation(num_sites: int = 4, ues_per_site: int = 5,
                              seed: int = 0) -> FaultDomainResult:
    total_ues = num_sites * ues_per_site

    # ---- Magma: one AGW per site ------------------------------------------------
    sim_m = Simulator()
    net_m = Network(sim_m, RngRegistry(seed))
    store = CheckpointStore()
    agws: List[AccessGateway] = []
    site_imsis: List[List[str]] = []
    index = 1
    for s in range(num_sites):
        agw = AccessGateway(sim_m, net_m, f"agw-{s}",
                            checkpoint_store=store,
                            rng=RngRegistry(seed + s))
        net_m.connect(f"enb-{s}", f"agw-{s}", backhaul.lan())
        enb = Enodeb(sim_m, net_m, f"enb-{s}", f"agw-{s}")
        agw.start()
        enb.s1_setup()
        sim_m.run(until=sim_m.now + 1.0)
        imsis = []
        for _u in range(ues_per_site):
            imsi = make_imsi(index)
            k, opc = subscriber_keys(index)
            index += 1
            agw.subscriberdb.upsert(SubscriberProfile(imsi=imsi, k=k, opc=opc))
            ue = Ue(sim_m, imsi, k, opc, enb)
            done = ue.attach()
            outcome = sim_m.run_until_triggered(done, limit=sim_m.now + 120)
            if not outcome.success:
                raise RuntimeError("magma setup attach failed")
            imsis.append(imsi)
        agws.append(agw)
        site_imsis.append(imsis)
    sim_m.run(until=sim_m.now + 15.0)  # settle + checkpoint
    # Fail one AGW.
    victim = agws[0]
    victim.crash()
    serving_after = sum(_serving(agw, imsis)
                        for agw, imsis in zip(agws, site_imsis))
    magma_affected = (total_ues - serving_after) / total_ues
    restored = victim.recover()

    # ---- Baseline: one EPC for all sites ------------------------------------------
    sim_b = Simulator()
    net_b = Network(sim_b, RngRegistry(seed))
    epc = MonolithicEpc(sim_b, net_b, "epc", rng=RngRegistry(seed))
    all_imsis_b: List[str] = []
    index = 1
    for s in range(num_sites):
        net_b.connect(f"enb-{s}", "epc", backhaul.fiber())
        enb = Enodeb(sim_b, net_b, f"enb-{s}", "epc")
        enb.s1_setup()
        sim_b.run(until=sim_b.now + 1.0)
        for _u in range(ues_per_site):
            imsi = make_imsi(index)
            k, opc = subscriber_keys(index)
            index += 1
            epc.provision(SubscriberProfile(imsi=imsi, k=k, opc=opc))
            ue = Ue(sim_b, imsi, k, opc, enb)
            done = ue.attach()
            outcome = sim_b.run_until_triggered(done, limit=sim_b.now + 120)
            if not outcome.success:
                raise RuntimeError("baseline setup attach failed")
            all_imsis_b.append(imsi)
    sim_b.run(until=sim_b.now + 5.0)
    epc.crash()
    serving_after_b = _serving(epc, all_imsis_b)
    baseline_affected = (total_ues - serving_after_b) / total_ues

    return FaultDomainResult(
        num_sites=num_sites, ues_per_site=ues_per_site,
        magma_affected_fraction=magma_affected,
        baseline_affected_fraction=baseline_affected,
        magma_sessions_restored=restored)
