"""Tables 2 and 3: the paper's cost results, regenerated.

Thin wrappers over :mod:`repro.costmodel` that print the same rows the
paper reports and expose the headline numbers the benches assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..costmodel import (
    ComparisonTable,
    CostTable,
    DeploymentCostParams,
    SiteParams,
    agw_cost_share,
    per_site_cost_comparison,
    ran_site_capex,
)
from .common import format_table


@dataclass
class Table2Result:
    table: CostTable
    agw_share: float

    def rows(self) -> List[List[object]]:
        rows = [[r["item"], r["unit_cost"], r["quantity"], r["total"],
                 r["notes"]] for r in self.table.rows()]
        rows.append(["RAN CapEx (per site)", "", "", self.table.total, ""])
        return rows

    def render(self) -> str:
        header = (f"Table 2 - RAN equipment cost for a typical site "
                  f"(AGW share: {self.agw_share * 100:.1f}%)\n")
        return header + format_table(
            ["Item", "Unit Cost", "Qty", "Total", "Notes"], self.rows())


def run_table2(params: SiteParams = None) -> Table2Result:
    return Table2Result(table=ran_site_capex(params),
                        agw_share=agw_cost_share(params))


@dataclass
class Table3Result:
    table: ComparisonTable

    @property
    def savings_pct(self) -> float:
        return self.table.savings_pct

    def rows(self) -> List[List[object]]:
        rows = []
        for row in self.table.rows():
            diff = ("-" if row.difference == 0 else
                    f"{row.difference:+,.0f} ({row.difference_pct:+.0f}%)")
            rows.append([row.item, row.traditional, row.magma, diff,
                         row.notes])
        rows.append(["Cost/Site", self.table.traditional_total,
                     self.table.magma_total,
                     f"-{self.savings_pct:.0f}%", ""])
        return rows

    def render(self) -> str:
        header = (f"Table 3 - per-site installed cost, traditional vs "
                  f"Magma ({self.savings_pct:.0f}% lower)\n")
        return header + format_table(
            ["Item", "Traditional", "Magma", "Difference", "Notes"],
            self.rows())


def run_table3(params: DeploymentCostParams = None) -> Table3Result:
    return Table3Result(table=per_site_cost_comparison(params))
