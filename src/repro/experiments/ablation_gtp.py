"""Ablation: local GTP termination vs GTP over the backhaul (§3.1).

Two architectures face the same backhaul outage:

- **Baseline**: the monolithic EPC sits across the backhaul.  The GTP path
  between the cell site and the core fails during the outage; the core
  tears down every session at the site, and UEs with fragile basebands
  wedge until power-cycled ("a confusing lack of coverage").
- **Magma**: GTP terminates inside the on-site AGW; only the AGW-to-
  orchestrator link (gRPC-style, retrying) crosses the backhaul.  Sessions
  and UEs never see a GTP failure; the AGW merely runs headless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..baseline import EpcConfig, MonolithicEpc
from ..core.agw import AccessGateway, AgwConfig, SubscriberProfile
from ..core.orchestrator import Orchestrator
from ..lte import Enodeb, Ue, UeConfig, UeState, make_imsi
from ..lte.gtp import GtpcEndpoint
from ..net import Link, Network, backhaul
from ..sim import RngRegistry, Simulator
from .common import format_table, subscriber_keys


@dataclass
class GtpAblationResult:
    num_ues: int
    fragile_fraction: float
    outage_seconds: float
    baseline_sessions_lost: int
    baseline_stuck_ues: int
    magma_sessions_lost: int
    magma_stuck_ues: int

    def rows(self) -> List[List[object]]:
        return [
            ["baseline EPC (GTP over backhaul)", self.baseline_sessions_lost,
             self.baseline_stuck_ues],
            ["Magma (GTP terminated at AGW)", self.magma_sessions_lost,
             self.magma_stuck_ues],
        ]

    def render(self) -> str:
        header = (f"GTP-termination ablation: {self.num_ues} UEs "
                  f"({self.fragile_fraction * 100:.0f}% fragile basebands), "
                  f"{self.outage_seconds:.0f}s backhaul outage\n")
        return header + format_table(
            ["architecture", "sessions_lost", "ues_stuck"], self.rows())


def _attach_all(sim, ues, limit=600.0):
    for ue in ues:
        done = ue.attach()
        outcome = sim.run_until_triggered(done, limit=sim.now + limit)
        if not outcome.success:
            raise RuntimeError(f"setup attach failed: {outcome.cause}")
    sim.run(until=sim.now + 3.0)


def run_gtp_ablation(num_ues: int = 12, fragile_fraction: float = 0.5,
                     outage_seconds: float = 60.0,
                     seed: int = 0) -> GtpAblationResult:
    fragile_count = int(num_ues * fragile_fraction)

    def make_ues(sim, enb, provision):
        ues = []
        for i in range(num_ues):
            imsi = make_imsi(i + 1)
            k, opc = subscriber_keys(i + 1)
            provision(imsi, k, opc)
            fragile = i < fragile_count
            ues.append(Ue(sim, imsi, k, opc, enb,
                          config=UeConfig(fragile_baseband=fragile)))
        return ues

    # ---- Baseline: EPC across the backhaul -----------------------------------
    sim_b = Simulator()
    net_b = Network(sim_b, RngRegistry(seed))
    epc = MonolithicEpc(sim_b, net_b, "epc",
                        config=EpcConfig(gtp_echo_interval=5.0),
                        rng=RngRegistry(seed))
    net_b.connect("site", "epc", backhaul.satellite())
    enb_b = Enodeb(sim_b, net_b, "site", "epc")
    enb_gtp = GtpcEndpoint(sim_b, net_b, "site")
    enb_gtp.set_path_failure_callback(
        lambda peer: enb_b.s1_path_failure("gtp path failure"))
    enb_gtp.start_path_monitor("epc", interval=5.0)
    ues_b = make_ues(sim_b, enb_b,
                     lambda imsi, k, opc: epc.provision(
                         SubscriberProfile(imsi=imsi, k=k, opc=opc)))
    enb_b.s1_setup()
    sim_b.run(until=sim_b.now + 5.0)
    _attach_all(sim_b, ues_b)
    sessions_before_b = epc.session_count()
    net_b.set_node_up("site", False)
    sim_b.run(until=sim_b.now + outage_seconds)
    net_b.set_node_up("site", True)
    sim_b.run(until=sim_b.now + 30.0)
    baseline_lost = sessions_before_b - epc.session_count()
    baseline_stuck = sum(1 for ue in ues_b if ue.state == UeState.STUCK)

    # ---- Magma: AGW at the site, orchestrator across the backhaul -------------
    sim_m = Simulator()
    net_m = Network(sim_m, RngRegistry(seed))
    orc = Orchestrator(sim_m, net_m, "orc")
    net_m.connect("agw-1", "orc", backhaul.satellite())
    agw = AccessGateway(sim_m, net_m, "agw-1", config=AgwConfig(),
                        orchestrator_node="orc", rng=RngRegistry(seed))
    net_m.connect("enb-1", "agw-1", backhaul.lan())
    enb_m = Enodeb(sim_m, net_m, "enb-1", "agw-1")
    ues_m = make_ues(sim_m, enb_m,
                     lambda imsi, k, opc: agw.subscriberdb.upsert(
                         SubscriberProfile(imsi=imsi, k=k, opc=opc)))
    agw.start()
    enb_m.s1_setup()
    sim_m.run(until=sim_m.now + 5.0)
    _attach_all(sim_m, ues_m)
    sessions_before_m = agw.sessiond.session_count()
    # The same outage: the backhaul (AGW <-> orchestrator) goes dark.
    net_m.set_node_up("orc", False)
    sim_m.run(until=sim_m.now + outage_seconds)
    net_m.set_node_up("orc", True)
    sim_m.run(until=sim_m.now + 30.0)
    magma_lost = sessions_before_m - agw.sessiond.session_count()
    magma_stuck = sum(1 for ue in ues_m if ue.state == UeState.STUCK)

    return GtpAblationResult(
        num_ues=num_ues, fragile_fraction=fragile_fraction,
        outage_seconds=outage_seconds,
        baseline_sessions_lost=baseline_lost,
        baseline_stuck_ues=baseline_stuck,
        magma_sessions_lost=magma_lost,
        magma_stuck_ues=magma_stuck)
