"""Figures 7 & 8: control/user plane separation (CUPS) on the virtual AGW.

One experiment produces both figures.  On an 8-vCPU virtual AGW we run a
saturating traffic load (the paper's commercial generator topped out at
2.5 Gbps) concurrently with a steady attach workload, and sweep the number
of cores *statically* allocated to the user plane (the rest go to the
control plane).  A final trial lets the kernel scheduler allocate flexibly.

- **Fig. 7**: steady-state throughput vs user-plane cores - rises with
  cores and plateaus once the traffic generator is the limit (the paper:
  "our traffic generator was unable to saturate the virtual AGW's user
  plane in the 5 CPU case and above").
- **Fig. 8**: median connection success rate vs user-plane cores - falls
  as the control plane is squeezed.
- **Flexible** achieves both high throughput and high CSR, the paper's
  punchline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.agw import AgwConfig, virtual_profile
from ..lte import CellConfig, UeConfig
from ..workloads import AttachStorm, TrafficEngine
from .common import build_emulated_site, format_table

TRAFFIC_GENERATOR_CAP_MBPS = 2_500.0


@dataclass
class CupsConfig:
    vcpus: int = 8
    up_core_options: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)
    include_flexible: bool = True
    attach_rate: float = 14.0          # CP demand = 14 x 0.25 = 3.5 cores
    num_traffic_ues: int = 25
    traffic_per_ue_mbps: float = 100.0  # 25 x 100 = the generator's 2.5 Gbps
    measure_duration: float = 40.0
    seed: int = 0


@dataclass
class CupsPoint:
    allocation: str                  # "1".."6" or "flexible"
    up_cores: Optional[int]
    throughput_mbps: float
    median_csr: float
    overall_csr: float


@dataclass
class CupsResult:
    points: List[CupsPoint]
    generator_cap_mbps: float

    def fig7_rows(self) -> List[List[object]]:
        return [[p.allocation, f"{p.throughput_mbps:.0f}"]
                for p in self.points]

    def fig8_rows(self) -> List[List[object]]:
        return [[p.allocation, f"{p.median_csr * 100:.1f}"]
                for p in self.points]

    def render(self) -> str:
        rows = [[p.allocation, f"{p.throughput_mbps:.0f}",
                 f"{p.median_csr * 100:.1f}"] for p in self.points]
        return ("Figures 7+8 - CUPS sweep on the virtual AGW "
                f"(traffic generator cap {self.generator_cap_mbps:.0f} Mbps)\n"
                + format_table(["up_cores", "throughput_mbps",
                                "median_csr_pct"], rows))

    def point(self, allocation: str) -> CupsPoint:
        for p in self.points:
            if p.allocation == allocation:
                return p
        raise KeyError(f"no allocation {allocation!r}")


def run_cups_point(up_cores: Optional[int], config: CupsConfig) -> CupsPoint:
    """One allocation trial; ``up_cores=None`` means flexible scheduling."""
    hardware = virtual_profile(config.vcpus)
    partition = None
    if up_cores is not None:
        if up_cores >= config.vcpus:
            raise ValueError("must leave at least one control-plane core")
        partition = {"up": float(up_cores),
                     "cp": float(config.vcpus - up_cores)}
    num_attach_ues = int(config.attach_rate * config.measure_duration)
    site = build_emulated_site(
        num_enbs=2,
        num_ues=config.num_traffic_ues + num_attach_ues,
        config=AgwConfig(hardware=hardware, cpu_partition=partition,
                         mme_max_pending=60),
        # Emulated RAN: effectively unconstrained so the AGW is the
        # variable under test (the Landslide arrangement).
        cell_config=CellConfig(max_active_ues=2000, capacity_mbps=5_000.0,
                               per_ue_peak_mbps=200.0),
        ue_config=UeConfig(),
        seed=config.seed)
    traffic_ues = site.ues[:config.num_traffic_ues]
    attach_ues = site.ues[config.num_traffic_ues:]
    # Bring up the traffic population first (idle control plane).
    warmup = AttachStorm(site.sim, traffic_ues, rate_per_sec=8.0,
                         offered_mbps_after_attach=config.traffic_per_ue_mbps)
    warmup.start()
    site.sim.run_until_triggered(warmup.done, limit=site.sim.now + 600.0)
    engine = TrafficEngine(site.sim, site.agw, site.enbs,
                           monitor=site.monitor, record_usage=False)
    engine.start()
    site.sim.run(until=site.sim.now + 5.0)
    measure_start = site.sim.now
    storm = AttachStorm(site.sim, attach_ues,
                        rate_per_sec=config.attach_rate,
                        monitor=site.monitor)
    storm.start()
    site.sim.run_until_triggered(storm.done, limit=site.sim.now + 900.0)
    engine.stop()
    tput = site.monitor.series("traffic.agw-1.achieved_mbps")
    steady = tput.between(measure_start + 5.0, measure_start +
                          config.measure_duration)
    throughput = steady.mean() if len(steady) else tput.last()
    return CupsPoint(
        allocation="flexible" if up_cores is None else str(up_cores),
        up_cores=up_cores,
        throughput_mbps=min(throughput, TRAFFIC_GENERATOR_CAP_MBPS),
        median_csr=storm.median_csr(),
        overall_csr=storm.overall_csr())


def run_cups(config: CupsConfig = None) -> CupsResult:
    config = config or CupsConfig()
    points = [run_cups_point(n, config) for n in config.up_core_options]
    if config.include_flexible:
        points.append(run_cups_point(None, config))
    return CupsResult(points=points,
                      generator_cap_mbps=TRAFFIC_GENERATOR_CAP_MBPS)
