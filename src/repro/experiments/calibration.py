"""Calibration checks: the §4.1-4.2 operating points our model must hit.

These are the anchors DESIGN.md §5 commits to:

- bare-metal AGW: ~2 attach/s under a saturated user plane (Fig. 6 text);
- 4-vCPU virtual AGW: 16 attaches/s, "which would saturate the RAN
  capacity of the typical site in 18 seconds" (288 UEs / 16 per second);
- 432 Mbps of forwarding leaves ample CPU headroom on the bare-metal AGW.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.agw import AgwConfig, BARE_METAL, VIRTUAL_4VCPU
from ..lte import CellConfig
from ..workloads import AttachStorm
from .common import build_emulated_site, format_table


@dataclass
class CalibrationResult:
    bare_metal_pure_attach_rate: float
    bare_metal_loaded_attach_rate: float
    virtual_attach_rate: float
    typical_site_saturation_seconds: float
    forwarding_432_cpu_fraction: float

    def rows(self):
        return [
            ["bare-metal attach capacity (idle UP)",
             f"{self.bare_metal_pure_attach_rate:.1f}/s", "~4/s"],
            ["bare-metal attach capacity (saturated UP)",
             f"{self.bare_metal_loaded_attach_rate:.1f}/s", "~2/s (paper)"],
            ["4-vCPU virtual AGW attach capacity",
             f"{self.virtual_attach_rate:.1f}/s", "16/s (paper)"],
            ["time for vAGW to fill the typical site",
             f"{self.typical_site_saturation_seconds:.0f}s", "18s (paper)"],
            ["CPU share forwarding 432 Mbps (bare metal)",
             f"{self.forwarding_432_cpu_fraction * 100:.0f}%", "<100%"],
        ]

    def render(self) -> str:
        return "Calibration anchors\n" + format_table(
            ["operating point", "model", "paper"], self.rows())


def measured_attach_capacity(hardware, background_mbps: float = 0.0,
                             seed: int = 0) -> float:
    """Measure sustainable attach throughput by overloading the AGW."""
    offered_rate = 2.0 * hardware.attach_capacity_per_sec()
    num_ues = int(offered_rate * 30)
    num_enbs = 6
    site = build_emulated_site(
        num_enbs=num_enbs, num_ues=num_ues + num_enbs * 4,
        config=AgwConfig(hardware=hardware),
        cell_config=CellConfig(max_active_ues=2000, capacity_mbps=5_000.0,
                               per_ue_peak_mbps=500.0),
        seed=seed)
    if background_mbps > 0:
        background = site.ues[num_ues:]
        warmup = AttachStorm(site.sim, background, rate_per_sec=2.0,
                             offered_mbps_after_attach=background_mbps)
        warmup.start()
        site.sim.run_until_triggered(warmup.done, limit=site.sim.now + 600)
        from ..workloads import TrafficEngine
        engine = TrafficEngine(site.sim, site.agw, site.enbs,
                               record_usage=False)
        engine.start()
        site.sim.run(until=site.sim.now + 5.0)
    storm = AttachStorm(site.sim, site.ues[:num_ues],
                        rate_per_sec=offered_rate)
    start = site.sim.now
    storm.start()
    site.sim.run_until_triggered(storm.done, limit=site.sim.now + 900.0)
    successes = [r for r in storm.records if r.success]
    if not successes:
        return 0.0
    span = max(r.finished_at for r in successes) - start
    return len(successes) / span if span > 0 else 0.0


def run_calibration(seed: int = 0) -> CalibrationResult:
    bare_pure = measured_attach_capacity(BARE_METAL, seed=seed)
    bare_loaded = measured_attach_capacity(BARE_METAL,
                                           background_mbps=200.0, seed=seed)
    virtual = measured_attach_capacity(VIRTUAL_4VCPU, seed=seed)
    saturation = 288.0 / virtual if virtual > 0 else float("inf")
    forwarding_fraction = (432.0 * BARE_METAL.up_cost_per_mbps /
                           BARE_METAL.cores)
    return CalibrationResult(
        bare_metal_pure_attach_rate=bare_pure,
        bare_metal_loaded_attach_rate=bare_loaded,
        virtual_attach_rate=virtual,
        typical_site_saturation_seconds=saturation,
        forwarding_432_cpu_fraction=forwarding_fraction)
