"""Ablation: MME overload protection vs congestion collapse.

The paper observes that per-AGW control-plane performance is limited and
that CSR "falls linearly" past the knee (Fig. 6).  Getting a *linear* fall
rather than a collapse requires the MME to shed load: without admission
control, every over-capacity attach still consumes CPU through its doomed
stages, stealing service from attaches that could have succeeded - goodput
collapses far below capacity.  Magma's MME applies exactly this kind of
congestion control.

This ablation offers the same over-capacity attach storm to AGWs with and
without admission control and compares delivered CSR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.agw import AgwConfig, BARE_METAL
from ..lte import CellConfig
from ..workloads import AttachStorm
from .common import build_emulated_site, format_table


@dataclass
class OverloadPoint:
    rate: float
    csr_with_protection: float
    csr_without_protection: float


@dataclass
class OverloadResult:
    points: List[OverloadPoint]
    capacity_per_sec: float

    def rows(self) -> List[List[object]]:
        return [[p.rate, f"{p.csr_with_protection * 100:.1f}",
                 f"{p.csr_without_protection * 100:.1f}"]
                for p in self.points]

    def render(self) -> str:
        header = (f"Overload-protection ablation (bare-metal AGW, pure "
                  f"attach capacity {self.capacity_per_sec:.0f}/s)\n")
        return header + format_table(
            ["attach_rate", "csr_with_shedding_pct", "csr_without_pct"],
            self.rows())


def _run_storm(rate: float, protected: bool, duration: float,
               seed: int) -> float:
    max_pending = 25 if protected else 1_000_000
    num_ues = max(20, int(rate * duration))
    site = build_emulated_site(
        num_enbs=4, num_ues=num_ues,
        config=AgwConfig(hardware=BARE_METAL, mme_max_pending=max_pending),
        cell_config=CellConfig(max_active_ues=500, capacity_mbps=5_000.0),
        seed=seed)
    storm = AttachStorm(site.sim, site.ues, rate_per_sec=rate)
    storm.start()
    site.sim.run_until_triggered(storm.done, limit=site.sim.now + 1_800.0)
    return storm.overall_csr()


def run_overload_ablation(rates: Tuple[float, ...] = (6.0, 8.0, 12.0),
                          duration: float = 30.0,
                          seed: int = 0) -> OverloadResult:
    points = []
    for rate in rates:
        points.append(OverloadPoint(
            rate=rate,
            csr_with_protection=_run_storm(rate, True, duration, seed),
            csr_without_protection=_run_storm(rate, False, duration, seed)))
    return OverloadResult(points=points,
                          capacity_per_sec=BARE_METAL.attach_capacity_per_sec())
