"""Ablation: headless operation during an orchestrator partition (§3.2).

During a partition, an AGW keeps establishing sessions from cached
subscriber profiles (local runtime operations proceed), while network-wide
actions - provisioning a brand-new subscriber - queue at the orchestrator
and take effect only after the partition heals, within one check-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.agw import AccessGateway, AgwConfig, SubscriberProfile
from ..core.orchestrator import Orchestrator
from ..lte import Enodeb, Ue, make_imsi
from ..net import Network, backhaul
from ..sim import RngRegistry, Simulator
from .common import format_table, subscriber_keys


@dataclass
class HeadlessResult:
    partition_seconds: float
    attaches_during_partition: int
    attach_successes_during_partition: int
    new_subscriber_rejected_during_partition: bool
    provisioning_latency_after_heal: float
    checkin_interval: float

    def rows(self) -> List[List[object]]:
        return [
            ["cached-subscriber attaches during partition",
             f"{self.attach_successes_during_partition}"
             f"/{self.attaches_during_partition}"],
            ["new subscriber usable during partition",
             "no" if self.new_subscriber_rejected_during_partition
             else "yes"],
            ["provisioning latency after heal",
             f"{self.provisioning_latency_after_heal:.1f}s "
             f"(check-in interval {self.checkin_interval:.0f}s)"],
        ]

    def render(self) -> str:
        return (f"Headless-operation ablation "
                f"({self.partition_seconds:.0f}s partition)\n"
                + format_table(["behaviour", "result"], self.rows()))


def run_headless_ablation(partition_seconds: float = 120.0,
                          num_cached_ues: int = 5,
                          checkin_interval: float = 10.0,
                          seed: int = 0) -> HeadlessResult:
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    orc = Orchestrator(sim, network, "orc")
    network.connect("agw-1", "orc", backhaul.microwave())
    agw = AccessGateway(sim, network, "agw-1",
                        config=AgwConfig(checkin_interval=checkin_interval),
                        orchestrator_node="orc", rng=rng)
    network.connect("enb-1", "agw-1", backhaul.lan())
    enb = Enodeb(sim, network, "enb-1", "agw-1")
    ues: List[Ue] = []
    for i in range(num_cached_ues):
        imsi = make_imsi(i + 1)
        k, opc = subscriber_keys(i + 1)
        orc.add_subscriber(SubscriberProfile(imsi=imsi, k=k, opc=opc))
        ues.append(Ue(sim, imsi, k, opc, enb))
    agw.start()
    enb.s1_setup()
    # Sync the cache, then partition.
    sim.run(until=2 * checkin_interval + 5.0)
    if len(agw.subscriberdb) != num_cached_ues:
        raise RuntimeError("initial config sync failed")
    network.set_node_up("orc", False)
    partition_start = sim.now

    successes = 0
    for ue in ues:
        done = ue.attach()
        outcome = sim.run_until_triggered(done, limit=sim.now + 60.0)
        if outcome.success:
            successes += 1
    # Provision a new subscriber mid-partition.
    new_imsi = make_imsi(500)
    k, opc = subscriber_keys(500)
    orc.add_subscriber(SubscriberProfile(imsi=new_imsi, k=k, opc=opc))
    new_ue = Ue(sim, new_imsi, k, opc, enb)
    done = new_ue.attach()
    outcome = sim.run_until_triggered(done, limit=sim.now + 60.0)
    new_rejected = not outcome.success
    # Heal after the configured partition length.
    sim.run(until=partition_start + partition_seconds)
    network.set_node_up("orc", True)
    heal_time = sim.now
    # Wait until the new subscriber syncs, then measure the latency.
    while agw.subscriberdb.get(new_imsi) is None:
        if sim.now - heal_time > 10 * checkin_interval:
            raise RuntimeError("config never converged after heal")
        sim.run(until=sim.now + 1.0)
    provisioning_latency = sim.now - heal_time
    done = new_ue.attach()
    outcome = sim.run_until_triggered(done, limit=sim.now + 60.0)
    if not outcome.success:
        raise RuntimeError("post-heal attach failed")
    return HeadlessResult(
        partition_seconds=partition_seconds,
        attaches_during_partition=num_cached_ues,
        attach_successes_during_partition=successes,
        new_subscriber_rejected_during_partition=new_rejected,
        provisioning_latency_after_heal=provisioning_latency,
        checkin_interval=checkin_interval)
