"""Command-line experiment runner.

Regenerate any of the paper's tables/figures (or ablations) directly::

    python -m repro.experiments list
    python -m repro.experiments fig5
    python -m repro.experiments table3
    python -m repro.experiments ablation-gtp
    python -m repro.experiments all
"""

from __future__ import annotations

import sys

from . import (
    CupsConfig,
    Fig5Config,
    Fig6Config,
    run_backhaul_ablation,
    run_calibration,
    run_cups,
    run_double_spend,
    run_fault_domain_ablation,
    run_fig5,
    run_fig6,
    run_fig9,
    run_gtp_ablation,
    run_headless_ablation,
    run_idle_mode_ablation,
    run_overload_ablation,
    run_scaling,
    run_state_sync,
    run_table2,
    run_table3,
)

EXPERIMENTS = {
    "fig5": lambda: run_fig5(Fig5Config(steady_duration=60.0)),
    "fig6": lambda: run_fig6(Fig6Config(storm_duration=30.0)),
    "fig7": lambda: run_cups(CupsConfig(measure_duration=30.0)),
    "fig8": lambda: run_cups(CupsConfig(measure_duration=30.0)),
    "fig9": lambda: run_fig9(),
    "table2": run_table2,
    "table3": run_table3,
    "calibration": run_calibration,
    "scaling": lambda: run_scaling(agw_counts=(50, 200, 800, 2000, 5370)),
    "ablation-sync": lambda: run_state_sync(),
    "ablation-gtp": lambda: run_gtp_ablation(),
    "ablation-faults": lambda: run_fault_domain_ablation(),
    "ablation-headless": lambda: run_headless_ablation(),
    "ablation-quota": lambda: run_double_spend(),
    "ablation-overload": lambda: run_overload_ablation(),
    "ablation-backhaul": lambda: run_backhaul_ablation(),
    "ablation-idle": lambda: run_idle_mode_ablation(),
}


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0
    names = list(EXPERIMENTS) if argv[0] == "all" else argv
    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
        print(f"=== {name} " + "=" * max(1, 60 - len(name)))
        result = runner()
        render = getattr(result, "render", None)
        if render is not None:
            print(render())
        else:
            print(result)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
