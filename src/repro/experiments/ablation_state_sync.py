"""Ablation: desired-state vs CRUD synchronization (§3.4).

The paper's worked example, measured: push the same stream of
configuration changes to a replica over a lossy link using (a) CRUD deltas
and (b) periodic full-desired-state pushes, then also restart the replica
mid-stream.  CRUD silently diverges and never heals; desired-state
re-converges on the next successful push.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..baseline.crud_sync import (
    CrudReplica,
    CrudSynchronizer,
    DesiredStateSynchronizer,
)
from ..net.simnet import Link, Network
from ..sim import RngRegistry, Simulator
from .common import format_table


@dataclass
class StateSyncPoint:
    loss: float
    crud_divergence: int
    crud_divergence_after_restart: int
    desired_divergence: int
    desired_divergence_after_restart: int


@dataclass
class StateSyncResult:
    points: List[StateSyncPoint]
    num_operations: int

    def rows(self) -> List[List[object]]:
        return [[f"{p.loss * 100:.0f}%", p.crud_divergence,
                 p.crud_divergence_after_restart, p.desired_divergence,
                 p.desired_divergence_after_restart]
                for p in self.points]

    def render(self) -> str:
        header = (f"State-sync ablation ({self.num_operations} config ops "
                  f"over a lossy link; divergent keys, lower is better)\n")
        return header + format_table(
            ["link_loss", "crud", "crud_after_restart", "desired",
             "desired_after_restart"], self.rows())


def run_state_sync_point(loss: float, num_operations: int = 200,
                         push_interval: float = 5.0,
                         seed: int = 0) -> StateSyncPoint:
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    network.connect("sender", "crud-replica", Link(latency=0.05, loss=loss))
    network.connect("sender", "ds-replica", Link(latency=0.05, loss=loss))
    crud_replica = CrudReplica(network, "crud-replica")
    desired_replica = CrudReplica(network, "ds-replica")
    crud = CrudSynchronizer(sim, network, "sender", "crud-replica")
    desired = DesiredStateSynchronizer(sim, network, "sender", "ds-replica",
                                       interval=push_interval)
    desired.start()

    def apply_ops():
        op_rng = rng.stream("ops")
        for i in range(num_operations):
            key = f"session-{i % 50}"
            kind = op_rng.random()
            for synchronizer in (crud, desired):
                if kind < 0.6:
                    synchronizer.create(key, {"version": i})
                elif kind < 0.8:
                    synchronizer.update(key, {"version": i})
                else:
                    synchronizer.delete(key)
            yield sim.timeout(0.5)

    proc = sim.spawn(apply_ops(), name="ops")
    sim.run_until_triggered(proc, limit=10_000.0)
    sim.run(until=sim.now + 3 * push_interval)  # settle
    point = StateSyncPoint(
        loss=loss,
        crud_divergence=crud.divergence(crud_replica),
        crud_divergence_after_restart=0,
        desired_divergence=desired.divergence(desired_replica),
        desired_divergence_after_restart=0)
    # Now restart both replicas (process crash: in-memory state lost).
    crud_replica.restart()
    desired_replica.restart()
    sim.run(until=sim.now + 3 * push_interval)
    point.crud_divergence_after_restart = crud.divergence(crud_replica)
    point.desired_divergence_after_restart = \
        desired.divergence(desired_replica)
    desired.stop()
    return point


def run_state_sync(losses=(0.0, 0.01, 0.05, 0.20),
                   num_operations: int = 200,
                   seed: int = 0) -> StateSyncResult:
    points = [run_state_sync_point(loss, num_operations, seed=seed)
              for loss in losses]
    return StateSyncResult(points=points, num_operations=num_operations)
