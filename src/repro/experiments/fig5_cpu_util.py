"""Figure 5: AGW CPU utilization under the maximum "typical" workload.

The paper's workload (§4.1): 288 UEs attach at 3 UE/s to a 3-eNodeB cell
site on a bare-metal 4-core AGW; each UE then streams HTTP at 1.5 Mbps for
an aggregate offered load of 432 Mbps.  Expected result: all attaches are
accepted over ~1.5 minutes (the control-plane-dominated phase), after
which throughput holds at the full offered load - *the RAN, not the AGW,
is the bottleneck* - with AGW CPU comfortably below saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.agw import AgwConfig, BARE_METAL
from ..lte import CellConfig, UeConfig
from ..workloads import AttachStorm, TrafficEngine
from .common import build_emulated_site, format_table


@dataclass
class Fig5Config:
    num_ues: int = 288
    num_enbs: int = 3
    attach_rate: float = 3.0
    per_ue_mbps: float = 1.5
    steady_duration: float = 120.0   # seconds of steady state to observe
    bin_width: float = 5.0
    seed: int = 0


@dataclass
class Fig5Result:
    cpu_series: List[Tuple[float, float]]          # (t, utilization 0..1)
    throughput_series: List[Tuple[float, float]]   # (t, Mbps)
    attach_phase_end: float
    attach_csr: float
    ue_success_fraction: float
    offered_mbps: float
    steady_state_mbps: float
    steady_state_cpu: float
    peak_cpu: float

    def rows(self) -> List[List[object]]:
        return [[f"{t:.0f}", f"{cpu * 100:.1f}", f"{mbps:.1f}"]
                for (t, cpu), (_t2, mbps)
                in zip(self.cpu_series, self.throughput_series)]

    def render(self) -> str:
        header = (f"Figure 5 - AGW CPU and throughput "
                  f"(offered {self.offered_mbps:.0f} Mbps)\n"
                  f"attach phase ends ~{self.attach_phase_end:.0f}s, "
                  f"all UEs attached: "
                  f"{self.ue_success_fraction * 100:.0f}%, "
                  f"per-attempt CSR {self.attach_csr * 100:.1f}%, "
                  f"steady state {self.steady_state_mbps:.0f} Mbps "
                  f"at {self.steady_state_cpu * 100:.0f}% CPU\n")
        return header + format_table(
            ["time_s", "cpu_pct", "throughput_mbps"], self.rows())


def run_fig5(config: Fig5Config = None) -> Fig5Result:
    config = config or Fig5Config()
    site = build_emulated_site(
        num_enbs=config.num_enbs, num_ues=config.num_ues,
        config=AgwConfig(hardware=BARE_METAL),
        cell_config=CellConfig(max_active_ues=96, capacity_mbps=150.0),
        ue_config=UeConfig(),
        seed=config.seed)
    storm = AttachStorm(site.sim, site.ues,
                        rate_per_sec=config.attach_rate,
                        offered_mbps_after_attach=config.per_ue_mbps,
                        monitor=site.monitor,
                        retries=2)  # real UEs retry (T3411)
    engine = TrafficEngine(site.sim, site.agw, site.enbs,
                           monitor=site.monitor)
    start = site.sim.now
    storm.start()
    engine.start()
    attach_phase = config.num_ues / config.attach_rate
    site.sim.run(until=start + attach_phase + config.steady_duration)
    engine.stop()

    cpu = site.monitor.series(f"cpu.agw-1.util")
    tput = site.monitor.series("traffic.agw-1.achieved_mbps")
    cpu_bins = cpu.binned(config.bin_width, t0=start, agg="mean")
    tput_bins = tput.binned(config.bin_width, t0=start, agg="mean")
    steady_t0 = start + attach_phase + min(20.0, config.steady_duration / 2)
    steady_cpu = cpu.between(steady_t0, site.sim.now).mean()
    steady_tput = tput.between(steady_t0, site.sim.now).mean()
    offered = config.num_ues * config.per_ue_mbps
    finished = [r.finished_at for r in storm.records]
    return Fig5Result(
        cpu_series=[(t - start, v) for t, v in cpu_bins],
        throughput_series=[(t - start, v) for t, v in tput_bins],
        attach_phase_end=(max(finished) - start) if finished else 0.0,
        attach_csr=storm.overall_csr(),
        ue_success_fraction=storm.ue_success_fraction(),
        offered_mbps=offered,
        steady_state_mbps=steady_tput,
        steady_state_cpu=steady_cpu,
        peak_cpu=max(v for _t, v in cpu_bins if v == v),  # skip NaN bins
    )
