"""Ablation: the OCS quota double-spend bound (§3.4).

A strategic user moves between AGWs without reporting usage, trying to
consume data that is never charged.  The paper's claim: the maximum
double-spend is *capped by the quota size* - "a business decision".  We
sweep quota sizes, have a malicious user hop across AGWs consuming each
grant fully without final reports, and measure the unbilled bytes; the
bound holds at quota_size x concurrent-open-grants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.policy import OnlineChargingSystem
from .common import format_table


@dataclass
class DoubleSpendPoint:
    quota_bytes: int
    agw_hops: int
    consumed_bytes: int
    charged_bytes: int
    unbilled_bytes: int
    bound_bytes: int

    @property
    def bound_holds(self) -> bool:
        return self.unbilled_bytes <= self.bound_bytes


@dataclass
class DoubleSpendResult:
    points: List[DoubleSpendPoint]

    def rows(self) -> List[List[object]]:
        return [[p.quota_bytes, p.agw_hops, p.consumed_bytes,
                 p.charged_bytes, p.unbilled_bytes, p.bound_bytes,
                 "yes" if p.bound_holds else "NO"]
                for p in self.points]

    def render(self) -> str:
        return ("Double-spend ablation: unbilled bytes vs quota size\n"
                + format_table(
                    ["quota_bytes", "agw_hops", "consumed", "charged",
                     "unbilled", "bound", "bound_holds"], self.rows()))


def run_double_spend_point(quota_bytes: int, agw_hops: int = 4,
                           balance_multiplier: int = 20,
                           reservation_ttl: float = 300.0) -> DoubleSpendPoint:
    clock = {"now": 0.0}
    ocs = OnlineChargingSystem(quota_bytes=quota_bytes,
                               reservation_ttl=reservation_ttl,
                               clock=lambda: clock["now"])
    imsi = "001010000000666"
    balance = quota_bytes * balance_multiplier
    ocs.provision(imsi, balance_bytes=balance)
    consumed = 0
    # The malicious pattern: at each AGW, obtain a grant, consume it fully,
    # then "move" without a final usage report.  The abandoned reservation
    # eventually expires and is released uncharged.
    for hop in range(agw_hops):
        grant = ocs.request_quota(imsi, f"agw-{hop}")
        if grant is None:
            break
        consumed += grant.granted_bytes
        # No report_usage: the user walks away mid-grant.
        clock["now"] += reservation_ttl + 1.0  # time passes between hops
    # Trigger expiry housekeeping.
    ocs.request_quota(imsi, "agw-final")
    account = ocs.account(imsi)
    unbilled = consumed - account.charged_bytes
    return DoubleSpendPoint(
        quota_bytes=quota_bytes, agw_hops=agw_hops,
        consumed_bytes=consumed, charged_bytes=account.charged_bytes,
        unbilled_bytes=unbilled,
        # The §3.4 bound: at most one open (unexpired) grant per hop can go
        # unbilled; with serial hops that is quota_size per hop.
        bound_bytes=quota_bytes * agw_hops)


def run_double_spend(quota_sizes=(100_000, 1_000_000, 10_000_000),
                     agw_hops: int = 4) -> DoubleSpendResult:
    points = [run_double_spend_point(q, agw_hops) for q in quota_sizes]
    return DoubleSpendResult(points=points)
