"""Figure 6: maximum supported attach rates on the bare-metal AGW.

The paper's "worst case" control-plane workload: a surge of new UEs
attaching while already-attached UEs *saturate the data plane*.  The
connection success rate (CSR - successful attempts over total attempts, in
5-second bins) stays at ~100% up to 2 UE/s on the bare-metal AGW, then
falls roughly linearly: the MME component is the limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.agw import AgwConfig, BARE_METAL
from ..lte import CellConfig, UeConfig
from ..workloads import AttachStorm, TrafficEngine
from .common import build_emulated_site, format_table

DEFAULT_RATES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0)


@dataclass
class Fig6Config:
    rates: Tuple[float, ...] = DEFAULT_RATES
    num_enbs: int = 6
    background_ues_per_enb: int = 6
    background_mbps: float = 150.0   # per background UE: saturate each cell
    storm_duration: float = 45.0     # seconds of attach attempts per rate
    min_storm_ues: int = 20
    seed: int = 0


@dataclass
class Fig6Point:
    rate: float
    csr: float
    attempts: int
    successes: int
    median_bin_csr: float


@dataclass
class Fig6Result:
    points: List[Fig6Point]
    knee_rate: float    # last rate with CSR >= 99%

    def rows(self) -> List[List[object]]:
        return [[p.rate, f"{p.csr * 100:.1f}", p.attempts, p.successes]
                for p in self.points]

    def render(self) -> str:
        header = (f"Figure 6 - CSR vs attach rate (bare-metal AGW, "
                  f"saturated data plane); knee at ~{self.knee_rate} UE/s\n")
        return header + format_table(
            ["attach_rate_ue_s", "csr_pct", "attempts", "successes"],
            self.rows())


def run_fig6_point(rate: float, config: Fig6Config) -> Fig6Point:
    """One trial: saturate the data plane, then storm at ``rate``."""
    num_background = config.num_enbs * config.background_ues_per_enb
    num_storm = max(config.min_storm_ues,
                    int(rate * config.storm_duration))
    site = build_emulated_site(
        num_enbs=config.num_enbs, num_ues=num_background + num_storm,
        config=AgwConfig(hardware=BARE_METAL),
        cell_config=CellConfig(max_active_ues=96, capacity_mbps=150.0,
                               per_ue_peak_mbps=150.0),
        ue_config=UeConfig(),
        seed=config.seed)
    background = site.ues[:num_background]
    storm_ues = site.ues[num_background:]
    # Phase 1: background UEs attach (idle AGW: fast) and begin saturating.
    warmup = AttachStorm(site.sim, background, rate_per_sec=2.0,
                         offered_mbps_after_attach=config.background_mbps)
    warmup.start()
    site.sim.run_until_triggered(warmup.done, limit=site.sim.now + 600.0)
    if warmup.overall_csr() < 1.0:
        raise RuntimeError("background warmup failed to attach cleanly")
    engine = TrafficEngine(site.sim, site.agw, site.enbs,
                           monitor=site.monitor, record_usage=False)
    engine.start()
    site.sim.run(until=site.sim.now + 5.0)  # let the user plane saturate
    # Phase 2: the measured attach storm.
    storm = AttachStorm(site.sim, storm_ues, rate_per_sec=rate,
                        monitor=site.monitor)
    storm.start()
    site.sim.run_until_triggered(storm.done, limit=site.sim.now + 900.0)
    engine.stop()
    return Fig6Point(rate=rate, csr=storm.overall_csr(),
                     attempts=len(storm.records),
                     successes=storm.success_count(),
                     median_bin_csr=storm.median_csr())


def run_fig6(config: Fig6Config = None) -> Fig6Result:
    config = config or Fig6Config()
    points = [run_fig6_point(rate, config) for rate in config.rates]
    knee = max((p.rate for p in points if p.csr >= 0.99), default=0.0)
    return Fig6Result(points=points, knee_rate=knee)
