"""Experiments: one module per paper figure/table, plus ablations.

See DESIGN.md's per-experiment index for the mapping to the paper.
"""

from .ablation_backhaul import run_backhaul_ablation
from .ablation_double_spend import run_double_spend
from .ablation_overload import run_overload_ablation
from .ablation_fault_domains import run_fault_domain_ablation
from .ablation_gtp import run_gtp_ablation
from .ablation_idle_mode import run_idle_mode_ablation
from .ablation_headless import run_headless_ablation
from .ablation_state_sync import run_state_sync
from .calibration import run_calibration
from .common import EmulatedSite, build_emulated_site, format_table
from .cups import CupsConfig, run_cups, run_cups_point
from .fig5_cpu_util import Fig5Config, run_fig5
from .fig6_attach_rate import Fig6Config, run_fig6, run_fig6_point
from .fig9_accessparks import run_fig9
from .scaling import run_scaling, run_scaling_point
from .tables import run_table2, run_table3

__all__ = [
    "CupsConfig",
    "EmulatedSite",
    "Fig5Config",
    "Fig6Config",
    "build_emulated_site",
    "format_table",
    "run_backhaul_ablation",
    "run_calibration",
    "run_cups",
    "run_cups_point",
    "run_double_spend",
    "run_fault_domain_ablation",
    "run_fig5",
    "run_fig6",
    "run_fig6_point",
    "run_fig9",
    "run_gtp_ablation",
    "run_headless_ablation",
    "run_idle_mode_ablation",
    "run_overload_ablation",
    "run_scaling",
    "run_scaling_point",
    "run_state_sync",
    "run_table2",
    "run_table3",
]
