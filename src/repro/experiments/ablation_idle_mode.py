"""Ablation: idle-mode signalling vs attach/detach churn for IoT (§4.2).

The paper motivates CUPS with the IoT workload: "large numbers of devices
that only exchange occasional small messages" stress the control plane.
How *hard* they stress it depends on the signalling pattern: a device that
detaches after every report pays the full attach (authentication crypto,
session setup) each cycle, while a device that goes ECM-IDLE pays a cheap
service request.  This ablation runs the same report schedule both ways on
the bare-metal AGW and compares control-plane cost and delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.agw import AgwConfig, BARE_METAL
from ..lte import CellConfig
from ..workloads import IotWorkload
from .common import build_emulated_site, format_table


@dataclass
class IdleModePoint:
    mode: str
    devices: int
    cycles: int
    success_rate: float
    full_attaches: int
    cp_core_seconds: float     # control-plane CPU consumed


@dataclass
class IdleModeResult:
    points: List[IdleModePoint]
    duration: float

    def rows(self) -> List[List[object]]:
        return [[p.mode, p.devices, p.cycles,
                 f"{p.success_rate * 100:.0f}", p.full_attaches,
                 f"{p.cp_core_seconds:.1f}"]
                for p in self.points]

    def render(self) -> str:
        header = (f"IoT signalling ablation ({self.duration:.0f}s of "
                  f"report cycles; lower CPU is better)\n")
        return header + format_table(
            ["mode", "devices", "cycles", "success_pct", "full_attaches",
             "cp_core_seconds"], self.rows())

    def point(self, mode: str) -> IdleModePoint:
        for p in self.points:
            if p.mode == mode:
                return p
        raise KeyError(mode)


def _run_mode(mode: str, devices: int, report_interval: float,
              duration: float, seed: int) -> IdleModePoint:
    site = build_emulated_site(
        num_enbs=2, num_ues=devices,
        config=AgwConfig(hardware=BARE_METAL),
        cell_config=CellConfig(max_active_ues=500),
        seed=seed)
    iot = IotWorkload(site.sim, site.ues, report_interval=report_interval,
                      sessiond=site.agw.sessiond, rng=site.rng, mode=mode)
    iot.start()
    site.sim.run(until=site.sim.now + duration)
    iot.stop()
    util = site.monitor.series("cpu.agw-1.util.cp")
    # Integrate CP utilization over the run (quantum-weighted).
    quantum = site.agw.context.config.hardware.quantum
    cp_core_seconds = sum(util.values) * quantum * BARE_METAL.cores
    return IdleModePoint(
        mode=mode, devices=devices, cycles=iot.stats.attaches,
        success_rate=iot.success_rate(),
        full_attaches=site.agw.mme.stats["attach_requests"],
        cp_core_seconds=cp_core_seconds)


def run_idle_mode_ablation(devices: int = 30,
                           report_interval: float = 30.0,
                           duration: float = 240.0,
                           seed: int = 0) -> IdleModeResult:
    points = [
        _run_mode(IotWorkload.MODE_DETACH, devices, report_interval,
                  duration, seed),
        _run_mode(IotWorkload.MODE_IDLE, devices, report_interval,
                  duration, seed),
    ]
    return IdleModeResult(points=points, duration=duration)
