"""§4.3.2: orchestrator control-plane scaling (the FreedomFi deployment).

The largest Magma network ran 5,370 AGWs and 880 eNodeBs against a single
six-VM orchestrator (~$4,000/month).  Even without user traffic, the
orchestrator carries device check-ins, configuration pushes, and metrics
ingest.  This experiment sweeps the gateway count and measures orchestrator
CPU utilization and config-convergence behaviour, reproducing the claim
that *the central control plane's load grows slowly with network size*
because runtime state never leaves the AGWs (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.orchestrator import Orchestrator, OrchestratorConfig
from ..net.rpc import RpcChannel, RpcError
from ..net.simnet import Link, Network
from ..sim import Monitor, RngRegistry, Simulator
from .common import format_table

FREEDOMFI_AGWS = 5_370


class AgwStub:
    """A lightweight check-in client standing in for a full AGW.

    The scaling question is about orchestrator-side load, so the gateway
    side only needs to produce the same message pattern a real ``magmad``
    does: periodic check-ins carrying status and a metrics bundle, pulling
    config when stale.
    """

    def __init__(self, sim: Simulator, network: Network, node: str,
                 orc_node: str, interval: float, offset: float):
        self.sim = sim
        self.node = node
        self.interval = interval
        self.config_version = 0
        self.checkins_ok = 0
        self.checkins_failed = 0
        network.add_node(node)
        self._channel = RpcChannel(sim, network, node, orc_node)
        sim.schedule(offset, self._start)

    def _start(self) -> None:
        self.sim.spawn(self._loop(), name=f"stub:{self.node}")

    def _loop(self):
        while True:
            request = {
                "gateway_id": self.node,
                "config_version": self.config_version,
                "status": {"sessions": 0},
                "metrics": {"attach_requests": 0.0, "attach_accepted": 0.0,
                            "sessions_active": 0.0, "cpu_util": 0.05},
            }
            try:
                response = yield self._channel.call("statesync", "checkin",
                                                    request, deadline=10.0)
                self.checkins_ok += 1
                self.config_version = response["config_version"]
            except RpcError:
                self.checkins_failed += 1
            yield self.sim.timeout(self.interval)


@dataclass
class ScalingPoint:
    num_agws: int
    checkin_rate: float              # check-ins/s arriving
    orchestrator_cpu_util: float     # mean utilization during steady state
    checkin_success_fraction: float
    convergence_fraction: float      # gateways on latest config at the end


@dataclass
class ScalingResult:
    points: List[ScalingPoint]
    orchestrator_cores: float

    def rows(self) -> List[List[object]]:
        return [[p.num_agws, f"{p.checkin_rate:.1f}",
                 f"{p.orchestrator_cpu_util * 100:.2f}",
                 f"{p.checkin_success_fraction * 100:.1f}",
                 f"{p.convergence_fraction * 100:.1f}"]
                for p in self.points]

    def render(self) -> str:
        header = (f"Orchestrator scaling (cluster of "
                  f"{self.orchestrator_cores:.0f} cores)\n")
        return header + format_table(
            ["agws", "checkins_per_s", "orc_cpu_pct", "checkin_ok_pct",
             "converged_pct"], self.rows())


def run_scaling_point(num_agws: int, checkin_interval: float = 60.0,
                      duration: float = 180.0, seed: int = 0,
                      provision_burst: int = 20) -> ScalingPoint:
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    monitor = Monitor()
    orc = Orchestrator(sim, network, "orc", monitor=monitor)
    offsets = rng.stream("checkin.offsets")
    stubs = []
    for i in range(num_agws):
        node = f"agw-{i}"
        network.connect(node, "orc", Link(latency=0.02))
        stubs.append(AgwStub(sim, network, node, "orc",
                             interval=checkin_interval,
                             offset=offsets.uniform(0, checkin_interval)))
    # A provisioning burst partway through: every gateway must converge.
    def provision():
        from ..core.agw import SubscriberProfile
        from ..lte import make_imsi
        for i in range(provision_burst):
            orc.add_subscriber(SubscriberProfile(imsi=make_imsi(i + 1)))

    sim.schedule(duration / 3, provision)
    sim.run(until=duration)
    cpu = monitor.series("cpu.orc.util")
    steady = cpu.between(checkin_interval, duration)
    util = steady.mean() if len(steady) else 0.0
    ok = sum(s.checkins_ok for s in stubs)
    failed = sum(s.checkins_failed for s in stubs)
    converged = sum(1 for s in stubs
                    if s.config_version == orc.store.version)
    return ScalingPoint(
        num_agws=num_agws,
        checkin_rate=num_agws / checkin_interval,
        orchestrator_cpu_util=util,
        checkin_success_fraction=ok / max(1, ok + failed),
        convergence_fraction=converged / max(1, num_agws))


def run_scaling(agw_counts=(50, 200, 800, 2000, FREEDOMFI_AGWS),
                checkin_interval: float = 60.0, duration: float = 180.0,
                seed: int = 0) -> ScalingResult:
    points = [run_scaling_point(n, checkin_interval, duration, seed)
              for n in agw_counts]
    return ScalingResult(points=points,
                         orchestrator_cores=OrchestratorConfig().cores)
