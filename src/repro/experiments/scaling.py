"""§4.3.2: orchestrator control-plane scaling (the FreedomFi deployment).

The largest Magma network ran 5,370 AGWs and 880 eNodeBs against a single
six-VM orchestrator (~$4,000/month).  Even without user traffic, the
orchestrator carries device check-ins, configuration pushes, and metrics
ingest.  This experiment sweeps the gateway count and measures orchestrator
CPU utilization and config-convergence behaviour, reproducing the claim
that *the central control plane's load grows slowly with network size*
because runtime state never leaves the AGWs (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.orchestrator import Orchestrator, OrchestratorConfig
from ..net.rpc import RpcChannel, RpcError
from ..net.simnet import Link, Network
from ..sim import Monitor, RngRegistry, Simulator
from ..workloads.fleet import CohortSpec, UeFleet
from .common import format_table

FREEDOMFI_AGWS = 5_370

# Stub AGWs model the virtual profile (§4.2): 16 attaches/s on 4 vCPUs.
STUB_CORES = 4.0
STUB_ATTACH_CAPACITY_PER_SEC = 16.0
STUB_ATTACH_CPU_COST = 0.25          # core-seconds per attach
STUB_UP_COST_PER_MBPS = 0.002        # core-seconds/s per Mbps forwarded
STUB_BASE_CPU_UTIL = 0.05            # magmad/housekeeping floor


class AgwStub:
    """A lightweight check-in client standing in for a full AGW.

    The scaling question is about orchestrator-side load, so the gateway
    side only needs to produce the same message pattern a real ``magmad``
    does: periodic check-ins carrying status and a metrics bundle, pulling
    config when stale.  Each stub also implements the fleet-host protocol
    (``fleet_attach`` / ``fleet_detach`` / ``fleet_set_load``) so a
    :class:`~repro.workloads.fleet.UeFleet` can load it with a realistic
    subscriber population — check-ins then report *real* session counts,
    attach rates, and a CPU figure derived from the carried load, instead
    of the zeroed placeholders an empty stub would send.
    """

    def __init__(self, sim: Simulator, network: Network, node: str,
                 orc_node: str, interval: float, offset: float):
        self.sim = sim
        self.node = node
        self.interval = interval
        self.config_version = 0
        self.checkins_ok = 0
        self.checkins_failed = 0
        # Fleet-host state: the subscriber load this gateway carries.
        self.sessions = 0
        self.attach_requests = 0
        self.attach_accepted = 0
        self.offered_mbps = 0.0
        self._attach_credit = 0.0
        self._attach_rate = 0.0      # accepted/s over the last fleet tick
        self._last_requests = 0
        self._last_accepted = 0
        network.add_node(node)
        self._channel = RpcChannel(sim, network, node, orc_node)
        sim.call_later(offset, self._start)

    # -- fleet-host protocol ---------------------------------------------------

    def fleet_attach(self, n: int, dt: float) -> int:
        """Admit up to the stub's calibrated attach capacity per tick."""
        self.attach_requests += n
        per_tick = STUB_ATTACH_CAPACITY_PER_SEC * dt
        credit = min(self._attach_credit + per_tick, per_tick)
        accepted = min(n, int(credit))
        self._attach_credit = credit - accepted
        self.attach_accepted += accepted
        self.sessions += accepted
        self._attach_rate = accepted / dt
        return accepted

    def fleet_detach(self, n: int) -> int:
        ended = min(n, self.sessions)
        self.sessions -= ended
        return ended

    def fleet_set_load(self, offered_mbps: float) -> None:
        self.offered_mbps = offered_mbps

    def cpu_util(self) -> float:
        """CPU share implied by the carried load (virtual profile)."""
        busy = (self._attach_rate * STUB_ATTACH_CPU_COST
                + self.offered_mbps * STUB_UP_COST_PER_MBPS)
        return min(1.0, STUB_BASE_CPU_UTIL + busy / STUB_CORES)

    # -- check-in loop ---------------------------------------------------------

    def _start(self) -> None:
        self.sim.spawn(self._loop(), name=f"stub:{self.node}")

    def _loop(self):
        while True:
            dt = self.interval
            request = {
                "gateway_id": self.node,
                "config_version": self.config_version,
                "status": {"sessions": self.sessions},
                "metrics": {
                    "attach_requests":
                        (self.attach_requests - self._last_requests) / dt,
                    "attach_accepted":
                        (self.attach_accepted - self._last_accepted) / dt,
                    "sessions_active": float(self.sessions),
                    "cpu_util": self.cpu_util(),
                },
            }
            self._last_requests = self.attach_requests
            self._last_accepted = self.attach_accepted
            try:
                response = yield self._channel.call("statesync", "checkin",
                                                    request, deadline=10.0)
                self.checkins_ok += 1
                self.config_version = response["config_version"]
            except RpcError:
                self.checkins_failed += 1
            yield self.sim.timeout(self.interval)


@dataclass
class ScalingPoint:
    num_agws: int
    checkin_rate: float              # check-ins/s arriving
    orchestrator_cpu_util: float     # mean utilization during steady state
    checkin_success_fraction: float
    convergence_fraction: float      # gateways on latest config at the end
    subscribers: int = 0             # fleet population across all AGWs
    sessions: int = 0                # attached subscribers at the end


@dataclass
class ScalingResult:
    points: List[ScalingPoint]
    orchestrator_cores: float

    def rows(self) -> List[List[object]]:
        return [[p.num_agws, p.subscribers, p.sessions,
                 f"{p.checkin_rate:.1f}",
                 f"{p.orchestrator_cpu_util * 100:.2f}",
                 f"{p.checkin_success_fraction * 100:.1f}",
                 f"{p.convergence_fraction * 100:.1f}"]
                for p in self.points]

    def render(self) -> str:
        header = (f"Orchestrator scaling (cluster of "
                  f"{self.orchestrator_cores:.0f} cores)\n")
        return header + format_table(
            ["agws", "subs", "sessions", "checkins_per_s", "orc_cpu_pct",
             "checkin_ok_pct", "converged_pct"], self.rows())


def run_scaling_point(num_agws: int, checkin_interval: float = 60.0,
                      duration: float = 180.0, seed: int = 0,
                      provision_burst: int = 20,
                      ues_per_agw: int = 100,
                      fleet_tick: float = 5.0,
                      num_shards: int = 0) -> ScalingPoint:
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    monitor = Monitor()
    orc = Orchestrator(sim, network, "orc", monitor=monitor,
                       num_shards=num_shards)
    offsets = rng.stream("checkin.offsets")
    stubs = []
    for i in range(num_agws):
        node = f"agw-{i}"
        # Sharded deployments hash each gateway to its owning shard's
        # node; unsharded ones keep the single "orc" endpoint.
        target = orc.shard_node_for(node)
        network.connect(node, target, Link(latency=0.02))
        stubs.append(AgwStub(sim, network, node, target,
                             interval=checkin_interval,
                             offset=offsets.uniform(0, checkin_interval)))
    # Load every gateway with a cohort-aggregated subscriber fleet so the
    # check-ins carry realistic session counts and derived CPU figures
    # (the paper's gateways are never empty; the orchestrator's load must
    # stay flat even when they aren't).
    fleet = None
    if ues_per_agw > 0:
        fleet = UeFleet(
            sim, rng, stubs,
            [CohortSpec("subs", size=num_agws * ues_per_agw,
                        attach_rate=0.01, detach_rate=0.001,
                        idle_rate=0.002, resume_rate=0.01,
                        traffic_mbps=0.02)],
            monitor=monitor, tick=fleet_tick, name="scaling")
        fleet.start()
    # A provisioning burst partway through: every gateway must converge.
    def provision():
        from ..core.agw import SubscriberProfile
        from ..lte import make_imsi
        for i in range(provision_burst):
            orc.add_subscriber(SubscriberProfile(imsi=make_imsi(i + 1)))

    sim.call_later(duration / 3, provision)
    sim.run(until=duration)
    if num_shards > 0:
        # The hottest shard governs capacity in a sharded control plane.
        utils = []
        for shard in orc.shards:
            steady = monitor.series(f"cpu.{shard.node}.util").between(
                checkin_interval, duration)
            utils.append(steady.mean() if len(steady) else 0.0)
        util = max(utils)
    else:
        cpu = monitor.series("cpu.orc.util")
        steady = cpu.between(checkin_interval, duration)
        util = steady.mean() if len(steady) else 0.0
    ok = sum(s.checkins_ok for s in stubs)
    failed = sum(s.checkins_failed for s in stubs)
    converged = sum(1 for s in stubs
                    if s.config_version == orc.store.version)
    return ScalingPoint(
        num_agws=num_agws,
        checkin_rate=num_agws / checkin_interval,
        orchestrator_cpu_util=util,
        checkin_success_fraction=ok / max(1, ok + failed),
        convergence_fraction=converged / max(1, num_agws),
        subscribers=fleet.population() if fleet is not None else 0,
        sessions=fleet.attached() if fleet is not None else 0)


def run_scaling(agw_counts=(50, 200, 800, 2000, FREEDOMFI_AGWS),
                checkin_interval: float = 60.0, duration: float = 180.0,
                seed: int = 0, num_shards: int = 0) -> ScalingResult:
    points = [run_scaling_point(n, checkin_interval, duration, seed,
                                num_shards=num_shards)
              for n in agw_counts]
    return ScalingResult(points=points,
                         orchestrator_cores=OrchestratorConfig().cores)
