"""UE (user equipment) model: the LTE attach/detach state machine.

The UE drives the NAS dialogue end-to-end: attach request, EPS-AKA
challenge response, security mode, attach accept/complete.  Its guard timer
(T3410) defines what a *failed connection attempt* means for the paper's
connection success rate (CSR) metric.

The ``fragile_baseband`` flag models the low-end basebands described in
§3.1: when such a UE experiences a session-level protocol failure (e.g. its
GTP tunnel collapsing over bad backhaul in the *baseline* architecture), it
does not recover until power-cycled - the "confusing lack of coverage" the
paper describes, and the behaviour Magma's local GTP termination shields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..net.rpc import RpcError
from ..obs.tracing import tracer_of
from ..sim.kernel import Event, Simulator
from . import auth, nas
from .radio import CellCapacityError


class UeState:
    DEREGISTERED = "deregistered"
    ATTACHING = "attaching"
    REGISTERED = "registered"
    IDLE = "idle"    # ECM-IDLE: session anchored, radio context released
    STUCK = "stuck"  # fragile baseband wedged by a protocol failure


@dataclass
class UeConfig:
    attach_guard_timer: float = nas.T3410_ATTACH
    fragile_baseband: bool = False
    radio_delay: float = 0.02  # one-way UE <-> eNodeB signaling delay


class AttachOutcome:
    """Result record for one attach attempt."""

    __slots__ = ("success", "latency", "cause")

    def __init__(self, success: bool, latency: float, cause: str = ""):
        self.success = success
        self.latency = latency
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.success else f"failed({self.cause})"
        return f"<AttachOutcome {status} {self.latency:.2f}s>"


class Ue:
    """A simulated LTE UE with a USIM."""

    def __init__(self, sim: Simulator, imsi: str, k: bytes, opc: bytes,
                 enb: "Enodeb", config: Optional[UeConfig] = None):
        self.sim = sim
        self.imsi = imsi
        self.k = k
        self.opc = opc
        self.enb = enb
        self.config = config or UeConfig()
        self.state = UeState.DEREGISTERED
        self.usim_sqn = 0
        self.ip_address: Optional[str] = None
        self.bearer_id: Optional[int] = None
        self.guti: Optional[str] = None
        self.kasme: Optional[bytes] = None
        self.offered_mbps = 0.0
        self._attach_done: Optional[Event] = None
        self._attach_started_at = 0.0
        self._last_rand: Optional[bytes] = None
        self.stats = {"attach_attempts": 0, "attach_successes": 0,
                      "attach_failures": 0, "session_errors": 0,
                      "power_cycles": 0}

    # -- public API --------------------------------------------------------------

    def attach(self) -> Event:
        """Start one attach attempt.

        Returns an event that *succeeds* with an :class:`AttachOutcome`
        whether the attempt worked or not (callers inspect ``.success``);
        this keeps CSR accounting simple.
        """
        result = self.sim.event(f"ue.{self.imsi}.attach")
        if self.state == UeState.STUCK:
            result.succeed(AttachOutcome(False, 0.0, "baseband stuck"))
            return result
        if self.state != UeState.DEREGISTERED:
            result.succeed(AttachOutcome(False, 0.0,
                                         f"bad state {self.state}"))
            return result
        self.stats["attach_attempts"] += 1
        self.state = UeState.ATTACHING
        self._attach_started_at = self.sim.now
        self._attach_done = self.sim.event(f"ue.{self.imsi}.attach_inner")
        span = tracer_of(self.sim).begin("attach", component="ue",
                                         tags={"imsi": self.imsi})
        if span.recording:
            result.add_callback(lambda ev: span.end(
                "ok" if ev.ok and ev.value.success else "error"))
        self.sim.spawn(self._attach_procedure(result),
                       name=f"attach:{self.imsi}", ctx=span.context)
        return result

    def detach(self, switch_off: bool = True) -> Event:
        """Detach from the network.

        ``switch_off=True`` (default) is the power-off style: fire and
        forget.  ``switch_off=False`` is a graceful detach - the UE waits
        for the network's DetachAccept (or a short guard timer).  The
        returned event succeeds with True once the UE is deregistered.
        """
        done = self.sim.event(f"ue.{self.imsi}.detach")
        if self.state != UeState.REGISTERED:
            done.succeed(False)
            return done
        span = tracer_of(self.sim).begin("detach", component="ue",
                                         tags={"imsi": self.imsi,
                                               "switch_off": switch_off})
        if span.recording:
            span.end_on(done)
        with span.active():
            self._send_nas(nas.DetachRequest(imsi=self.imsi,
                                             switch_off=switch_off))
            if switch_off:
                self._clear_session()
                self.state = UeState.DEREGISTERED
                done.succeed(True)
                return done
            self._detach_done = done
            # Cancelable guard: if the network never answers, detach locally
            # after 5s (3GPP behaviour).  When DetachAccept wins the race the
            # timer is revoked instead of rotting for its full window — the
            # same bug class PR 6 fixed for service-request/attach guards.
            guard_timer = self.sim.schedule(5.0, self._finish_detach)
            done.add_callback(lambda ev: guard_timer.cancel())
        return done

    def _finish_detach(self) -> None:
        self._clear_session()
        self.state = UeState.DEREGISTERED
        done = getattr(self, "_detach_done", None)
        if done is not None and not done.triggered:
            done.succeed(True)

    def set_offered_rate(self, mbps: float) -> None:
        """Offered downlink traffic rate while registered."""
        if mbps < 0:
            raise ValueError("offered rate must be >= 0")
        self.offered_mbps = mbps
        if self.state == UeState.REGISTERED:
            self.enb.set_ue_offered_rate(self.imsi, mbps)

    def go_idle(self) -> None:
        """Enter ECM-IDLE: the radio context is released, the session (IP,
        policy state) stays anchored at the AGW.  The UE camps on the cell
        and can be paged."""
        if self.state != UeState.REGISTERED:
            return
        with tracer_of(self.sim).begin("go_idle", component="ue",
                                       tags={"imsi": self.imsi}):
            self.enb.release_to_idle(self)
            self.state = UeState.IDLE

    def service_request(self) -> Event:
        """Return from idle to connected (UE-originated data, or paging).

        The returned event succeeds with True once the network re-
        establishes the radio context and bearer.
        """
        result = self.sim.event(f"ue.{self.imsi}.service_request")
        if self.state != UeState.IDLE:
            result.succeed(False)
            return result
        # ``begin``: a paging-triggered SR nests under the paging trace
        # (on_paged runs with the paging span ambient); a UE-originated SR
        # starts a fresh trace.
        span = tracer_of(self.sim).begin("service_request", component="ue",
                                         tags={"imsi": self.imsi})
        if span.recording:
            result.add_callback(lambda ev: span.end(
                "ok" if ev.ok and ev.value else "error"))

        def proc(sim):
            try:
                self.enb.rrc_connect(self)
            except CellCapacityError:  # cell full or S1 down: SR fails clean
                result.succeed(False)
                return
            self._sr_done = self.sim.event("sr-inner")
            self._send_nas(nas.ServiceRequest(imsi=self.imsi))
            # Cancelable guard: when the SR wins the race, the guard timer
            # is revoked instead of rotting in the scheduler for its full
            # window (with thousands of UEs those corpses dominate the heap).
            guard = self.sim.event("sr-guard")
            guard_timer = self.sim.schedule(10.0, guard.succeed)
            try:
                race = yield self.sim.any_of([self._sr_done, guard])
            finally:
                guard_timer.cancel()
            if self._sr_done in race:
                self.state = UeState.REGISTERED
                if self.offered_mbps > 0:
                    self.enb.set_ue_offered_rate(self.imsi,
                                                 self.offered_mbps)
                result.succeed(True)
            else:
                self.enb.rrc_release(self)
                self.state = UeState.IDLE
                result.succeed(False)

        self.sim.spawn(proc(self.sim), name=f"service-req:{self.imsi}",
                       ctx=span.context)
        return result

    def on_paged(self) -> None:
        """The network paged us: downlink data is waiting."""
        if self.state == UeState.IDLE:
            self.service_request()

    def handover_to(self, target_enb) -> Event:
        """Move to another radio behind the *same* AGW (§3.2 mobility).

        The session (IP address, policy, usage counters) stays anchored at
        the AGW; only the RAN-side tunnel switches.  The returned event
        succeeds with True/False.
        """
        result = self.sim.event(f"ue.{self.imsi}.handover")
        if self.state != UeState.REGISTERED:
            result.succeed(False)
            return result
        source_enb = self.enb
        source_context = source_enb.context_for(self.imsi)
        if source_context is None or source_context.mme_ue_id is None:
            result.succeed(False)
            return result
        span = tracer_of(self.sim).begin("handover", component="ue",
                                         tags={"imsi": self.imsi})
        if span.recording:
            result.add_callback(lambda ev: span.end(
                "ok" if ev.ok and ev.value else "error"))
        try:
            with span.active():
                ack_event = target_enb.handover_in(self,
                                                   source_context.mme_ue_id)
        except CellCapacityError:  # target cell full or its S1 is down
            result.succeed(False)
            return result

        def proc(sim):
            try:
                ack = yield ack_event
            except RpcError:  # path-switch RPC to the core failed/timed out
                target_enb.rrc_release(self)
                result.succeed(False)
                return
            if ack.success:
                source_enb.rrc_release(self)
                self.enb = target_enb
                if self.offered_mbps > 0:
                    target_enb.set_ue_offered_rate(self.imsi,
                                                   self.offered_mbps)
                result.succeed(True)
            else:
                target_enb.rrc_release(self)
                result.succeed(False)

        self.sim.spawn(proc(self.sim), name=f"handover:{self.imsi}",
                       ctx=span.context)
        return result

    def notify_session_error(self, cause: str = "") -> None:
        """The network lost this UE's session (e.g. GTP path failure)."""
        self.stats["session_errors"] += 1
        self._clear_session()
        if self.config.fragile_baseband:
            self.state = UeState.STUCK
        else:
            self.state = UeState.DEREGISTERED
        if self._attach_done is not None and not self._attach_done.triggered:
            self._attach_done.fail(RuntimeError(cause or "session error"))

    def power_cycle(self) -> None:
        """Operator/user power cycles the device, clearing a stuck baseband."""
        self.stats["power_cycles"] += 1
        self._clear_session()
        self.state = UeState.DEREGISTERED

    @property
    def is_registered(self) -> bool:
        return self.state == UeState.REGISTERED

    # -- NAS receive path -----------------------------------------------------------

    def deliver_nas(self, message: Any) -> None:
        """Downlink NAS delivery (called by the eNodeB after radio delay)."""
        if isinstance(message, nas.AuthenticationRequest):
            self._on_auth_request(message)
        elif isinstance(message, nas.SecurityModeCommand):
            self._send_nas(nas.SecurityModeComplete(imsi=self.imsi))
        elif isinstance(message, nas.AttachAccept):
            self._on_attach_accept(message)
        elif isinstance(message, (nas.AttachReject, nas.AuthenticationReject)):
            if self._attach_done is not None and not self._attach_done.triggered:
                self._attach_done.fail(RuntimeError(message.cause))
        elif isinstance(message, nas.DetachAccept):
            self._finish_detach()
        elif isinstance(message, nas.ServiceAccept):
            done = getattr(self, "_sr_done", None)
            if done is not None and not done.triggered:
                done.succeed(True)
        # Unknown downlink NAS is ignored (forward compatibility).

    # -- internals ----------------------------------------------------------------

    def _attach_procedure(self, result: Event):
        try:
            self.enb.rrc_connect(self)
        except Exception as exc:  # cell full, eNB down, ...
            self.state = UeState.DEREGISTERED
            self.stats["attach_failures"] += 1
            result.succeed(AttachOutcome(False, 0.0, str(exc)))
            return
        self._send_nas(nas.AttachRequest(imsi=self.imsi))
        # Cancelable guard (see service_request): revoked on any exit path.
        guard = self.sim.event("attach-guard")
        guard_timer = self.sim.schedule(self.config.attach_guard_timer,
                                        guard.succeed)
        try:
            race = yield self.sim.any_of([self._attach_done, guard])
        except Exception as exc:  # reject / auth failure / session error
            latency = self.sim.now - self._attach_started_at
            self.state = UeState.DEREGISTERED
            self.stats["attach_failures"] += 1
            self.enb.rrc_release(self)
            result.succeed(AttachOutcome(False, latency, str(exc)))
            return
        finally:
            guard_timer.cancel()
        latency = self.sim.now - self._attach_started_at
        if self._attach_done in race:
            self.state = UeState.REGISTERED
            self.stats["attach_successes"] += 1
            if self.offered_mbps > 0:
                self.enb.set_ue_offered_rate(self.imsi, self.offered_mbps)
            result.succeed(AttachOutcome(True, latency))
        else:
            cause = "T3410 expiry"
            self.state = UeState.DEREGISTERED
            self.stats["attach_failures"] += 1
            self.enb.rrc_release(self)
            result.succeed(AttachOutcome(False, latency, cause))

    def _on_auth_request(self, message: nas.AuthenticationRequest) -> None:
        try:
            network_sqn = auth.usim_verify_autn(
                self.k, self.opc, message.rand, message.autn, self.usim_sqn)
        except auth.AuthenticationFailure as exc:
            if "SQN" in str(exc):
                # 3GPP SQN resynchronization: report the USIM's SQN so the
                # network can re-issue a fresh vector (needed when a UE
                # appears at an AGW whose SQN state lags the USIM's).
                self._send_nas(nas.AuthenticationFailureMsg(
                    imsi=self.imsi,
                    cause=f"sync_failure:{self.usim_sqn}"))
                return
            self._send_nas(nas.AuthenticationFailureMsg(imsi=self.imsi,
                                                        cause=str(exc)))
            if self._attach_done is not None and not self._attach_done.triggered:
                self._attach_done.fail(RuntimeError(str(exc)))
            return
        self.usim_sqn = network_sqn
        self._last_rand = message.rand
        res = auth.usim_compute_res(self.k, self.opc, message.rand)
        self.kasme = auth.derive_kasme(self.k, self.opc, message.rand,
                                       network_sqn)
        self._send_nas(nas.AuthenticationResponse(imsi=self.imsi, res=res))

    def _on_attach_accept(self, message: nas.AttachAccept) -> None:
        self.ip_address = message.ue_ip
        self.bearer_id = message.bearer_id
        self.guti = message.guti
        self._send_nas(nas.AttachComplete(imsi=self.imsi))
        if self._attach_done is not None and not self._attach_done.triggered:
            self._attach_done.succeed()

    def _send_nas(self, message: Any) -> None:
        self.enb.uplink_nas(self, message)

    def _clear_session(self) -> None:
        self.ip_address = None
        self.bearer_id = None
        self.kasme = None
        self.offered_mbps = self.offered_mbps  # offered intent persists
        self.enb.rrc_release(self)
