"""Radio capacity model for an LTE cell.

The paper's "typical site" arithmetic (§4.1): an eNodeB supports at most 96
simultaneously *active* users and a 20 MHz channel, i.e. a peak aggregate
throughput on the order of 126-150 Mbps per eNodeB.  The evaluation's point
is that the *RAN is the bottleneck* at a cell site, so a faithful capacity
model matters more than PHY detail.

:class:`CellModel` shares the cell's aggregate capacity among active UEs by
max-min fair allocation (water-filling): light users get their full offered
rate, heavy users split the remainder evenly.  Per-UE rates are additionally
capped by ``per_ue_peak_mbps`` (the UE category / MCS limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.fairshare import max_min_share as _max_min_share

DEFAULT_MAX_ACTIVE_UES = 96
DEFAULT_CELL_CAPACITY_MBPS = 150.0
DEFAULT_PER_UE_PEAK_MBPS = 40.0


class CellCapacityError(Exception):
    """Raised when admitting a UE would exceed the active-user limit."""


@dataclass
class CellConfig:
    max_active_ues: int = DEFAULT_MAX_ACTIVE_UES
    capacity_mbps: float = DEFAULT_CELL_CAPACITY_MBPS
    per_ue_peak_mbps: float = DEFAULT_PER_UE_PEAK_MBPS
    bandwidth_mhz: float = 20.0

    def __post_init__(self):
        if self.max_active_ues < 1:
            raise ValueError("max_active_ues must be >= 1")
        if self.capacity_mbps <= 0 or self.per_ue_peak_mbps <= 0:
            raise ValueError("capacities must be positive")


def max_min_share(offered: Dict[str, float], capacity: float,
                  per_user_cap: float) -> Dict[str, float]:
    """Max-min fair allocation of ``capacity`` across offered rates.

    Delegates to :func:`repro.sim.fairshare.max_min_share`; kept here (with a
    mandatory per-user cap) because radio scheduling always has an MCS limit.
    """
    return _max_min_share(offered, capacity, per_user_cap)


class CellModel:
    """Tracks active UEs in one cell and computes their radio throughput."""

    def __init__(self, config: CellConfig = None):
        self.config = config or CellConfig()
        self._active: Dict[str, float] = {}  # ue id -> offered mbps

    @property
    def active_count(self) -> int:
        return len(self._active)

    def admit(self, ue_id: str) -> None:
        """Admit a UE to active state; raises if the cell is full."""
        if ue_id in self._active:
            return
        if len(self._active) >= self.config.max_active_ues:
            raise CellCapacityError(
                f"cell full: {self.config.max_active_ues} active UEs")
        self._active[ue_id] = 0.0

    def release(self, ue_id: str) -> None:
        self._active.pop(ue_id, None)

    def is_active(self, ue_id: str) -> bool:
        return ue_id in self._active

    def set_offered_rate(self, ue_id: str, mbps: float) -> None:
        if ue_id not in self._active:
            raise KeyError(f"UE {ue_id!r} is not active in this cell")
        if mbps < 0:
            raise ValueError("offered rate must be >= 0")
        self._active[ue_id] = mbps

    def allocate(self) -> Dict[str, float]:
        """Per-UE achieved radio rate given current offered rates."""
        return max_min_share(self._active, self.config.capacity_mbps,
                             self.config.per_ue_peak_mbps)

    def aggregate_offered(self) -> float:
        return sum(self._active.values())

    def aggregate_achieved(self) -> float:
        return sum(self.allocate().values())
