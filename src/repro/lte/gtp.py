"""GTP-C: the 3GPP tunnel control protocol (baseline architecture).

GTP-C runs over UDP with a fixed retry budget (3GPP TS 29.274: retransmit
after T3 seconds, at most N3 times, then declare failure) and keeps tunnel
paths alive with periodic echo requests.  This is the protocol the paper
singles out (§3.1) as "sensitive to loss and latency to the point that it
struggles to operate over lower quality or congested backhaul links".

In the *baseline* monolithic EPC, GTP-C crosses the backhaul between the
RAN site and the remote core, so path failures tear down every session on
the path - and fragile UEs never recover without a power cycle.  In Magma,
GTP is terminated inside the AGW at the cell site and never experiences
backhaul loss; this module is what the ablation in
``repro.experiments.ablation_gtp`` compares against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..net.simnet import Network
from ..net.transport import DatagramSocket
from ..sim.kernel import Event, Simulator

GTPC_PORT = 2123
DEFAULT_T3 = 3.0   # retransmission timer (seconds)
DEFAULT_N3 = 3     # max retransmissions
DEFAULT_ECHO_INTERVAL = 60.0


class GtpTimeout(Exception):
    """A GTP-C request exhausted its N3 retransmissions."""


@dataclass(frozen=True)
class EchoRequest:
    seq: int = 0


@dataclass(frozen=True)
class EchoResponse:
    seq: int = 0


@dataclass(frozen=True)
class CreateSessionRequest:
    imsi: str
    sender_teid: int
    bearer_id: int = 5
    apn: str = "internet"


@dataclass(frozen=True)
class CreateSessionResponse:
    imsi: str
    ue_ip: str
    sender_teid: int
    cause: str = "accepted"


@dataclass(frozen=True)
class ModifyBearerRequest:
    imsi: str
    bearer_id: int
    enb_teid: int
    enb_address: str


@dataclass(frozen=True)
class ModifyBearerResponse:
    imsi: str
    cause: str = "accepted"


@dataclass(frozen=True)
class DeleteSessionRequest:
    imsi: str
    bearer_id: int = 5


@dataclass(frozen=True)
class DeleteSessionResponse:
    imsi: str
    cause: str = "accepted"


class GtpcEndpoint:
    """One GTP-C protocol endpoint (e.g. an SGW-facing MME, or a PGW)."""

    def __init__(self, sim: Simulator, network: Network, node: str,
                 port: int = GTPC_PORT, t3: float = DEFAULT_T3,
                 n3: int = DEFAULT_N3):
        self.sim = sim
        self.network = network
        self.node = node
        self.port = port
        self.t3 = t3
        self.n3 = n3
        self._seq = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        # seq -> pending retransmission timer.  Revoked the moment the
        # response lands (or the request gives up): an un-cancelled T3 timer
        # rots for up to 3s per exchange and stretches run-until-drain.
        self._retry: Dict[int, Any] = {}
        self._handlers: Dict[type, Callable[[Any, str], Any]] = {}
        self._path_monitors: Dict[str, bool] = {}  # peer -> active
        self._on_path_failure: Optional[Callable[[str], None]] = None
        self.stats = {"requests": 0, "responses": 0, "retransmits": 0,
                      "timeouts": 0, "echo_sent": 0, "echo_lost": 0,
                      "path_failures": 0}
        self._socket = DatagramSocket(network, node, port, self._on_datagram)

    # -- request/response ---------------------------------------------------------

    def register_handler(self, message_type: type,
                         handler: Callable[[Any, str], Any]) -> None:
        """``handler(request, peer) -> response`` for a request type."""
        self._handlers[message_type] = handler

    def set_path_failure_callback(self, cb: Callable[[str], None]) -> None:
        self._on_path_failure = cb

    def send_request(self, peer: str, request: Any) -> Event:
        """Send with T3/N3 retransmission; event fails with GtpTimeout."""
        seq = next(self._seq)
        done = self.sim.event(f"gtpc.{self.node}.req{seq}")
        self._pending[seq] = done
        self.stats["requests"] += 1
        self._transmit(peer, seq, request, attempt=0)
        return done

    def _transmit(self, peer: str, seq: int, request: Any, attempt: int) -> None:
        if seq not in self._pending:
            self._retry.pop(seq, None)
            return
        if attempt > self.n3:
            self._retry.pop(seq, None)
            done = self._pending.pop(seq)
            self.stats["timeouts"] += 1
            if not done.triggered:
                done.fail(GtpTimeout(f"no response from {peer} after "
                                     f"{self.n3} retransmissions"))
            return
        if attempt > 0:
            self.stats["retransmits"] += 1
        self._socket.send(peer, self.port, ("request", seq, request))
        self._retry[seq] = self.sim.schedule(self.t3, self._transmit, peer,
                                             seq, request, attempt + 1)

    # -- path management (echo) ----------------------------------------------------

    def start_path_monitor(self, peer: str,
                           interval: float = DEFAULT_ECHO_INTERVAL) -> None:
        """Send periodic echoes; declare path failure when one times out."""
        if self._path_monitors.get(peer):
            return
        self._path_monitors[peer] = True
        self.sim.spawn(self._echo_loop(peer, interval),
                       name=f"gtpc-echo:{self.node}->{peer}")

    def stop_path_monitor(self, peer: str) -> None:
        self._path_monitors[peer] = False

    def _echo_loop(self, peer: str, interval: float):
        while self._path_monitors.get(peer):
            yield self.sim.timeout(interval)
            if not self._path_monitors.get(peer):
                return
            self.stats["echo_sent"] += 1
            try:
                yield self.send_request(peer, EchoRequest())
            except GtpTimeout:
                self.stats["echo_lost"] += 1
                self.stats["path_failures"] += 1
                self._path_monitors[peer] = False
                if self._on_path_failure is not None:
                    self._on_path_failure(peer)
                return

    # -- receive path ------------------------------------------------------------------

    def _on_datagram(self, payload: Any, src: str, port: int) -> None:
        kind, seq, body = payload
        if kind == "request":
            if isinstance(body, EchoRequest):
                response: Any = EchoResponse(seq=seq)
            else:
                handler = self._handlers.get(type(body))
                if handler is None:
                    return  # unknown message: silently dropped, like real GTP
                response = handler(body, src)
            if response is not None:
                self._socket.send(src, self.port, ("response", seq, response))
        elif kind == "response":
            done = self._pending.pop(seq, None)
            timer = self._retry.pop(seq, None)
            if timer is not None:
                timer.cancel()
            if done is not None and not done.triggered:
                self.stats["responses"] += 1
                done.succeed(body)

    def close(self) -> None:
        self._socket.close()
        self._path_monitors.clear()
        for timer in self._retry.values():
            timer.cancel()
        self._retry.clear()
