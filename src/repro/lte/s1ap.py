"""S1AP messages: the eNodeB <-> MME control interface.

In a real network S1AP runs over SCTP; here the messages are carried over
the reproduction's reliable RPC layer (see ``repro.net.rpc``), which gives
equivalent in-order, retransmitted delivery.  The AGW terminates S1AP in its
access frontend (the paper's "terminate radio-specific protocols early").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from .identifiers import EcgI, Tai

S1AP_SERVICE = "s1ap"


@dataclass(frozen=True)
class S1SetupRequest:
    """eNodeB registers with its MME."""

    enb_id: str
    tai: Tai = Tai()
    cell: EcgI = EcgI()


@dataclass(frozen=True)
class S1SetupResponse:
    mme_name: str
    served_plmn: str
    accepted: bool = True


@dataclass(frozen=True)
class InitialUeMessage:
    """First uplink NAS message for a new UE (carries AttachRequest)."""

    enb_id: str
    enb_ue_id: int
    nas: Any = None
    tai: Tai = Tai()


@dataclass(frozen=True)
class UplinkNasTransport:
    enb_id: str
    enb_ue_id: int
    mme_ue_id: int
    nas: Any = None


@dataclass(frozen=True)
class DownlinkNasTransport:
    enb_ue_id: int
    mme_ue_id: int
    nas: Any = None


@dataclass(frozen=True)
class InitialContextSetupRequest:
    """MME instructs the eNodeB to set up the UE context and data bearer."""

    enb_ue_id: int
    mme_ue_id: int
    ue_agg_max_bitrate_mbps: float
    agw_teid: int            # AGW-side GTP-U endpoint for uplink
    agw_address: str
    nas: Any = None          # piggybacked AttachAccept
    security_key: bytes = b""


@dataclass(frozen=True)
class InitialContextSetupResponse:
    enb_ue_id: int
    mme_ue_id: int
    enb_teid: int            # eNodeB-side GTP-U endpoint for downlink
    enb_address: str = ""
    success: bool = True


@dataclass(frozen=True)
class UeContextReleaseRequest:
    """eNodeB-initiated release (user inactivity): the UE goes ECM-IDLE.

    The session stays anchored at the AGW; only the radio context and the
    S1 tunnel are torn down until paging/service-request brings the UE
    back (idle-mode signalling, the IoT-heavy workload pattern of §4.2).
    """

    enb_id: str
    enb_ue_id: int
    mme_ue_id: int
    imsi: str
    cause: str = "user-inactivity"


@dataclass(frozen=True)
class Paging:
    """MME asks the eNodeB to page an idle UE (downlink data pending)."""

    imsi: str


@dataclass(frozen=True)
class PathSwitchRequest:
    """Target eNodeB announces a UE that moved to it (X2-style handover).

    Intra-AGW mobility (§3.2): the session - IP address, policy state,
    usage counters - stays in place; only the RAN-side tunnel endpoint
    switches.
    """

    enb_id: str
    enb_ue_id: int
    mme_ue_id: int
    imsi: str
    enb_teid: int
    enb_address: str = ""


@dataclass(frozen=True)
class PathSwitchRequestAck:
    enb_ue_id: int
    mme_ue_id: int
    success: bool = True
    cause: str = ""


@dataclass(frozen=True)
class UeContextReleaseCommand:
    enb_ue_id: int
    mme_ue_id: int
    cause: str = "detach"


@dataclass(frozen=True)
class UeContextReleaseComplete:
    enb_ue_id: int
    mme_ue_id: int
