"""EPS-AKA authentication (milenage stand-in).

Real LTE uses the MILENAGE algorithm set (AES-based) to derive an
authentication vector from the subscriber's secret key K and the operator
constant OP/OPc.  We substitute HMAC-SHA256 derivations with the same
*protocol shape*:

- The network side (HSS / Magma subscriberdb) computes an
  :class:`AuthVector` ``(rand, xres, autn, kasme)`` from ``(k, opc, sqn)``.
- The USIM computes ``res`` (and checks ``autn``) from ``(k, opc, rand)``.
- Authentication succeeds iff ``res == xres``; a wrong K fails, a replayed
  or out-of-range SQN fails the AUTN check (synchronisation failure).

This preserves everything the paper's evaluation depends on: per-attach
cryptographic work on the control plane, mutual authentication semantics,
and failure modes for unknown/mis-keyed subscribers.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

KEY_BYTES = 16
SQN_WINDOW = 32  # how far ahead of the USIM's SQN the network may be


class AuthenticationFailure(Exception):
    """RES mismatch or AUTN verification failure."""


@dataclass(frozen=True)
class AuthVector:
    """One EPS authentication vector."""

    rand: bytes
    xres: bytes
    autn: bytes
    kasme: bytes
    sqn: int


def _prf(key: bytes, *parts: bytes) -> bytes:
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.digest()


def derive_opc(k: bytes, op: bytes) -> bytes:
    """Derive the per-subscriber OPc from K and the operator constant OP."""
    return _prf(k, b"opc", op)[:KEY_BYTES]


def generate_vector(k: bytes, opc: bytes, sqn: int, rand: bytes) -> AuthVector:
    """Network-side vector generation (HSS / subscriberdb)."""
    if len(k) != KEY_BYTES:
        raise ValueError(f"K must be {KEY_BYTES} bytes")
    if len(rand) != KEY_BYTES:
        raise ValueError(f"RAND must be {KEY_BYTES} bytes")
    if sqn < 0:
        raise ValueError("SQN must be >= 0")
    sqn_bytes = sqn.to_bytes(6, "big")
    xres = _prf(k, b"res", opc, rand)[:8]
    mac_a = _prf(k, b"mac_a", opc, rand, sqn_bytes)[:8]
    autn = sqn_bytes + mac_a
    kasme = _prf(k, b"kasme", opc, rand, sqn_bytes)
    return AuthVector(rand=rand, xres=xres, autn=autn, kasme=kasme, sqn=sqn)


def usim_compute_res(k: bytes, opc: bytes, rand: bytes) -> bytes:
    """USIM-side response to a challenge."""
    return _prf(k, b"res", opc, rand)[:8]


def usim_verify_autn(k: bytes, opc: bytes, rand: bytes, autn: bytes,
                     usim_sqn: int) -> int:
    """USIM-side AUTN check.

    Returns the network SQN on success (the USIM advances to it).  Raises
    :class:`AuthenticationFailure` on MAC mismatch or SQN replay/skew.
    """
    if len(autn) != 14:
        raise AuthenticationFailure("malformed AUTN")
    sqn_bytes, mac_a = autn[:6], autn[6:]
    expected = _prf(k, b"mac_a", opc, rand, sqn_bytes)[:8]
    if not hmac.compare_digest(mac_a, expected):
        raise AuthenticationFailure("AUTN MAC failure (wrong network key?)")
    network_sqn = int.from_bytes(sqn_bytes, "big")
    if network_sqn <= usim_sqn:
        raise AuthenticationFailure(
            f"SQN replay: network {network_sqn} <= usim {usim_sqn}")
    if network_sqn > usim_sqn + SQN_WINDOW:
        raise AuthenticationFailure(
            f"SQN out of range: network {network_sqn} vs usim {usim_sqn}")
    return network_sqn


def derive_kasme(k: bytes, opc: bytes, rand: bytes, sqn: int) -> bytes:
    """USIM/UE-side KASME derivation (matches the network's)."""
    return _prf(k, b"kasme", opc, rand, sqn.to_bytes(6, "big"))
