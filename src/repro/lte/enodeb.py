"""eNodeB model: radio admission, NAS relay, S1AP endpoint, GTP-U anchor.

The eNodeB does three jobs, matching its real-world role:

1. **Radio admission**: a cell supports a bounded number of active UEs and a
   bounded aggregate throughput (:mod:`repro.lte.radio`).
2. **NAS relay**: uplink NAS is wrapped in S1AP and sent to the configured
   core endpoint (a Magma AGW, or the monolithic EPC in the baseline);
   downlink NAS arrives over the eNodeB's RPC server and is delivered to the
   UE after the radio delay.
3. **User-plane anchor**: it terminates the GTP-U tunnel for each UE
   (allocating the eNodeB-side TEID during initial context setup).

The same eNodeB implementation talks to either core - the paper's
architectural point is precisely that the RAN does not care.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..net.rpc import RpcChannel, RpcError, RpcServer
from ..net.simnet import Network
from ..sim.kernel import Event, Simulator
from . import nas, s1ap
from .identifiers import TeidAllocator
from .radio import CellCapacityError, CellConfig, CellModel
from .ue import Ue

ENB_S1AP_SERVICE = "s1ap-enb"


@dataclass
class UeContext:
    ue: Ue
    enb_ue_id: int
    mme_ue_id: Optional[int] = None
    enb_teid: Optional[int] = None
    agw_teid: Optional[int] = None
    agw_address: str = ""


class Enodeb:
    """A simulated eNodeB attached to a core endpoint over S1AP."""

    def __init__(self, sim: Simulator, network: Network, enb_id: str,
                 core_node: str, cell_config: Optional[CellConfig] = None,
                 s1ap_deadline: float = 10.0):
        self.sim = sim
        self.network = network
        self.enb_id = enb_id
        self.core_node = core_node
        self.cell = CellModel(cell_config)
        self.s1ap_deadline = s1ap_deadline
        self._ue_ids = itertools.count(1)
        self._teids = TeidAllocator(start=0x2000)
        self._by_imsi: Dict[str, UeContext] = {}
        self._by_enb_ue_id: Dict[int, UeContext] = {}
        self._camped: Dict[str, Ue] = {}  # idle UEs listening for paging
        self.s1_ready = False
        self.stats = {"uplink_nas": 0, "downlink_nas": 0, "rrc_connects": 0,
                      "rrc_rejects": 0, "context_setups": 0, "releases": 0,
                      "uplink_errors": 0}
        network.add_node(enb_id)
        self._server = RpcServer(sim, network, enb_id)
        self._server.register(ENB_S1AP_SERVICE, "downlink_nas",
                              self._on_downlink_nas)
        self._server.register(ENB_S1AP_SERVICE, "initial_context_setup",
                              self._on_initial_context_setup)
        self._server.register(ENB_S1AP_SERVICE, "ue_context_release",
                              self._on_ue_context_release)
        self._server.register(ENB_S1AP_SERVICE, "paging", self._on_paging)
        self._channel = RpcChannel(sim, network, enb_id, core_node)

    # -- S1 setup -------------------------------------------------------------

    def s1_setup(self) -> Event:
        """Register with the core; the returned event carries the response."""
        done = self.sim.event(f"enb.{self.enb_id}.s1setup")

        def proc(sim):
            request = s1ap.S1SetupRequest(enb_id=self.enb_id)
            response = yield self._channel.call(
                s1ap.S1AP_SERVICE, "setup", request,
                deadline=self.s1ap_deadline)
            self.s1_ready = bool(response.accepted)
            return response

        p = self.sim.spawn(proc(self.sim), name=f"s1setup:{self.enb_id}")
        p.add_callback(lambda ev: done.succeed(ev.value) if ev.ok
                       else done.fail(ev.value))
        return done

    def retarget_core(self, new_core_node: str) -> Event:
        """Re-point S1 at a different core endpoint (AGW failover, §3.3).

        Closes the old control channel, opens one toward the new node, and
        re-runs S1 setup.  UE contexts and their radio state stay in place;
        the returned event is the new S1 setup's completion.
        """
        self._channel.close()
        self.core_node = new_core_node
        self._channel = RpcChannel(self.sim, self.network, self.enb_id,
                                   new_core_node)
        self.s1_ready = False
        return self.s1_setup()

    # -- UE-facing radio interface ------------------------------------------------

    def rrc_connect(self, ue: Ue) -> UeContext:
        """Admit a UE to the cell and create its context."""
        if not self.s1_ready:
            self.stats["rrc_rejects"] += 1
            raise CellCapacityError(f"{self.enb_id}: S1 not established")
        self._camped.pop(ue.imsi, None)  # leaving idle camp
        existing = self._by_imsi.get(ue.imsi)
        if existing is not None:
            return existing
        try:
            self.cell.admit(ue.imsi)
        except CellCapacityError:
            self.stats["rrc_rejects"] += 1
            raise
        self.stats["rrc_connects"] += 1
        context = UeContext(ue=ue, enb_ue_id=next(self._ue_ids))
        self._by_imsi[ue.imsi] = context
        self._by_enb_ue_id[context.enb_ue_id] = context
        return context

    def rrc_release(self, ue: Ue) -> None:
        context = self._by_imsi.pop(ue.imsi, None)
        if context is None:
            return
        self.stats["releases"] += 1
        self._by_enb_ue_id.pop(context.enb_ue_id, None)
        self.cell.release(ue.imsi)
        if context.enb_teid is not None:
            self._teids.release(context.enb_teid)

    def uplink_nas(self, ue: Ue, message: Any) -> None:
        """Relay an uplink NAS message to the core (after radio delay)."""
        context = self._by_imsi.get(ue.imsi)
        if context is None:
            return  # UE was released; drop silently like a real radio link
        self.stats["uplink_nas"] += 1
        self.sim.call_later(ue.config.radio_delay, self._send_uplink,
                            context, message)

    def set_ue_offered_rate(self, imsi: str, mbps: float) -> None:
        if self.cell.is_active(imsi):
            self.cell.set_offered_rate(imsi, mbps)

    def connected_ues(self) -> int:
        return len(self._by_imsi)

    def release_to_idle(self, ue: Ue) -> None:
        """eNodeB-initiated idle transition (user inactivity).

        Frees the radio context and tells the MME the UE went ECM-IDLE;
        the UE stays *camped* here so paging can reach it.
        """
        context = self._by_imsi.get(ue.imsi)
        if context is None:
            return
        request = s1ap.UeContextReleaseRequest(
            enb_id=self.enb_id, enb_ue_id=context.enb_ue_id,
            mme_ue_id=context.mme_ue_id or 0, imsi=ue.imsi)
        self.rrc_release(ue)
        self._camped[ue.imsi] = ue

        def proc(sim):
            try:
                yield self._channel.call(s1ap.S1AP_SERVICE, "uplink",
                                         request,
                                         deadline=self.s1ap_deadline)
            except RpcError:
                self.stats["uplink_errors"] += 1

        self.sim.spawn(proc(self.sim), name=f"idle:{ue.imsi}")

    def _on_paging(self, message: s1ap.Paging) -> Dict[str, bool]:
        ue = self._camped.get(message.imsi)
        if ue is None:
            return {"paged": False}
        self.sim.call_later(ue.config.radio_delay, ue.on_paged)
        return {"paged": True}

    def handover_in(self, ue: Ue, mme_ue_id: int) -> "Event":
        """Accept a UE handed over from another eNodeB on the same AGW.

        Admits the UE, allocates a local GTP-U TEID, and sends an X2-style
        PathSwitchRequest so the AGW re-points the downlink tunnel.  The
        returned event carries the PathSwitchRequestAck (or fails).
        """
        if not self.s1_ready:
            raise CellCapacityError(f"{self.enb_id}: S1 not established")
        context = self.rrc_connect(ue)
        context.mme_ue_id = mme_ue_id
        if context.enb_teid is None:
            context.enb_teid = self._teids.allocate()
        request = s1ap.PathSwitchRequest(
            enb_id=self.enb_id, enb_ue_id=context.enb_ue_id,
            mme_ue_id=mme_ue_id, imsi=ue.imsi,
            enb_teid=context.enb_teid, enb_address=self.enb_id)
        done = self.sim.event(f"handover:{ue.imsi}->{self.enb_id}")

        def proc(sim):
            try:
                ack = yield self._channel.call(s1ap.S1AP_SERVICE,
                                               "path_switch", request,
                                               deadline=self.s1ap_deadline)
            except RpcError as exc:
                done.fail(exc)
                return
            if not done.triggered:
                done.succeed(ack)

        self.sim.spawn(proc(self.sim), name=f"path-switch:{ue.imsi}")
        return done

    def s1_path_failure(self, cause: str = "s1 path failure") -> None:
        """The eNodeB lost its core connection (e.g. GTP path failure over
        the backhaul): drop every RRC connection and surface the failure to
        the basebands - the §3.1 scenario that wedges fragile UEs."""
        for context in list(self._by_imsi.values()):
            ue = context.ue
            self.rrc_release(ue)
            self.sim.call_later(ue.config.radio_delay,
                                ue.notify_session_error, cause)

    def context_for(self, imsi: str) -> Optional[UeContext]:
        return self._by_imsi.get(imsi)

    # -- internals -------------------------------------------------------------------

    def _send_uplink(self, context: UeContext, message: Any) -> None:
        if context.mme_ue_id is None:
            wrapped: Any = s1ap.InitialUeMessage(
                enb_id=self.enb_id, enb_ue_id=context.enb_ue_id, nas=message)
        else:
            wrapped = s1ap.UplinkNasTransport(
                enb_id=self.enb_id, enb_ue_id=context.enb_ue_id,
                mme_ue_id=context.mme_ue_id, nas=message)

        def proc(sim):
            try:
                yield self._channel.call(s1ap.S1AP_SERVICE, "uplink", wrapped,
                                         deadline=self.s1ap_deadline)
            except RpcError:
                self.stats["uplink_errors"] += 1

        self.sim.spawn(proc(self.sim), name=f"uplink:{self.enb_id}")

    def _on_downlink_nas(self, message: s1ap.DownlinkNasTransport) -> Any:
        context = self._by_enb_ue_id.get(message.enb_ue_id)
        if context is None:
            return {"delivered": False}
        context.mme_ue_id = message.mme_ue_id
        self.stats["downlink_nas"] += 1
        self.sim.call_later(context.ue.config.radio_delay,
                            context.ue.deliver_nas, message.nas)
        return {"delivered": True}

    def _on_initial_context_setup(
            self, message: s1ap.InitialContextSetupRequest) -> Any:
        context = self._by_enb_ue_id.get(message.enb_ue_id)
        if context is None:
            return s1ap.InitialContextSetupResponse(
                enb_ue_id=message.enb_ue_id, mme_ue_id=message.mme_ue_id,
                enb_teid=0, success=False)
        self.stats["context_setups"] += 1
        context.mme_ue_id = message.mme_ue_id
        context.agw_teid = message.agw_teid
        context.agw_address = message.agw_address
        if context.enb_teid is None:
            context.enb_teid = self._teids.allocate()
        if message.nas is not None:
            self.sim.call_later(context.ue.config.radio_delay,
                                context.ue.deliver_nas, message.nas)
        return s1ap.InitialContextSetupResponse(
            enb_ue_id=message.enb_ue_id, mme_ue_id=message.mme_ue_id,
            enb_teid=context.enb_teid, enb_address=self.enb_id, success=True)

    def _on_ue_context_release(
            self, message: s1ap.UeContextReleaseCommand) -> Any:
        context = self._by_enb_ue_id.get(message.enb_ue_id)
        if context is not None:
            ue = context.ue
            self.rrc_release(ue)
            if message.cause not in ("detach",):
                # Network-side failure: surface to the UE's baseband.
                self.sim.call_later(ue.config.radio_delay,
                                    ue.notify_session_error, message.cause)
        return s1ap.UeContextReleaseComplete(
            enb_ue_id=message.enb_ue_id, mme_ue_id=message.mme_ue_id)
