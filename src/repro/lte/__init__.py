"""LTE substrate: UEs, eNodeBs, NAS/S1AP, EPS-AKA, GTP-C, radio capacity."""

from . import auth, gtp, nas, s1ap
from .enodeb import ENB_S1AP_SERVICE, Enodeb, UeContext
from .identifiers import EcgI, Tai, TeidAllocator, TEST_PLMN, make_imsi, validate_imsi
from .radio import (
    CellCapacityError,
    CellConfig,
    CellModel,
    max_min_share,
)
from .ue import AttachOutcome, Ue, UeConfig, UeState

__all__ = [
    "AttachOutcome",
    "CellCapacityError",
    "CellConfig",
    "CellModel",
    "EcgI",
    "ENB_S1AP_SERVICE",
    "Enodeb",
    "Tai",
    "TeidAllocator",
    "TEST_PLMN",
    "Ue",
    "UeConfig",
    "UeContext",
    "UeState",
    "auth",
    "gtp",
    "make_imsi",
    "max_min_share",
    "nas",
    "s1ap",
    "validate_imsi",
]
