"""NAS (Non-Access Stratum) messages and timers.

The NAS dialogue runs end-to-end between the UE and the MME (through the
eNodeB, which does not interpret it).  We model the subset of EMM/ESM
procedures the paper's workloads exercise: attach (with EPS-AKA and
security-mode), detach, and service requests, plus the UE-side retry timers
whose expiry defines a *failed connection attempt* for the CSR metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# 3GPP TS 24.301 timer defaults (seconds).
T3410_ATTACH = 15.0       # attach procedure guard timer
T3411_RETRY = 10.0        # retry delay after a failed attach
MAX_ATTACH_ATTEMPTS = 5


@dataclass(frozen=True)
class NasMessage:
    """Base class for NAS messages; ``imsi`` identifies the UE."""

    imsi: str


@dataclass(frozen=True)
class AttachRequest(NasMessage):
    ue_capabilities: tuple = ("lte",)
    attach_type: str = "eps"


@dataclass(frozen=True)
class AuthenticationRequest(NasMessage):
    rand: bytes = b""
    autn: bytes = b""


@dataclass(frozen=True)
class AuthenticationResponse(NasMessage):
    res: bytes = b""


@dataclass(frozen=True)
class AuthenticationReject(NasMessage):
    cause: str = "authentication failure"


@dataclass(frozen=True)
class AuthenticationFailureMsg(NasMessage):
    """UE-side failure report (e.g. AUTN MAC failure, SQN resync)."""

    cause: str = ""


@dataclass(frozen=True)
class SecurityModeCommand(NasMessage):
    integrity_algo: str = "eia2"
    ciphering_algo: str = "eea2"


@dataclass(frozen=True)
class SecurityModeComplete(NasMessage):
    pass


@dataclass(frozen=True)
class AttachAccept(NasMessage):
    ue_ip: str = ""
    bearer_id: int = 5
    guti: str = ""
    apn: str = "internet"
    qci: int = 9


@dataclass(frozen=True)
class AttachComplete(NasMessage):
    pass


@dataclass(frozen=True)
class AttachReject(NasMessage):
    cause: str = "network failure"


@dataclass(frozen=True)
class DetachRequest(NasMessage):
    switch_off: bool = False


@dataclass(frozen=True)
class DetachAccept(NasMessage):
    pass


@dataclass(frozen=True)
class ServiceRequest(NasMessage):
    """UE returning from idle to connected."""


@dataclass(frozen=True)
class ServiceAccept(NasMessage):
    pass


@dataclass(frozen=True)
class ServiceReject(NasMessage):
    cause: str = ""
