"""Identifiers used across the LTE substrate and the core.

IMSI strings, TEID and bearer-id allocation, and the PLMN conventions the
test network uses (MCC 001 / MNC 01, the 3GPP test network).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

TEST_PLMN = "00101"


def make_imsi(index: int, plmn: str = TEST_PLMN) -> str:
    """Build a 15-digit IMSI from a subscriber index (deterministic)."""
    if index < 0:
        raise ValueError("subscriber index must be >= 0")
    msin = f"{index:0{15 - len(plmn)}d}"
    if len(plmn) + len(msin) != 15:
        raise ValueError("PLMN too long for a 15-digit IMSI")
    return plmn + msin


def validate_imsi(imsi: str) -> str:
    """Return ``imsi`` if well-formed, else raise ValueError."""
    if not imsi.isdigit() or len(imsi) != 15:
        raise ValueError(f"malformed IMSI {imsi!r} (need 15 digits)")
    return imsi


class TeidAllocator:
    """Allocates unique GTP tunnel endpoint ids within one endpoint."""

    def __init__(self, start: int = 0x1000):
        self._counter = itertools.count(start)
        self._released: list = []

    def allocate(self) -> int:
        if self._released:
            return self._released.pop()
        return next(self._counter)

    def release(self, teid: int) -> None:
        self._released.append(teid)


@dataclass(frozen=True)
class Tai:
    """Tracking area identity."""

    plmn: str = TEST_PLMN
    tac: int = 1


@dataclass(frozen=True)
class EcgI:
    """E-UTRAN cell global identifier."""

    plmn: str = TEST_PLMN
    cell_id: int = 0
