"""Identifiers used across the LTE substrate and the core.

IMSI strings, TEID and bearer-id allocation, and the PLMN conventions the
test network uses (MCC 001 / MNC 01, the 3GPP test network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

TEST_PLMN = "00101"


def make_imsi(index: int, plmn: str = TEST_PLMN) -> str:
    """Build a 15-digit IMSI from a subscriber index (deterministic)."""
    if index < 0:
        raise ValueError("subscriber index must be >= 0")
    msin = f"{index:0{15 - len(plmn)}d}"
    if len(plmn) + len(msin) != 15:
        raise ValueError("PLMN too long for a 15-digit IMSI")
    return plmn + msin


def validate_imsi(imsi: str) -> str:
    """Return ``imsi`` if well-formed, else raise ValueError."""
    if not imsi.isdigit() or len(imsi) != 15:
        raise ValueError(f"malformed IMSI {imsi!r} (need 15 digits)")
    return imsi


class TeidAllocator:
    """Allocates unique GTP tunnel endpoint ids within one endpoint.

    Released ids are recycled LIFO through an O(1) free list.  Ids handed
    out (or seeded via :meth:`reserve` during crash-recovery restore) are
    tracked in ``_in_use`` so the allocator can never collide with a live
    tunnel - including ids restored from a checkpoint that the sequential
    counter has not reached yet, and ids double-released by buggy callers.
    """

    def __init__(self, start: int = 0x1000):
        self._start = start
        self._next = start
        self._free: list = []
        self._in_use: Set[int] = set()

    def allocate(self) -> int:
        while self._free:
            teid = self._free.pop()
            if teid not in self._in_use:   # lazy-deleted (reserved) entries
                self._in_use.add(teid)
                return teid
        while self._next in self._in_use:  # skip restore-time reservations
            self._next += 1
        teid = self._next
        self._next += 1
        self._in_use.add(teid)
        return teid

    def reserve(self, teid: int) -> None:
        """Mark ``teid`` as in use without allocating it (restore seeding).

        The free list is purged lazily: :meth:`allocate` skips entries that
        are marked in-use, so reserve stays O(1) even mid-lifecycle.
        """
        self._in_use.add(teid)

    def reserve_all(self, teids: Iterable[int]) -> None:
        """Bulk :meth:`reserve` for checkpoint restore paths."""
        self._in_use.update(teids)

    def release(self, teid: int) -> None:
        self._in_use.discard(teid)
        self._free.append(teid)

    def in_use_count(self) -> int:
        return len(self._in_use)

    def is_in_use(self, teid: int) -> bool:
        return teid in self._in_use


@dataclass(frozen=True)
class Tai:
    """Tracking area identity."""

    plmn: str = TEST_PLMN
    tac: int = 1


@dataclass(frozen=True)
class EcgI:
    """E-UTRAN cell global identifier."""

    plmn: str = TEST_PLMN
    cell_id: int = 0
