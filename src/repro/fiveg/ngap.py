"""NGAP messages: the gNB <-> AMF control interface (5G's S1AP)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

NGAP_SERVICE = "ngap"
GNB_NGAP_SERVICE = "ngap-gnb"


@dataclass(frozen=True)
class NgSetupRequest:
    gnb_id: str
    plmn: str = "00101"


@dataclass(frozen=True)
class NgSetupResponse:
    amf_name: str
    accepted: bool = True


@dataclass(frozen=True)
class InitialUeMessage5g:
    gnb_id: str
    ran_ue_id: int
    nas: Any = None


@dataclass(frozen=True)
class UplinkNasTransport5g:
    gnb_id: str
    ran_ue_id: int
    amf_ue_id: int
    nas: Any = None


@dataclass(frozen=True)
class DownlinkNasTransport5g:
    ran_ue_id: int
    amf_ue_id: int
    nas: Any = None


@dataclass(frozen=True)
class PduSessionResourceSetupRequest:
    """AMF/SMF instructs the gNB to set up the user-plane resources."""

    ran_ue_id: int
    amf_ue_id: int
    pdu_session_id: int
    agw_teid: int
    agw_address: str
    nas: Any = None   # piggybacked PduSessionEstablishmentAccept


@dataclass(frozen=True)
class PduSessionResourceSetupResponse:
    ran_ue_id: int
    amf_ue_id: int
    pdu_session_id: int
    gnb_teid: int
    gnb_address: str = ""
    success: bool = True


@dataclass(frozen=True)
class UeContextReleaseCommand5g:
    ran_ue_id: int
    amf_ue_id: int
    cause: str = "deregistration"


@dataclass(frozen=True)
class UeContextReleaseComplete5g:
    ran_ue_id: int
    amf_ue_id: int
