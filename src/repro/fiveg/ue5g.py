"""5G UE model: registration then PDU session establishment.

Unlike the LTE UE, a 5G UE performs two separate procedures: it first
*registers* (authentication + security), then establishes a *PDU session*
to get an IP and user plane.  Both are driven against the same AGW generic
functions via the NGAP frontend.
"""

from __future__ import annotations

from typing import Any, Optional

from ..lte import auth
from ..lte.radio import CellCapacityError
from ..sim.kernel import Event, Simulator
from . import nas5g

DEFAULT_GUARD_TIMER = 15.0


class Ue5gState:
    DEREGISTERED = "deregistered"
    REGISTERING = "registering"
    REGISTERED = "registered"            # no PDU session yet
    SESSION_PENDING = "session-pending"
    SESSION_ACTIVE = "session-active"
    STUCK = "stuck"


class Ue5g:
    """A simulated 5G UE."""

    def __init__(self, sim: Simulator, imsi: str, k: bytes, opc: bytes,
                 gnb: "Gnb", radio_delay: float = 0.02,
                 guard_timer: float = DEFAULT_GUARD_TIMER,
                 fragile_baseband: bool = False):
        self.sim = sim
        self.imsi = imsi
        self.k = k
        self.opc = opc
        self.gnb = gnb
        self.radio_delay = radio_delay
        self.guard_timer = guard_timer
        self.fragile_baseband = fragile_baseband
        self.state = Ue5gState.DEREGISTERED
        self.usim_sqn = 0
        self.ip_address: Optional[str] = None
        self.guti_5g: Optional[str] = None
        self.offered_mbps = 0.0
        self._procedure_done: Optional[Event] = None
        self.stats = {"registrations": 0, "registration_failures": 0,
                      "pdu_sessions": 0, "pdu_failures": 0,
                      "session_errors": 0}

    # -- procedures ---------------------------------------------------------------

    def register(self) -> Event:
        """Run the registration procedure; event value is True/False."""
        result = self.sim.event(f"ue5g.{self.imsi}.register")
        if self.state not in (Ue5gState.DEREGISTERED,):
            result.succeed(False)
            return result
        self.state = Ue5gState.REGISTERING
        self._procedure_done = self.sim.event("reg-inner")
        self.sim.spawn(self._run_procedure(
            result, nas5g.RegistrationRequest(imsi=self.imsi),
            success_state=Ue5gState.REGISTERED,
            failure_state=Ue5gState.DEREGISTERED,
            success_counter="registrations",
            failure_counter="registration_failures"),
            name=f"5g-register:{self.imsi}")
        return result

    def establish_pdu_session(self) -> Event:
        """Run PDU session establishment; event value is True/False."""
        result = self.sim.event(f"ue5g.{self.imsi}.pdu")
        if self.state != Ue5gState.REGISTERED:
            result.succeed(False)
            return result
        self.state = Ue5gState.SESSION_PENDING
        self._procedure_done = self.sim.event("pdu-inner")
        self.sim.spawn(self._run_procedure(
            result, nas5g.PduSessionEstablishmentRequest(imsi=self.imsi),
            success_state=Ue5gState.SESSION_ACTIVE,
            failure_state=Ue5gState.REGISTERED,
            success_counter="pdu_sessions",
            failure_counter="pdu_failures",
            connect=False),
            name=f"5g-pdu:{self.imsi}")
        return result

    def release_pdu_session(self) -> Event:
        """Tear down the PDU session but stay registered (5G split)."""
        result = self.sim.event(f"ue5g.{self.imsi}.pdu_release")
        if self.state != Ue5gState.SESSION_ACTIVE:
            result.succeed(False)
            return result
        self.state = Ue5gState.SESSION_PENDING
        self._procedure_done = self.sim.event("pdu-release-inner")
        self.sim.spawn(self._run_procedure(
            result, nas5g.PduSessionReleaseRequest(imsi=self.imsi),
            success_state=Ue5gState.REGISTERED,
            failure_state=Ue5gState.REGISTERED,
            success_counter="pdu_sessions",   # reuse counter bucket
            failure_counter="pdu_failures",
            connect=False),
            name=f"5g-pdu-release:{self.imsi}")
        result.add_callback(lambda ev: setattr(self, "ip_address", None)
                            if ev.value else None)
        return result

    def deregister(self) -> None:
        if self.state in (Ue5gState.DEREGISTERED, Ue5gState.STUCK):
            return
        self._send_nas(nas5g.DeregistrationRequest(imsi=self.imsi,
                                                   switch_off=True))
        self.ip_address = None
        self.gnb.rrc_release(self)
        self.state = Ue5gState.DEREGISTERED

    def set_offered_rate(self, mbps: float) -> None:
        if mbps < 0:
            raise ValueError("offered rate must be >= 0")
        self.offered_mbps = mbps
        if self.state == Ue5gState.SESSION_ACTIVE:
            self.gnb.set_ue_offered_rate(self.imsi, mbps)

    def notify_session_error(self, cause: str = "") -> None:
        self.stats["session_errors"] += 1
        self.ip_address = None
        self.gnb.rrc_release(self)
        self.state = (Ue5gState.STUCK if self.fragile_baseband
                      else Ue5gState.DEREGISTERED)

    # -- NAS handling -----------------------------------------------------------------

    def deliver_nas(self, message: Any) -> None:
        if isinstance(message, nas5g.AuthenticationRequest5g):
            self._on_auth_request(message)
        elif isinstance(message, nas5g.SecurityModeCommand5g):
            self._send_nas(nas5g.SecurityModeComplete5g(imsi=self.imsi))
        elif isinstance(message, nas5g.RegistrationAccept):
            self.guti_5g = message.guti_5g
            self._send_nas(nas5g.RegistrationComplete(imsi=self.imsi))
            self._finish(True)
        elif isinstance(message, nas5g.RegistrationReject):
            self._finish(False)
        elif isinstance(message, nas5g.PduSessionEstablishmentAccept):
            self.ip_address = message.ue_ip
            self._finish(True)
        elif isinstance(message, nas5g.PduSessionEstablishmentReject):
            self._finish(False)
        elif isinstance(message, nas5g.PduSessionReleaseComplete):
            self._finish(True)

    # -- internals ------------------------------------------------------------------------

    def _run_procedure(self, result: Event, initial_message: Any,
                       success_state: str, failure_state: str,
                       success_counter: str, failure_counter: str,
                       connect: bool = True):
        if connect:
            try:
                self.gnb.rrc_connect(self)
            except CellCapacityError:  # cell full or NG down: fails cleanly
                self.state = failure_state
                self.stats[failure_counter] += 1
                result.succeed(False)
                return
        inner = self._procedure_done
        self._send_nas(initial_message)
        # Cancelable guard: revoked when the race resolves instead of rotting
        # in the scheduler for the full guard window.
        guard = self.sim.event("guard")
        guard_timer = self.sim.schedule(self.guard_timer, guard.succeed)
        try:
            race = yield self.sim.any_of([inner, guard])
        except Exception:  # any failed procedure event means the attempt failed
            race = {}
        finally:
            guard_timer.cancel()
        ok = inner in race and inner.value is True
        if ok:
            self.state = success_state
            self.stats[success_counter] += 1
            if (success_state == Ue5gState.SESSION_ACTIVE
                    and self.offered_mbps > 0):
                self.gnb.set_ue_offered_rate(self.imsi, self.offered_mbps)
        else:
            self.state = failure_state
            self.stats[failure_counter] += 1
            if failure_state == Ue5gState.DEREGISTERED:
                self.gnb.rrc_release(self)
        result.succeed(ok)

    def _on_auth_request(self, message: nas5g.AuthenticationRequest5g) -> None:
        try:
            network_sqn = auth.usim_verify_autn(
                self.k, self.opc, message.rand, message.autn, self.usim_sqn)
        except auth.AuthenticationFailure:
            self._finish(False)
            return
        self.usim_sqn = network_sqn
        res = auth.usim_compute_res(self.k, self.opc, message.rand)
        self._send_nas(nas5g.AuthenticationResponse5g(imsi=self.imsi,
                                                      res_star=res))

    def _finish(self, ok: bool) -> None:
        if self._procedure_done is not None and \
                not self._procedure_done.triggered:
            self._procedure_done.succeed(ok)

    def _send_nas(self, message: Any) -> None:
        self.gnb.uplink_nas(self, message)
