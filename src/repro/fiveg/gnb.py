"""gNB model: the 5G base station.

Functionally parallel to :class:`~repro.lte.enodeb.Enodeb` - radio
admission, NAS relay over NGAP, GTP-U anchor - with 5G message types.  It
talks to the same AGW node; the AGW's NGAP frontend terminates the
protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..lte.identifiers import TeidAllocator
from ..lte.radio import CellCapacityError, CellConfig, CellModel
from ..net.rpc import RpcChannel, RpcError, RpcServer
from ..net.simnet import Network
from ..sim.kernel import Event, Simulator
from . import ngap


@dataclass
class GnbUeContext:
    ue: "Ue5g"
    ran_ue_id: int
    amf_ue_id: Optional[int] = None
    gnb_teid: Optional[int] = None
    agw_teid: Optional[int] = None


class Gnb:
    """A simulated gNB attached to an AGW over NGAP."""

    def __init__(self, sim: Simulator, network: Network, gnb_id: str,
                 core_node: str, cell_config: Optional[CellConfig] = None,
                 ngap_deadline: float = 10.0):
        self.sim = sim
        self.network = network
        self.gnb_id = gnb_id
        self.core_node = core_node
        self.cell = CellModel(cell_config)
        self.ngap_deadline = ngap_deadline
        self._ue_ids = itertools.count(1)
        self._teids = TeidAllocator(start=0x3000)
        self._by_imsi: Dict[str, GnbUeContext] = {}
        self._by_ran_ue_id: Dict[int, GnbUeContext] = {}
        self.ng_ready = False
        self.stats = {"uplink_nas": 0, "downlink_nas": 0,
                      "pdu_setups": 0, "releases": 0, "uplink_errors": 0}
        network.add_node(gnb_id)
        self._server = RpcServer(sim, network, gnb_id)
        self._server.register(ngap.GNB_NGAP_SERVICE, "downlink_nas",
                              self._on_downlink_nas)
        self._server.register(ngap.GNB_NGAP_SERVICE, "pdu_session_setup",
                              self._on_pdu_session_setup)
        self._server.register(ngap.GNB_NGAP_SERVICE, "ue_context_release",
                              self._on_ue_context_release)
        self._channel = RpcChannel(sim, network, gnb_id, core_node)

    def ng_setup(self) -> Event:
        done = self.sim.event(f"gnb.{self.gnb_id}.ngsetup")

        def proc(sim):
            response = yield self._channel.call(
                ngap.NGAP_SERVICE, "setup",
                ngap.NgSetupRequest(gnb_id=self.gnb_id),
                deadline=self.ngap_deadline)
            self.ng_ready = bool(response.accepted)
            return response

        p = self.sim.spawn(proc(self.sim), name=f"ngsetup:{self.gnb_id}")
        p.add_callback(lambda ev: done.succeed(ev.value) if ev.ok
                       else done.fail(ev.value))
        return done

    # -- UE-facing ------------------------------------------------------------------

    def rrc_connect(self, ue: "Ue5g") -> GnbUeContext:
        if not self.ng_ready:
            raise CellCapacityError(f"{self.gnb_id}: NG not established")
        existing = self._by_imsi.get(ue.imsi)
        if existing is not None:
            return existing
        self.cell.admit(ue.imsi)
        context = GnbUeContext(ue=ue, ran_ue_id=next(self._ue_ids))
        self._by_imsi[ue.imsi] = context
        self._by_ran_ue_id[context.ran_ue_id] = context
        return context

    def rrc_release(self, ue: "Ue5g") -> None:
        context = self._by_imsi.pop(ue.imsi, None)
        if context is None:
            return
        self.stats["releases"] += 1
        self._by_ran_ue_id.pop(context.ran_ue_id, None)
        self.cell.release(ue.imsi)
        if context.gnb_teid is not None:
            self._teids.release(context.gnb_teid)

    def uplink_nas(self, ue: "Ue5g", message: Any) -> None:
        context = self._by_imsi.get(ue.imsi)
        if context is None:
            return
        self.stats["uplink_nas"] += 1
        self.sim.call_later(ue.radio_delay, self._send_uplink, context, message)

    def set_ue_offered_rate(self, imsi: str, mbps: float) -> None:
        if self.cell.is_active(imsi):
            self.cell.set_offered_rate(imsi, mbps)

    def context_for(self, imsi: str) -> Optional[GnbUeContext]:
        return self._by_imsi.get(imsi)

    # -- internals ---------------------------------------------------------------------

    def _send_uplink(self, context: GnbUeContext, message: Any) -> None:
        if context.amf_ue_id is None:
            wrapped: Any = ngap.InitialUeMessage5g(
                gnb_id=self.gnb_id, ran_ue_id=context.ran_ue_id, nas=message)
        else:
            wrapped = ngap.UplinkNasTransport5g(
                gnb_id=self.gnb_id, ran_ue_id=context.ran_ue_id,
                amf_ue_id=context.amf_ue_id, nas=message)

        def proc(sim):
            try:
                yield self._channel.call(ngap.NGAP_SERVICE, "uplink", wrapped,
                                         deadline=self.ngap_deadline)
            except RpcError:
                self.stats["uplink_errors"] += 1

        self.sim.spawn(proc(self.sim), name=f"ng-uplink:{self.gnb_id}")

    def _on_downlink_nas(self, message: ngap.DownlinkNasTransport5g) -> Any:
        context = self._by_ran_ue_id.get(message.ran_ue_id)
        if context is None:
            return {"delivered": False}
        context.amf_ue_id = message.amf_ue_id
        self.stats["downlink_nas"] += 1
        self.sim.call_later(context.ue.radio_delay,
                            context.ue.deliver_nas, message.nas)
        return {"delivered": True}

    def _on_pdu_session_setup(
            self, message: ngap.PduSessionResourceSetupRequest) -> Any:
        context = self._by_ran_ue_id.get(message.ran_ue_id)
        if context is None:
            return ngap.PduSessionResourceSetupResponse(
                ran_ue_id=message.ran_ue_id, amf_ue_id=message.amf_ue_id,
                pdu_session_id=message.pdu_session_id, gnb_teid=0,
                success=False)
        self.stats["pdu_setups"] += 1
        context.amf_ue_id = message.amf_ue_id
        context.agw_teid = message.agw_teid
        if context.gnb_teid is None:
            context.gnb_teid = self._teids.allocate()
        if message.nas is not None:
            self.sim.call_later(context.ue.radio_delay,
                                context.ue.deliver_nas, message.nas)
        return ngap.PduSessionResourceSetupResponse(
            ran_ue_id=message.ran_ue_id, amf_ue_id=message.amf_ue_id,
            pdu_session_id=message.pdu_session_id,
            gnb_teid=context.gnb_teid, gnb_address=self.gnb_id, success=True)

    def _on_ue_context_release(
            self, message: ngap.UeContextReleaseCommand5g) -> Any:
        context = self._by_ran_ue_id.get(message.ran_ue_id)
        if context is not None:
            ue = context.ue
            self.rrc_release(ue)
            if message.cause not in ("deregistration",):
                self.sim.call_later(ue.radio_delay, ue.notify_session_error,
                                    message.cause)
        return ngap.UeContextReleaseComplete5g(
            ran_ue_id=message.ran_ue_id, amf_ue_id=message.amf_ue_id)
