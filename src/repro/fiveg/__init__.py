"""5G substrate: gNB, NGAP, 5G NAS, 5G UE."""

from . import nas5g, ngap
from .gnb import Gnb, GnbUeContext
from .ue5g import Ue5g, Ue5gState

__all__ = ["Gnb", "GnbUeContext", "Ue5g", "Ue5gState", "nas5g", "ngap"]
