"""5G NAS messages (registration and PDU session management).

5G splits what LTE's attach bundles together: *registration* (identity,
authentication, security) and *PDU session establishment* (IP + user plane)
are separate procedures.  Magma maps both onto the same generic AGW
functions (Table 1: AMF -> access management, SMF -> session management).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Nas5gMessage:
    imsi: str  # SUPI; carried as a SUCI in reality


@dataclass(frozen=True)
class RegistrationRequest(Nas5gMessage):
    registration_type: str = "initial"


@dataclass(frozen=True)
class AuthenticationRequest5g(Nas5gMessage):
    rand: bytes = b""
    autn: bytes = b""


@dataclass(frozen=True)
class AuthenticationResponse5g(Nas5gMessage):
    res_star: bytes = b""


@dataclass(frozen=True)
class SecurityModeCommand5g(Nas5gMessage):
    integrity_algo: str = "nia2"
    ciphering_algo: str = "nea2"


@dataclass(frozen=True)
class SecurityModeComplete5g(Nas5gMessage):
    pass


@dataclass(frozen=True)
class RegistrationAccept(Nas5gMessage):
    guti_5g: str = ""


@dataclass(frozen=True)
class RegistrationComplete(Nas5gMessage):
    pass


@dataclass(frozen=True)
class RegistrationReject(Nas5gMessage):
    cause: str = "network failure"


@dataclass(frozen=True)
class PduSessionEstablishmentRequest(Nas5gMessage):
    pdu_session_id: int = 1
    dnn: str = "internet"   # the 5G APN


@dataclass(frozen=True)
class PduSessionEstablishmentAccept(Nas5gMessage):
    pdu_session_id: int = 1
    ue_ip: str = ""
    qfi: int = 9            # QoS flow id (5G's richer QoS model)


@dataclass(frozen=True)
class PduSessionEstablishmentReject(Nas5gMessage):
    pdu_session_id: int = 1
    cause: str = ""


@dataclass(frozen=True)
class PduSessionReleaseRequest(Nas5gMessage):
    pdu_session_id: int = 1


@dataclass(frozen=True)
class PduSessionReleaseComplete(Nas5gMessage):
    pdu_session_id: int = 1


@dataclass(frozen=True)
class DeregistrationRequest(Nas5gMessage):
    switch_off: bool = False


@dataclass(frozen=True)
class DeregistrationAccept(Nas5gMessage):
    pass
