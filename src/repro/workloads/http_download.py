"""HTTP download traffic model.

The paper's typical-site workload: each attached UE performs HTTP
downloads at 1.5 Mbps (a fixed-wireless subscriber streaming video).  In
the fluid model a download is simply a sustained offered rate for a
duration; finite downloads complete when their byte count has been served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lte.ue import Ue
from ..sim.kernel import Event, Simulator

DEFAULT_RATE_MBPS = 1.5


@dataclass
class DownloadResult:
    imsi: str
    requested_bytes: Optional[int]
    started_at: float
    finished_at: float


class HttpDownload:
    """A sustained (or finite) download for one UE."""

    def __init__(self, sim: Simulator, ue: Ue,
                 rate_mbps: float = DEFAULT_RATE_MBPS,
                 size_bytes: Optional[int] = None):
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError("size must be positive")
        self.sim = sim
        self.ue = ue
        self.rate_mbps = rate_mbps
        self.size_bytes = size_bytes
        self.done: Event = sim.event(f"download.{ue.imsi}")

    def start(self) -> Event:
        self.ue.set_offered_rate(self.rate_mbps)
        if self.size_bytes is None:
            return self.done  # endless stream: never triggers
        # Finite download: in the fluid model the *offered* duration bounds
        # completion; actual completion depends on achieved throughput,
        # which the session's byte counters reflect.
        self.sim.spawn(self._watch(), name=f"download:{self.ue.imsi}")
        return self.done

    def _watch(self):
        started = self.sim.now
        target = self.size_bytes
        while True:
            yield self.sim.timeout(1.0)
            # Fluid approximation: the offered rate integrated over time
            # bounds how much could have been served.
            expected = (self.sim.now - started) * self.rate_mbps * 1e6 / 8.0
            if expected >= target:
                self.ue.set_offered_rate(0.0)
                if not self.done.triggered:
                    self.done.succeed(DownloadResult(
                        imsi=self.ue.imsi, requested_bytes=target,
                        started_at=started, finished_at=self.sim.now))
                return


def start_streaming(ues, rate_mbps: float = DEFAULT_RATE_MBPS) -> None:
    """Convenience: put every registered UE on an endless stream."""
    for ue in ues:
        ue.set_offered_rate(rate_mbps)
