"""Synthetic diurnal usage generator (Fig. 9's AccessParks trace).

We cannot access AccessParks's production data, so this generator produces
the *shape* Fig. 9 reports for a fixed-wireless hotspot network: hourly
active-subscriber counts and aggregate throughput over weeks, with

- a strong diurnal cycle (evening peak, pre-dawn trough),
- a weekend uplift (the deployment serves parks/campgrounds),
- slow week-over-week subscriber growth (the network was expanding), and
- lognormal-ish noise.

Deterministic given (seed, parameters) - replicable like everything else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..sim.rng import RngRegistry

HOURS_PER_DAY = 24


@dataclass
class DiurnalConfig:
    sites: int = 14                       # §4.3.1: fourteen sites
    aps_per_site: int = 15                # > 200 APs total
    base_subscribers: int = 350           # network-wide evening-peak users
    growth_per_week: float = 0.02         # expanding deployment
    weekend_uplift: float = 1.35
    peak_hour: int = 20                   # 8 pm local
    trough_fraction: float = 0.12         # 4 am load vs peak
    mbps_per_subscriber: float = 2.2      # hotspot browsing/streaming mix
    noise_sigma: float = 0.10
    days: int = 61                        # Mar-Apr 2022

    def __post_init__(self):
        if self.sites < 1 or self.base_subscribers < 1:
            raise ValueError("sites and subscribers must be positive")
        if not 0 < self.trough_fraction <= 1:
            raise ValueError("trough fraction must be in (0, 1]")


@dataclass
class HourSample:
    hour_index: int
    day: int
    hour_of_day: int
    active_subscribers: int
    throughput_mbps: float


def diurnal_factor(hour_of_day: int, peak_hour: int,
                   trough_fraction: float) -> float:
    """Smooth day-cycle factor in [trough_fraction, 1]."""
    phase = 2 * math.pi * (hour_of_day - peak_hour) / HOURS_PER_DAY
    # Cosine bump centered at peak_hour, normalized to [0, 1].
    bump = (math.cos(phase) + 1) / 2
    return trough_fraction + (1 - trough_fraction) * bump ** 1.5


def generate_trace(config: DiurnalConfig = None,
                   seed: int = 0) -> List[HourSample]:
    """Hourly samples for the configured period."""
    config = config or DiurnalConfig()
    rng = RngRegistry(seed).stream("diurnal")
    samples: List[HourSample] = []
    for day in range(config.days):
        weekday = day % 7
        weekend = weekday in (5, 6)
        week = day / 7.0
        growth = (1 + config.growth_per_week) ** week
        day_factor = config.weekend_uplift if weekend else 1.0
        for hour in range(HOURS_PER_DAY):
            base = (config.base_subscribers * growth * day_factor *
                    diurnal_factor(hour, config.peak_hour,
                                   config.trough_fraction))
            noise = rng.lognormvariate(0, config.noise_sigma)
            subscribers = max(0, int(round(base * noise)))
            throughput = (subscribers * config.mbps_per_subscriber *
                          rng.lognormvariate(0, config.noise_sigma / 2))
            samples.append(HourSample(
                hour_index=day * HOURS_PER_DAY + hour, day=day,
                hour_of_day=hour, active_subscribers=subscribers,
                throughput_mbps=throughput))
    return samples


def summarize(samples: List[HourSample]) -> dict:
    """Headline statistics for EXPERIMENTS.md."""
    if not samples:
        raise ValueError("empty trace")
    subs = [s.active_subscribers for s in samples]
    tput = [s.throughput_mbps for s in samples]
    by_hour = {}
    for sample in samples:
        by_hour.setdefault(sample.hour_of_day, []).append(
            sample.active_subscribers)
    hourly_mean = {h: sum(v) / len(v) for h, v in by_hour.items()}
    peak_hour = max(hourly_mean, key=hourly_mean.get)
    trough_hour = min(hourly_mean, key=hourly_mean.get)
    return {
        "hours": len(samples),
        "peak_subscribers": max(subs),
        "mean_subscribers": sum(subs) / len(subs),
        "peak_throughput_mbps": max(tput),
        "mean_throughput_mbps": sum(tput) / len(tput),
        "peak_hour_of_day": peak_hour,
        "trough_hour_of_day": trough_hour,
        "peak_to_trough_ratio": hourly_mean[peak_hour] /
                                max(hourly_mean[trough_hour], 1e-9),
    }
