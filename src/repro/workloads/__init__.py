"""Workload generators: attach storms, fleets, traffic, IoT, diurnal usage."""

from .attach_storm import AttachRecord, AttachStorm
from .fleet import AgwFleetAdapter, CohortSpec, UeFleet, binomial
from .diurnal import (
    DiurnalConfig,
    HourSample,
    diurnal_factor,
    generate_trace,
    summarize,
)
from .http_download import DEFAULT_RATE_MBPS, HttpDownload, start_streaming
from .iot import IotWorkload
from .traffic import TrafficEngine

__all__ = [
    "AgwFleetAdapter",
    "AttachRecord",
    "AttachStorm",
    "CohortSpec",
    "DEFAULT_RATE_MBPS",
    "DiurnalConfig",
    "HourSample",
    "HttpDownload",
    "IotWorkload",
    "TrafficEngine",
    "UeFleet",
    "binomial",
    "diurnal_factor",
    "generate_trace",
    "start_streaming",
    "summarize",
]
