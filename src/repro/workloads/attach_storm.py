"""Attach workloads: the control-plane load generators of §4.1-4.2.

An attach storm brings ``num_ues`` UEs onto the network at a configured
rate (the paper: 3 UE/s for the typical-site experiment; a sweep of rates
for Fig. 6), optionally starting a per-UE download once attached.  Results
are recorded per attempt so the harness can compute the paper's
*connection success rate* in 5-second bins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..lte.ue import AttachOutcome, Ue
from ..sim.kernel import Simulator
from ..sim.monitor import Monitor


@dataclass
class AttachRecord:
    imsi: str
    started_at: float
    finished_at: float
    success: bool
    latency: float
    cause: str = ""


class AttachStorm:
    """Attaches a population of UEs at a fixed rate."""

    def __init__(self, sim: Simulator, ues: List[Ue], rate_per_sec: float,
                 offered_mbps_after_attach: float = 0.0,
                 monitor: Optional[Monitor] = None,
                 on_attached: Optional[Callable[[Ue], None]] = None,
                 retries: int = 0, retry_delay: float = 3.0,
                 summary_only: bool = False, summary_bin_width: float = 5.0):
        if rate_per_sec <= 0:
            raise ValueError("attach rate must be positive")
        if retries < 0 or retry_delay <= 0:
            raise ValueError("retries must be >= 0 and delay positive")
        if summary_bin_width <= 0:
            raise ValueError("summary bin width must be positive")
        self.sim = sim
        self.ues = ues
        self.rate = rate_per_sec
        self.offered_mbps = offered_mbps_after_attach
        self.monitor = monitor
        self.on_attached = on_attached
        self.retries = retries
        self.retry_delay = retry_delay
        # Summary mode (fleet-scale storms): per-attempt AttachRecord
        # objects and the per-UE outcome dict grow O(attempts); with 10⁵+
        # UEs they are the storm's memory bill.  summary_only keeps exact
        # counters and fixed-width CSR bins instead — csr_bins() then only
        # answers for the configured width.
        self.summary_only = summary_only
        self.summary_bin_width = summary_bin_width
        self.records: List[AttachRecord] = []
        self.ue_outcomes: dict = {}   # imsi -> final success (after retries)
        self.done = sim.event("attach-storm-done")
        self._outstanding = 0
        self._launched = 0
        self._attempts_left: dict = {}
        self._attempts = 0
        self._successes = 0
        self._ue_final_ok = 0
        self._ue_final_total = 0
        self._bin_totals: dict = {}     # bin index -> attempts started there
        self._bin_successes: dict = {}
        self._next_index = 0

    def start(self) -> None:
        """Begin launching; rides the kernel's zero-allocation callback
        path (``call_later``) instead of a coroutine + per-launch Timeout,
        so a 10⁵-UE storm schedules one recycled entry per launch."""
        if self.ues:
            self.sim.call_later(0.0, self._launch_next)
        elif not self.done.triggered:
            self.done.succeed(self.records)

    def _launch_next(self) -> None:
        ue = self.ues[self._next_index]
        self._next_index += 1
        self._launch(ue)
        if self._next_index < len(self.ues):
            self.sim.call_later(1.0 / self.rate, self._launch_next)

    def _launch(self, ue: Ue, first: bool = True) -> None:
        if first:
            self._outstanding += 1
            self._launched += 1
            self._attempts_left[ue.imsi] = self.retries
        started = self.sim.now
        if self.offered_mbps > 0:
            ue.offered_mbps = self.offered_mbps
        attach_event = ue.attach()
        attach_event.add_callback(
            lambda ev: self._on_done(ue, started, ev.value))

    def _on_done(self, ue: Ue, started: float, outcome: AttachOutcome) -> None:
        self._attempts += 1
        if outcome.success:
            self._successes += 1
        bin_index = int(started / self.summary_bin_width)
        self._bin_totals[bin_index] = self._bin_totals.get(bin_index, 0) + 1
        if outcome.success:
            self._bin_successes[bin_index] = \
                self._bin_successes.get(bin_index, 0) + 1
        if not self.summary_only:
            self.records.append(AttachRecord(
                imsi=ue.imsi, started_at=started, finished_at=self.sim.now,
                success=outcome.success, latency=outcome.latency,
                cause=outcome.cause))
        if self.monitor is not None:
            self.monitor.record("attach.outcome", self.sim.now,
                                1.0 if outcome.success else 0.0)
            if outcome.success:
                self.monitor.record("attach.latency", self.sim.now,
                                    outcome.latency)
        if not outcome.success and self._attempts_left.get(ue.imsi, 0) > 0:
            # The UE retries after T3411-style backoff (still one UE; each
            # attempt is its own CSR data point, as the paper counts them).
            # Retry timers are never revoked, so take the recycled path.
            self._attempts_left[ue.imsi] -= 1
            self.sim.call_later(self.retry_delay, self._launch, ue, False)
            return
        self._outstanding -= 1
        self._attempts_left.pop(ue.imsi, None)
        self._ue_final_total += 1
        if outcome.success:
            self._ue_final_ok += 1
        if not self.summary_only:
            self.ue_outcomes[ue.imsi] = outcome.success
        if outcome.success and self.on_attached is not None:
            self.on_attached(ue)
        if self._launched == len(self.ues) and self._outstanding == 0 \
                and not self.done.triggered:
            self.done.succeed(self.records)

    # -- metrics -------------------------------------------------------------------

    def success_count(self) -> int:
        return self._successes

    def attempt_count(self) -> int:
        return self._attempts

    def ue_success_fraction(self) -> float:
        """Fraction of UEs that ended up attached (after retries)."""
        if not self._ue_final_total:
            raise ValueError("no attach attempts recorded")
        return self._ue_final_ok / self._ue_final_total

    def overall_csr(self) -> float:
        if not self._attempts:
            raise ValueError("no attach attempts recorded")
        return self._successes / self._attempts

    def csr_bins(self, width: float = 5.0) -> List[tuple]:
        """Connection success rate per time bin, the Fig. 6 metric.

        Binned by *attempt start time*; returns [(bin_start, csr), ...]
        skipping empty bins.  In summary mode only the configured
        ``summary_bin_width`` is answerable (per-attempt records are not
        retained); other widths raise.
        """
        if width == self.summary_bin_width:
            return [(i * width,
                     self._bin_successes.get(i, 0) / self._bin_totals[i])
                    for i in sorted(self._bin_totals)]
        if self.summary_only:
            raise ValueError(
                f"summary-mode storm binned at {self.summary_bin_width}s; "
                f"csr_bins({width}) needs per-attempt records")
        if not self.records:
            return []
        t_end = max(r.started_at for r in self.records) + width
        nbins = int(t_end / width) + 1
        totals = [0] * nbins
        successes = [0] * nbins
        for record in self.records:
            index = int(record.started_at / width)
            totals[index] += 1
            if record.success:
                successes[index] += 1
        return [(i * width, successes[i] / totals[i])
                for i in range(nbins) if totals[i] > 0]

    def median_csr(self, width: float = 5.0) -> float:
        """Median of the per-bin CSRs (the Fig. 8 metric)."""
        from ..sim.monitor import median
        bins = self.csr_bins(width)
        if not bins:
            raise ValueError("no attach attempts recorded")
        return median([csr for (_start, csr) in bins])
