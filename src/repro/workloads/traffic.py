"""The fluid traffic engine: couples RAN, data plane, and CPU models.

Each tick (default 1 s) the engine walks the chain a real packet would:

1. **Radio**: each cell shares its capacity max-min across its active UEs'
   offered rates.
2. **Policy/data plane**: the AGW's pipeline shapes each UE's
   radio-admitted rate through its session meters (fluid mode).
3. **CPU**: the total admitted rate becomes user-plane CPU demand; the CPU
   model's service fraction (which reflects contention with control-plane
   work - the heart of Figs. 5-8) scales what is actually forwarded.
4. **Accounting**: achieved bytes are recorded into ``sessiond`` (driving
   usage caps and OCS quotas) and into the experiment monitor.

Home-routed sessions additionally pass through the GTP aggregator's
capacity (§3.6).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.agw.gateway import AccessGateway
from ..core.federation.gtp_aggregator import GtpAggregator
from ..lte.enodeb import Enodeb
from ..lte.ue import Ue
from ..sim.kernel import Simulator
from ..sim.monitor import Monitor


class TrafficEngine:
    """Drives fluid user-plane traffic for one AGW's cell site(s)."""

    def __init__(self, sim: Simulator, agw: AccessGateway,
                 enbs: Iterable[Enodeb], monitor: Optional[Monitor] = None,
                 tick: float = 1.0, gtpa: Optional[GtpAggregator] = None,
                 record_usage: bool = True):
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.sim = sim
        self.agw = agw
        self.enbs = list(enbs)
        self.monitor = monitor if monitor is not None else agw.context.monitor
        self.tick = tick
        self.gtpa = gtpa
        self.record_usage = record_usage
        self._running = False
        self.last_achieved_mbps = 0.0
        self.last_admitted_mbps = 0.0
        self.last_radio_mbps = 0.0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._loop(), name=f"traffic:{self.agw.node}")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.sim.timeout(self.tick)
            if not self._running:
                return
            self.step()

    def step(self) -> float:
        """One accounting tick; returns achieved aggregate Mbps."""
        now = self.sim.now
        # 1. Radio allocation per cell.
        radio_rates: Dict[str, float] = {}
        for enb in self.enbs:
            radio_rates.update(enb.cell.allocate())
        self.last_radio_mbps = sum(radio_rates.values())
        # 2. Policy shaping through the data plane (fluid walk).
        admitted: Dict[str, float] = {}
        for imsi, radio_mbps in radio_rates.items():
            if radio_mbps <= 0:
                continue
            admitted[imsi] = self.agw.admitted_downlink(imsi, radio_mbps)
        # 2b. Home-routed sessions also traverse the GTP aggregator.
        if self.gtpa is not None:
            for imsi in list(admitted):
                session = self.agw.sessiond.session(imsi)
                if session is not None and session.home_routed:
                    self.gtpa.offer(self.agw.node, imsi, admitted[imsi])
            gtpa_alloc = self.gtpa.allocate()
            for imsi in list(admitted):
                session = self.agw.sessiond.session(imsi)
                if session is not None and session.home_routed:
                    admitted[imsi] = gtpa_alloc.get((self.agw.node, imsi), 0.0)
        total_admitted = sum(admitted.values())
        self.last_admitted_mbps = total_admitted
        # 3. CPU: set demand for the *next* quantum; scale by the service
        # fraction the CPU actually delivered over the last one.
        fraction = self.agw.user_plane_service_fraction()
        self.agw.set_user_plane_load(total_admitted)
        achieved_total = 0.0
        for imsi, mbps in admitted.items():
            achieved = mbps * fraction
            achieved_total += achieved
            if achieved <= 0:
                continue
            used_bytes = int(achieved * 1e6 / 8.0 * self.tick)
            if self.record_usage:
                self.agw.sessiond.record_usage(imsi, dl_bytes=used_bytes,
                                               ul_bytes=0)
            self.agw.pipelined.record_fluid_usage(imsi, achieved, self.tick)
        self.last_achieved_mbps = achieved_total
        self.monitor.record(f"traffic.{self.agw.node}.achieved_mbps", now,
                            achieved_total)
        self.monitor.record(f"traffic.{self.agw.node}.offered_mbps", now,
                            self.last_radio_mbps)
        return achieved_total
