"""IoT workload: many devices, occasional tiny messages (§4.2).

The paper uses IoT as the canonical *control-plane-heavy* workload: large
numbers of devices that attach, exchange a few kilobytes, and detach (or
idle and periodically send service requests).  Per-device throughput is
negligible; the load is all signaling - which is what stresses the CUPS
dimensioning question Figs. 7-8 explore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..lte.ue import Ue
from ..sim.kernel import Simulator
from ..sim.monitor import Monitor
from ..sim.rng import RngRegistry


@dataclass
class IotCycleStats:
    attaches: int = 0
    successes: int = 0
    failures: int = 0
    bytes_sent: int = 0


class IotWorkload:
    """Devices repeatedly attach, send a small report, and detach."""

    MODE_DETACH = "detach"   # attach -> report -> detach each cycle
    MODE_IDLE = "idle"       # attach once, then idle <-> service-request

    def __init__(self, sim: Simulator, ues: List[Ue],
                 report_interval: float = 60.0,
                 report_bytes: int = 2_000,
                 jitter_fraction: float = 0.5,
                 rng: Optional[RngRegistry] = None,
                 monitor: Optional[Monitor] = None,
                 sessiond=None, mode: str = MODE_DETACH):
        if report_interval <= 0 or report_bytes <= 0:
            raise ValueError("interval and report size must be positive")
        if mode not in (self.MODE_DETACH, self.MODE_IDLE):
            raise ValueError(f"unknown IoT mode {mode!r}")
        self.mode = mode
        self.sim = sim
        self.ues = ues
        self.report_interval = report_interval
        self.report_bytes = report_bytes
        self.jitter_fraction = jitter_fraction
        self.rng = (rng or RngRegistry(0)).stream("iot.jitter")
        self.monitor = monitor
        self.sessiond = sessiond
        self.stats = IotCycleStats()
        self._running = False

    def start(self) -> None:
        self._running = True
        for ue in self.ues:
            # Desynchronize devices across the first interval.
            offset = self.rng.uniform(0, self.report_interval)
            self.sim.call_later(offset, self._spawn_device, ue)

    def stop(self) -> None:
        self._running = False

    def _spawn_device(self, ue: Ue) -> None:
        self.sim.spawn(self._device_loop(ue), name=f"iot:{ue.imsi}")

    def _device_loop(self, ue: Ue):
        while self._running:
            self.stats.attaches += 1
            if ue.state == "idle":
                # Idle-mode device: a lightweight service request instead
                # of a full attach (much cheaper control-plane-wise).
                ok = yield ue.service_request()
            else:
                outcome = yield ue.attach()
                ok = outcome.success
            if ok:
                self.stats.successes += 1
                # Report upload: tiny, modeled as direct usage accounting.
                if self.sessiond is not None:
                    self.sessiond.record_usage(ue.imsi, dl_bytes=0,
                                               ul_bytes=self.report_bytes)
                self.stats.bytes_sent += self.report_bytes
                yield self.sim.timeout(1.0)  # time on air for the report
                if self.mode == self.MODE_IDLE:
                    ue.go_idle()
                else:
                    ue.detach()
            else:
                self.stats.failures += 1
            if self.monitor is not None:
                self.monitor.record("iot.cycle", self.sim.now,
                                    1.0 if ok else 0.0)
            interval = self.report_interval
            if self.jitter_fraction > 0:
                interval *= 1.0 + self.rng.uniform(-self.jitter_fraction,
                                                   self.jitter_fraction)
            yield self.sim.timeout(max(1.0, interval))

    def success_rate(self) -> float:
        if self.stats.attaches == 0:
            raise ValueError("no IoT cycles have run")
        return self.stats.successes / self.stats.attaches
