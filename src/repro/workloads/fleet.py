"""Cohort-aggregated UE fleets: the million-UE scale-out abstraction.

Every subscriber being an individual kernel coroutine caps a run near 10⁴
UEs — each attach is ~30 scheduled events, each idle/resume cycle a handful
more.  The paper's deployments (§4.3) run five-digit gateway counts with
six-digit subscriber populations, so the next order of magnitude has to
come from aggregating the *population*, not from making each coroutine
cheaper (the PR 6 timer wheel already did that).

A :class:`UeFleet` models a large population as table-driven cohort state
machines.  Each :class:`CohortSpec` carries a size, per-UE transition
rates (attach / detach / idle / resume), an offered-traffic figure, and a
RAT label; the fleet partitions the cohort across its AGW hosts and keeps
only three integers per (cohort, host) bucket — detached / connected /
idle counts.  One batched periodic timer (``Simulator.schedule_periodic``,
the pooled zero-allocation path) advances *every* bucket per tick: the
number of UEs making each transition is drawn from seeded binomial
streams (one named RNG stream per bucket, so results are independent of
host iteration order), and the resulting aggregate load is injected
through batched AGW entry points — ``AccessManagement.bulk_attach``,
``Sessiond.bulk_create_fleet``/``bulk_terminate_fleet``,
``Pipelined.set_fleet_load`` — instead of per-UE NAS dialogues.

**Fidelity boundary.**  Aggregation keeps *counts* honest (admission
follows the same calibrated attach capacity the coroutine path saturates,
CPU telemetry sees the same fluid demand) but erases *per-procedure
dynamics* — there are no latency distributions, no traces, no retry
interleavings inside a bucket.  To keep those honest, a configurable
sampled sub-population rides along as real coroutine :class:`~repro.lte.ue.Ue`
objects threaded through real eNodeBs: the fleet drives them with the
same per-tick transition probabilities (Bernoulli per sampled UE, from
the cohort's dedicated sample stream), so their latency percentiles and
spans are an unbiased probe of the load the aggregate supplies.

A fleet with ``size=0`` cohorts and a 100% sample population degenerates
to a pure coroutine run driven by identical tick dynamics — which is
exactly how ``tests/test_fleet_calibration.py`` checks that the aggregate
and coroutine populations agree, and how ``benchmarks/bench_fleet.py``
measures the speedup between the two modes in one session.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..lte.ue import Ue, UeState
from ..obs import profiler as _profiler
from ..sim.kernel import PeriodicCall, Simulator
from ..sim.monitor import Monitor
from ..sim.rng import RngRegistry

KNOWN_RATS = ("lte", "wifi", "nr")

# Bounded-buffer size for fleet metric series: at one sample per tick per
# metric a 10⁶-tick run would otherwise hold 10⁶-entry lists per metric.
FLEET_METRIC_SAMPLES = 4096


def binomial(rng, n: int, p: float) -> int:
    """Deterministic Binomial(n, p) draw from a seeded ``random.Random``.

    Chooses the sampler by regime so a 10⁶-UE bucket costs microseconds:

    - mean and anti-mean both large: normal approximation (one gaussian),
      rounded and clamped — the error is far below cohort-level noise;
    - small p: geometric gap-skipping, O(successes) instead of O(n);
    - large p: mirrored small-p draw on the failures.

    All randomness comes from the caller's named stream, so replays are
    bit-identical for a fixed seed.
    """
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    mean = n * p
    if mean >= 32.0 and n - mean >= 32.0:
        draw = int(rng.normalvariate(mean, math.sqrt(mean * (1.0 - p))) + 0.5)
        return 0 if draw < 0 else (n if draw > n else draw)
    if p > 0.5:
        return n - binomial(rng, n, 1.0 - p)
    # Gap-skipping: successive success indices are geometric with
    # parameter p; count how many land inside [1, n].
    log_q = math.log1p(-p)
    successes = 0
    i = 0
    while True:
        u = rng.random()
        # u == 0.0 cannot happen (random() is in [0, 1)), log(u) safe via
        # max with a subnormal guard anyway.
        i += int(math.log(u if u > 0.0 else 5e-324) / log_q) + 1
        if i > n:
            return successes
        successes += 1


@dataclass(frozen=True)
class CohortSpec:
    """One homogeneous slice of the subscriber population.

    Rates are per-UE exponential rates (per second) for the state the UE
    is currently in: ``attach_rate`` applies to detached UEs,
    ``detach_rate`` and ``idle_rate`` to connected ones, ``resume_rate``
    to ECM-idle ones.  ``traffic_mbps`` is the offered downlink per
    *connected* UE, injected as fluid user-plane demand.
    """

    name: str
    size: int
    attach_rate: float = 0.01
    detach_rate: float = 0.0
    idle_rate: float = 0.0
    resume_rate: float = 0.0
    traffic_mbps: float = 0.0
    rat: str = "lte"

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"cohort {self.name!r}: size must be >= 0")
        for rate_name in ("attach_rate", "detach_rate", "idle_rate",
                          "resume_rate", "traffic_mbps"):
            if getattr(self, rate_name) < 0:
                raise ValueError(
                    f"cohort {self.name!r}: {rate_name} must be >= 0")
        if self.rat not in KNOWN_RATS:
            raise ValueError(f"cohort {self.name!r}: unknown RAT {self.rat!r}")


class _TickProbs:
    """Per-tick transition probabilities for one cohort (precomputed)."""

    __slots__ = ("attach", "detach", "idle", "resume")

    def __init__(self, spec: CohortSpec, dt: float):
        # P(at least one arrival in dt) for an exponential rate.
        self.attach = -math.expm1(-spec.attach_rate * dt)
        self.detach = -math.expm1(-spec.detach_rate * dt)
        self.idle = -math.expm1(-spec.idle_rate * dt)
        self.resume = -math.expm1(-spec.resume_rate * dt)


class CohortBucket:
    """Aggregate state of one cohort's share on one host: three integers."""

    __slots__ = ("spec", "probs", "rng", "detached", "connected", "idle")

    def __init__(self, spec: CohortSpec, probs: _TickProbs, rng,
                 size: int):
        self.spec = spec
        self.probs = probs
        self.rng = rng
        self.detached = size
        self.connected = 0
        self.idle = 0

    @property
    def attached(self) -> int:
        return self.connected + self.idle

    @property
    def size(self) -> int:
        return self.detached + self.connected + self.idle


class AgwFleetAdapter:
    """Fleet host backed by a real :class:`~repro.core.agw.AccessGateway`.

    Routes the fleet's batched transitions into the AGW's MME / sessiond /
    pipelined entry points, so aggregated load shows up in the same stats,
    session counts, CPU model, and check-in telemetry as coroutine UEs.
    """

    def __init__(self, agw: Any):
        self.agw = agw
        self.node = agw.node

    def fleet_attach(self, n: int, dt: float) -> int:
        return self.agw.mme.bulk_attach(n, dt)

    def fleet_detach(self, n: int) -> int:
        return self.agw.mme.bulk_detach(n)

    def fleet_set_load(self, offered_mbps: float) -> None:
        self.agw.pipelined.set_fleet_load(offered_mbps)

    def fleet_session_count(self) -> int:
        return self.agw.sessiond.session_count()


class _SampledUe:
    """A full-fidelity coroutine UE riding inside a cohort."""

    __slots__ = ("ue", "busy")

    def __init__(self, ue: Ue):
        self.ue = ue
        self.busy = False     # a procedure (attach/resume) is in flight


class _SampleGroup:
    """The sampled sub-population of one cohort (fleet-wide, not per-host)."""

    __slots__ = ("spec", "probs", "rng", "members")

    def __init__(self, spec: CohortSpec, probs: _TickProbs, rng,
                 members: List[_SampledUe]):
        self.spec = spec
        self.probs = probs
        self.rng = rng
        self.members = members


class UeFleet:
    """A cohort-aggregated UE population across one or more AGW hosts.

    ``hosts`` are :class:`AgwFleetAdapter`-shaped objects (anything with
    ``fleet_attach`` / ``fleet_detach`` / ``fleet_set_load`` and a ``node``
    name).  Each cohort is split evenly across hosts; all buckets advance
    on one batched periodic timer.  Call :meth:`start` before running the
    simulation and :meth:`stop` to end the ticking (or let the run window
    close around it).
    """

    def __init__(self, sim: Simulator, rng: RngRegistry, hosts: Sequence[Any],
                 cohorts: Sequence[CohortSpec], monitor: Optional[Monitor] = None,
                 tick: float = 1.0, name: str = "fleet",
                 metric_samples: int = FLEET_METRIC_SAMPLES):
        if not hosts:
            raise ValueError("fleet needs at least one host")
        if tick <= 0:
            raise ValueError("fleet tick must be positive")
        names = [spec.name for spec in cohorts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cohort names: {names}")
        self.sim = sim
        self.rng = rng
        self.monitor = monitor
        self.tick = tick
        self.name = name
        self.cohorts: Tuple[CohortSpec, ...] = tuple(cohorts)
        self._hosts = list(hosts)
        self._probs: Dict[str, _TickProbs] = {
            spec.name: _TickProbs(spec, tick) for spec in self.cohorts}
        # Host-major bucket layout: one fleet_attach/fleet_set_load call
        # per host per tick, covering all of its cohorts.
        self._by_host: List[Tuple[Any, List[CohortBucket]]] = []
        num_hosts = len(self._hosts)
        for host_index, host in enumerate(self._hosts):
            buckets = []
            for spec in self.cohorts:
                share = spec.size // num_hosts
                if host_index < spec.size % num_hosts:
                    share += 1
                buckets.append(CohortBucket(
                    spec, self._probs[spec.name],
                    rng.stream(f"fleet.{name}.{spec.name}.{host.node}"),
                    share))
            self._by_host.append((host, buckets))
        self._samples: List[_SampleGroup] = []
        self._ticker: Optional[PeriodicCall] = None
        self.ticks = 0
        self.counters = {
            "attach_attempts": 0, "attach_accepted": 0, "attach_rejected": 0,
            "detaches": 0, "idles": 0, "resumes": 0,
            "sample_attach_attempts": 0, "sample_attach_successes": 0,
            "sample_attach_failures": 0, "sample_detaches": 0,
            "sample_idles": 0, "sample_resumes": 0,
        }
        if monitor is not None:
            bounded = monitor.bounded_series
            self._s_attached = bounded(f"{name}.attached", metric_samples)
            self._s_connected = bounded(f"{name}.connected", metric_samples)
            self._s_offered = bounded(f"{name}.offered_mbps", metric_samples)
            self._s_attach_ok = bounded(f"{name}.attach_accepted",
                                        metric_samples)
            self._s_latency = bounded(f"{name}.sample.attach_latency",
                                      metric_samples)
        else:
            self._s_attached = self._s_connected = None
            self._s_offered = self._s_attach_ok = self._s_latency = None

    # -- population wiring -------------------------------------------------------

    def add_sample_ues(self, cohort_name: str, ues: Sequence[Ue]) -> None:
        """Attach full-fidelity sampled UEs to a cohort.

        The sampled UEs are *additional* population (size them as e.g. 1%
        of the cohort's aggregate size); they are driven by the cohort's
        tick probabilities through the real per-UE procedures.
        """
        for spec in self.cohorts:
            if spec.name == cohort_name:
                self._samples.append(_SampleGroup(
                    spec, self._probs[cohort_name],
                    self.rng.stream(f"fleet.{self.name}.{cohort_name}.sample"),
                    [_SampledUe(ue) for ue in ues]))
                return
        raise ValueError(f"no cohort named {cohort_name!r}")

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._ticker is not None and self._ticker.active:
            raise RuntimeError("fleet already started")
        self._ticker = self.sim.schedule_periodic(self.tick, self._advance)

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
        # Clear standing fluid demand so a stopped fleet costs nothing.
        for host, _buckets in self._by_host:
            host.fleet_set_load(0.0)
            host.fleet_attach(0, self.tick)

    # -- the batched tick --------------------------------------------------------

    def _advance(self) -> None:
        prof = _profiler.ACTIVE
        if prof is None:
            self._advance_tick()
            return
        prof.push("fleet.tick")
        try:
            self._advance_tick()
        finally:
            prof.pop()

    def _advance_tick(self) -> None:
        self.ticks += 1
        dt = self.tick
        counters = self.counters
        total_attached = 0
        total_connected = 0
        total_offered = 0.0
        total_accepted = 0
        for host, buckets in self._by_host:
            attempts_per_bucket = []
            host_attempts = 0
            host_detaches = 0
            host_offered = 0.0
            for bucket in buckets:
                probs = bucket.probs
                rng = bucket.rng
                # Connected-state exits first (detach beats idle on ties,
                # a fixed deterministic order), then idle resumes, then
                # new attach arrivals from the detached pool.
                detaches = binomial(rng, bucket.connected, probs.detach)
                bucket.connected -= detaches
                bucket.detached += detaches
                host_detaches += detaches
                idles = binomial(rng, bucket.connected, probs.idle)
                bucket.connected -= idles
                bucket.idle += idles
                resumes = binomial(rng, bucket.idle, probs.resume)
                bucket.idle -= resumes
                bucket.connected += resumes
                attempts = binomial(rng, bucket.detached, probs.attach)
                attempts_per_bucket.append(attempts)
                host_attempts += attempts
                counters["idles"] += idles
                counters["resumes"] += resumes
            counters["detaches"] += host_detaches
            counters["attach_attempts"] += host_attempts
            if host_detaches:
                host.fleet_detach(host_detaches)
            # One batched admission call per host per tick (also refreshes
            # the host's control-plane fluid demand when zero).
            accepted = host.fleet_attach(host_attempts, dt)
            counters["attach_accepted"] += accepted
            counters["attach_rejected"] += host_attempts - accepted
            total_accepted += accepted
            # Distribute accepted attaches across this host's buckets
            # first-come-first-served, rotating the starting cohort each
            # tick — deterministic, conserving, and no cohort is starved
            # forever when admission is the bottleneck.
            remaining = accepted
            nb = len(buckets)
            first = self.ticks % nb
            for offset in range(nb):
                j = (first + offset) % nb
                bucket = buckets[j]
                attempts = attempts_per_bucket[j]
                granted = attempts if attempts <= remaining else remaining
                bucket.detached -= granted
                bucket.connected += granted
                remaining -= granted
            for bucket in buckets:
                host_offered += bucket.connected * bucket.spec.traffic_mbps
                total_attached += bucket.attached
                total_connected += bucket.connected
            host.fleet_set_load(host_offered)
            total_offered += host_offered
        self._advance_samples()
        if self._s_attached is not None:
            now = self.sim.now
            self._s_attached.record(now, float(total_attached))
            self._s_connected.record(now, float(total_connected))
            self._s_offered.record(now, total_offered)
            self._s_attach_ok.record(now, float(total_accepted))

    def _advance_samples(self) -> None:
        counters = self.counters
        for group in self._samples:
            probs = group.probs
            rng = group.rng
            for member in group.members:
                if member.busy:
                    continue
                state = member.ue.state
                if state == UeState.DEREGISTERED:
                    if rng.random() < probs.attach:
                        self._sample_attach(member)
                elif state == UeState.REGISTERED:
                    # Same fixed precedence as the aggregate tick.
                    if rng.random() < probs.detach:
                        counters["sample_detaches"] += 1
                        member.ue.detach(switch_off=True)
                    elif rng.random() < probs.idle:
                        counters["sample_idles"] += 1
                        member.ue.go_idle()
                elif state == UeState.IDLE:
                    if rng.random() < probs.resume:
                        self._sample_resume(member)

    def _sample_attach(self, member: _SampledUe) -> None:
        counters = self.counters
        counters["sample_attach_attempts"] += 1
        member.busy = True

        def on_done(ev):
            member.busy = False
            outcome = ev.value
            if outcome.success:
                counters["sample_attach_successes"] += 1
                if self._s_latency is not None:
                    self._s_latency.record(self.sim.now, outcome.latency)
            else:
                counters["sample_attach_failures"] += 1

        member.ue.attach().add_callback(on_done)

    def _sample_resume(self, member: _SampledUe) -> None:
        self.counters["sample_resumes"] += 1
        member.busy = True

        def on_done(_ev):
            member.busy = False

        member.ue.service_request().add_callback(on_done)

    # -- reporting ---------------------------------------------------------------

    def population(self) -> int:
        """Aggregated subscribers (sampled UEs not included)."""
        return sum(bucket.size for _host, buckets in self._by_host
                   for bucket in buckets)

    def sample_population(self) -> int:
        return sum(len(group.members) for group in self._samples)

    def attached(self) -> int:
        return sum(bucket.attached for _host, buckets in self._by_host
                   for bucket in buckets)

    def connected(self) -> int:
        return sum(bucket.connected for _host, buckets in self._by_host
                   for bucket in buckets)

    def sample_attached(self) -> int:
        return sum(1 for group in self._samples for member in group.members
                   if member.ue.state in (UeState.REGISTERED, UeState.IDLE))

    def per_rat(self) -> Dict[str, int]:
        """Attached subscribers by RAT label (the cohort mix, aggregated)."""
        mix: Dict[str, int] = {}
        for _host, buckets in self._by_host:
            for bucket in buckets:
                mix[bucket.spec.rat] = (mix.get(bucket.spec.rat, 0)
                                        + bucket.attached)
        return mix

    def summary(self) -> Dict[str, Any]:
        return {
            "population": self.population(),
            "sample_population": self.sample_population(),
            "hosts": len(self._hosts),
            "cohorts": len(self.cohorts),
            "ticks": self.ticks,
            "attached": self.attached(),
            "connected": self.connected(),
            "sample_attached": self.sample_attached(),
            "per_rat": self.per_rat(),
            "counters": dict(self.counters),
        }
