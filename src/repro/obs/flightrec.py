"""Flight recorder: per-node bounded ring buffers of structured events.

Magma's AGWs run at the edge with intermittent backhaul, so the paper's
operational answer to "what happened just before the failure?" cannot be
a centralized log pipeline — it is a small always-on ring of the last N
structured events per node, cheap enough to leave enabled and snapshotted
automatically the moment something goes wrong (a SimSan report, an alert
firing, a crash/restore).

Design mirrors the SimSan enable/disable philosophy:

- **Disabled is the default and costs nothing.**  Components read
  ``sim.recorder`` (a kernel slot, ``None`` unless a
  :class:`FlightRecorder` installed itself) and skip logging entirely —
  one attribute load and an ``is not None`` test on the cold side of hot
  paths.  Call sites that want an unconditional log handle can use
  :func:`recorder_of`, which returns a shared NOOP singleton (the same
  class-swap-free trick as ``NOOP_TRACER``): every method is a no-op
  ``pass`` on an empty-``__slots__`` instance.
- **Records are printf-free.**  A :class:`LogRecord` carries sim-time,
  severity, component, node, an event name, and key/value fields — no
  format strings, so exporting to JSONL / Chrome-trace needs no parsing.
- **Trace correlation is ambient.**  At log time the recorder reads
  ``sim.ctx`` (the tracer's ambient span context); records emitted inside
  a traced procedure automatically carry its trace/span ids, linking ring
  contents to spans in the merged Chrome trace.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

SEVERITIES = ("debug", "info", "warn", "error")


class LogRecord:
    """One structured event. Immutable by convention; slots keep it small."""

    __slots__ = ("seq", "time", "severity", "component", "node", "event",
                 "trace_id", "span_id", "fields")

    def __init__(self, seq: int, time: float, severity: str, component: str,
                 node: str, event: str, trace_id: Optional[int],
                 span_id: Optional[int], fields: Dict[str, Any]):
        self.seq = seq
        self.time = time
        self.severity = severity
        self.component = component
        self.node = node
        self.event = event
        self.trace_id = trace_id
        self.span_id = span_id
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "time": self.time,
            "severity": self.severity,
            "component": self.component,
            "node": self.node,
            "event": self.event,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
        if self.fields:
            out["fields"] = self.fields
        return out

    def __repr__(self) -> str:
        return (f"<LogRecord #{self.seq} t={self.time:.4f} {self.severity} "
                f"{self.node}/{self.component} {self.event}>")


class NodeLog:
    """A bounded ring of records for one node (deque with maxlen)."""

    __slots__ = ("_rec", "node", "records")

    def __init__(self, rec: "FlightRecorder", node: str, capacity: int):
        self._rec = rec
        self.node = node
        self.records: deque = deque(maxlen=capacity)

    def log(self, severity: str, component: str, event: str,
            **fields: Any) -> LogRecord:
        rec = self._rec
        sim = rec.sim
        ctx = sim.ctx
        record = LogRecord(
            seq=rec._next_seq(),
            time=sim.now,
            severity=severity,
            component=component,
            node=self.node,
            event=event,
            trace_id=ctx.trace_id if ctx is not None else None,
            span_id=ctx.span_id if ctx is not None else None,
            fields=fields,
        )
        ring = self.records
        if len(ring) == ring.maxlen:
            rec.stats["dropped"] += 1
        ring.append(record)
        rec.stats["records"] += 1
        return record

    def debug(self, component: str, event: str, **fields: Any) -> LogRecord:
        return self.log("debug", component, event, **fields)

    def info(self, component: str, event: str, **fields: Any) -> LogRecord:
        return self.log("info", component, event, **fields)

    def warn(self, component: str, event: str, **fields: Any) -> LogRecord:
        return self.log("warn", component, event, **fields)

    def error(self, component: str, event: str, **fields: Any) -> LogRecord:
        return self.log("error", component, event, **fields)


class _NoopNodeLog:
    """Log handle that swallows everything; shared singleton, zero state."""

    __slots__ = ()

    def log(self, severity: str, component: str, event: str,
            **fields: Any) -> None:
        pass

    def debug(self, component: str, event: str, **fields: Any) -> None:
        pass

    def info(self, component: str, event: str, **fields: Any) -> None:
        pass

    def warn(self, component: str, event: str, **fields: Any) -> None:
        pass

    def error(self, component: str, event: str, **fields: Any) -> None:
        pass


class _NoopRecorder:
    """Recorder stand-in when none is installed (mirrors NOOP_TRACER)."""

    __slots__ = ()

    def node(self, name: str) -> _NoopNodeLog:
        return NOOP_LOG

    def snapshot(self, reason: str, node: Optional[str] = None) -> None:
        return None

    def records(self) -> List[LogRecord]:
        return []


NOOP_LOG = _NoopNodeLog()
NOOP_RECORDER = _NoopRecorder()


def recorder_of(sim) -> Any:
    """The sim's installed recorder, or the shared NOOP one."""
    rec = getattr(sim, "recorder", None)
    return rec if rec is not None else NOOP_RECORDER


class FlightRecorder:
    """Per-node bounded rings plus failure snapshots.

    ``capacity`` bounds each node's ring; ``snapshot_tail`` is how many of
    the newest records (across all nodes, by global sequence) a snapshot
    preserves; ``max_snapshots`` bounds the snapshot list itself (oldest
    dropped) so a report storm cannot grow memory without bound.
    """

    def __init__(self, sim, capacity: int = 256, snapshot_tail: int = 32,
                 max_snapshots: int = 64, install: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.snapshot_tail = snapshot_tail
        self.snapshots: deque = deque(maxlen=max_snapshots)
        self.stats = {"records": 0, "dropped": 0, "snapshots": 0}
        self._nodes: Dict[str, NodeLog] = {}
        self._seq = 0
        if install:
            sim.recorder = self

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def node(self, name: str) -> NodeLog:
        log = self._nodes.get(name)
        if log is None:
            log = NodeLog(self, name, self.capacity)
            self._nodes[name] = log
        return log

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def records(self, node: Optional[str] = None,
                severity: Optional[str] = None) -> List[LogRecord]:
        """Retained records in global emission order (by sequence)."""
        if node is not None:
            out: Iterable[LogRecord] = self._nodes[node].records \
                if node in self._nodes else ()
        else:
            merged: List[LogRecord] = []
            for log in self._nodes.values():
                merged.extend(log.records)
            merged.sort(key=lambda r: r.seq)
            out = merged
        if severity is not None:
            floor = SEVERITIES.index(severity)
            return [r for r in out if SEVERITIES.index(r.severity) >= floor]
        return list(out)

    def snapshot(self, reason: str,
                 node: Optional[str] = None) -> Dict[str, Any]:
        """Freeze the newest ``snapshot_tail`` records under a reason tag.

        Called automatically on SimSan reports, alert firings, and
        gateway crash/restore, so every failure ships its last-N-events
        context without anyone having to remember to dump the rings.
        """
        tail = self.records(node=node)[-self.snapshot_tail:]
        snap = {
            "reason": reason,
            "time": self.sim.now,
            "node": node,
            "records": [r.as_dict() for r in tail],
        }
        self.snapshots.append(snap)
        self.stats["snapshots"] += 1
        return snap

    # -- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        """All retained records, one JSON object per line, then snapshots."""
        lines = [json.dumps(r.as_dict(), sort_keys=True)
                 for r in self.records()]
        for snap in self.snapshots:
            lines.append(json.dumps({"snapshot": snap}, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the record count."""
        text = self.to_jsonl()
        with open(path, "w") as fh:
            fh.write(text)
        return self.stats["records"] - self.stats["dropped"]
