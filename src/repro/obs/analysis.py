"""Trace analysis: critical-path breakdowns and per-procedure summaries.

Answers the debugging questions the paper's operational story needs
("why did this attach take 900 ms?"): for each trace, where the time went
by component (self-time, excluding child spans), and across traces,
latency percentiles per procedure type.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim.monitor import percentile
from .tracing import Span


def _merged_intervals(intervals: List[Tuple[float, float]]
                      ) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping (start, end) intervals."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _overlap_length(lo: float, hi: float,
                    merged: List[Tuple[float, float]]) -> float:
    """Length of [lo, hi] covered by a *merged* interval list."""
    total = 0.0
    for a, b in merged:
        if b <= lo:
            continue
        if a >= hi:
            break
        total += min(b, hi) - max(a, lo)
    return total


class TraceView:
    """One assembled trace: a root span plus its descendant tree."""

    def __init__(self, trace_id: int, spans: List[Span]):
        self.trace_id = trace_id
        self.spans = sorted(spans, key=lambda s: (s.start, s.span_id))
        self._children: Dict[int, List[Span]] = {}
        self.root: Optional[Span] = None
        ids = {s.span_id for s in self.spans}
        orphans: List[Span] = []
        for span in self.spans:
            if span.parent_id is None or span.parent_id not in ids:
                orphans.append(span)
                if self.root is None:
                    self.root = span
            else:
                self._children.setdefault(span.parent_id, []).append(span)
        # Depth of each span in the tree (orphans count as depth 0).
        self._depth: Dict[int, int] = {}
        stack = [(span, 0) for span in orphans]
        while stack:
            span, depth = stack.pop()
            self._depth[span.span_id] = depth
            for child in self._children.get(span.span_id, []):
                stack.append((child, depth + 1))

    @property
    def name(self) -> str:
        return self.root.name if self.root is not None else ""

    @property
    def complete(self) -> bool:
        return self.root is not None and self.root.finished

    @property
    def duration(self) -> float:
        return self.root.duration if self.root is not None else 0.0

    def children(self, span: Span) -> List[Span]:
        return self._children.get(span.span_id, [])

    def self_time(self, span: Span) -> float:
        """Span duration minus the union of its children's intervals.

        This is the span's *exclusive* contribution to the trace: time not
        accounted to any deeper layer.  Child intervals are clipped to the
        parent's bounds, so fire-and-forget children that outlive their
        parent never produce negative self-time.
        """
        if not span.finished:
            return 0.0
        end = span.end_time
        intervals = []
        for child in self.children(span):
            if not child.finished:
                continue
            lo = max(child.start, span.start)
            hi = min(child.end_time, end)
            if hi > lo:
                intervals.append((lo, hi))
        covered = sum(b - a for a, b in _merged_intervals(intervals))
        return max(0.0, span.duration - covered)

    def breakdown(self, by: str = "component") -> Dict[str, float]:
        """Exclusive time per component (or span ``name``), in seconds.

        Flame-graph attribution over the root's time window: every instant
        goes to the *deepest* finished span covering it.  This stays exact
        when fire-and-forget children outlive their parent span (a stage
        process finishing after the RPC that spawned it replied) - the
        overhang is charged to the child, never double-counted - so values
        always sum to at most the root duration.
        """
        if self.root is None or not self.root.finished:
            return {}
        window_lo, window_hi = self.root.start, self.root.end_time
        order = sorted(
            (s for s in self.spans if s.finished),
            key=lambda s: (-self._depth.get(s.span_id, 0), s.start,
                           s.span_id))
        covered: List[Tuple[float, float]] = []
        out: Dict[str, float] = {}
        for span in order:
            lo = max(span.start, window_lo)
            hi = min(span.end_time, window_hi)
            if hi <= lo:
                continue
            exclusive = (hi - lo) - _overlap_length(lo, hi, covered)
            if exclusive > 0:
                key = getattr(span, by) or span.name
                out[key] = out.get(key, 0.0) + exclusive
            covered = _merged_intervals(covered + [(lo, hi)])
        return out

    def breakdown_fractions(self, by: str = "component") -> Dict[str, float]:
        """Breakdown as fractions of the root duration (the "62% in S1AP
        RTT, 21% in sessiond" view)."""
        total = self.duration
        if total <= 0:
            return {}
        return {k: v / total for k, v in self.breakdown(by).items()}

    def critical_path(self) -> List[Span]:
        """Root-to-leaf chain following the longest-duration child."""
        path: List[Span] = []
        span = self.root
        while span is not None:
            path.append(span)
            kids = [c for c in self.children(span) if c.finished]
            span = max(kids, key=lambda c: c.duration) if kids else None
        return path

    def format(self) -> str:
        """Human-readable critical-path breakdown for one trace."""
        if self.root is None:
            return f"trace {self.trace_id}: no root span"
        lines = [f"trace {self.trace_id:x} {self.name}: "
                 f"{self.duration * 1000:.1f} ms, {len(self.spans)} spans"]
        fractions = sorted(self.breakdown_fractions().items(),
                           key=lambda kv: -kv[1])
        for component, fraction in fractions:
            lines.append(f"  {fraction * 100:5.1f}%  {component}")
        return "\n".join(lines)


def build_traces(spans: Iterable[Span]) -> List[TraceView]:
    """Group spans into per-trace views, ordered by root start time."""
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    views = [TraceView(trace_id, group)
             for trace_id, group in by_trace.items()]
    views.sort(key=lambda v: (v.root.start if v.root is not None else 0.0,
                              v.trace_id))
    return views


def procedure_summary(traces: Iterable[TraceView],
                      quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0)
                      ) -> Dict[str, Dict[str, float]]:
    """Latency percentiles per procedure (root-span name) across traces."""
    durations: Dict[str, List[float]] = {}
    for trace in traces:
        if not trace.complete:
            continue
        durations.setdefault(trace.name, []).append(trace.duration)
    summary: Dict[str, Dict[str, float]] = {}
    for name, values in sorted(durations.items()):
        entry: Dict[str, float] = {
            "count": float(len(values)),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
        for q in quantiles:
            entry[f"p{q:g}"] = percentile(values, q)
        summary[name] = entry
    return summary


def format_summary(summary: Dict[str, Dict[str, float]]) -> str:
    """Text table of the per-procedure percentile summary (ms)."""
    if not summary:
        return "no complete traces"
    stat_keys = [k for k in next(iter(summary.values())) if k != "count"]
    header = ["procedure", "count"] + [f"{k}(ms)" for k in stat_keys]
    rows = []
    for name, entry in summary.items():
        rows.append([name, f"{int(entry['count'])}"]
                    + [f"{entry[k] * 1000:.1f}" for k in stat_keys])
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)


def aggregate_breakdown(traces: Iterable[TraceView], procedure: str,
                        by: str = "component") -> Dict[str, float]:
    """Mean self-time fraction per component across traces of one
    procedure - the fleet-wide "where do attaches spend their time"."""
    totals: Dict[str, float] = {}
    count = 0
    for trace in traces:
        if not trace.complete or trace.name != procedure:
            continue
        count += 1
        for key, fraction in trace.breakdown_fractions(by).items():
            totals[key] = totals.get(key, 0.0) + fraction
    if count == 0:
        return {}
    return {k: v / count for k, v in sorted(totals.items())}
