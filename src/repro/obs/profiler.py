"""Wall-clock self-profiler: attribute host CPU time to subsystems.

"As fast as the hardware allows" is a claim until it is a breakdown.
This module turns a run into flame-style per-subsystem shares of host
wall-clock time — kernel dispatch vs. timer wheel vs. RPC serialization
vs. digest hashing vs. fleet ticks vs. tracer overhead — committed per-PR
as ``BENCH_profile.json`` so regressions show up as a share shift, not a
vibe.

Two integration layers, both following the SimSan enable/disable design:

- **Kernel**: :func:`install` swaps the simulator's class to
  :class:`_ProfiledSimulator` (empty ``__slots__``), whose overridden
  ``run``/``_execute``/wheel methods bracket the hot paths with
  :meth:`Profiler.push`/:meth:`Profiler.pop`.  The base class is
  untouched, so the profiler-off path is byte-identical to today's
  kernel — the bench canaries prove it.
- **Subsystems** (RPC, digest sync, fleet ticks, tracer): module-level
  hooks read ``profiler.ACTIVE``; when it is ``None`` (the default) the
  cost is one global load and an ``is None`` test.

Accounting is *self-time*: entering a child scope charges the elapsed
slice to the parent, so a scope's number is time spent in its own code,
and flame paths (``kernel.loop;kernel.dispatch;rpc.deliver``) preserve
the nesting.  The profiler deliberately reads the host clock
(``time.perf_counter``) — it measures the simulator, it does not run
inside it, and nothing in simulation behaviour may depend on its
readings.  Those calls carry ``reprolint`` pragmas for exactly that
reason.

Only one profiler can be active per process (the ``ACTIVE`` global is
how zero-touch subsystem hooks find it); :func:`detach` restores both
the simulator class and the global.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Dict, List, Optional

from ..sim.kernel import SimulationError, Simulator

# The process-wide active profiler; subsystem hooks poll this.  None when
# profiling is off, which must stay the cheap path.
ACTIVE: Optional["Profiler"] = None


class Profiler:
    """Scoped self-time counters keyed by flame path."""

    __slots__ = ("self_s", "calls", "_stack", "_mark")

    def __init__(self):
        self.self_s: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._stack: List[str] = []
        self._mark = 0.0

    # The two perf_counter() reads below are the profiler's entire contact
    # with the host clock.  They are exempt from the no-wallclock rule by
    # design: the profiler measures the simulator from outside, and no
    # simulated behaviour may depend on its readings (the byte-identical
    # disabled-path canaries in BENCH_profile.json enforce that).

    def push(self, key: str) -> None:
        """Enter scope ``key``; charges the elapsed slice to the parent."""
        now = time.perf_counter()  # reprolint: disable=no-wallclock
        stack = self._stack
        if stack:
            parent = stack[-1]
            self.self_s[parent] = \
                self.self_s.get(parent, 0.0) + (now - self._mark)
            path = parent + ";" + key
        else:
            path = key
        stack.append(path)
        self.calls[path] = self.calls.get(path, 0) + 1
        self._mark = now

    def pop(self) -> None:
        """Leave the current scope; charges the elapsed slice to it."""
        now = time.perf_counter()  # reprolint: disable=no-wallclock
        path = self._stack.pop()
        self.self_s[path] = self.self_s.get(path, 0.0) + (now - self._mark)
        self._mark = now

    def reset(self) -> None:
        self.self_s.clear()
        self.calls.clear()
        del self._stack[:]
        self._mark = 0.0

    # -- reporting -------------------------------------------------------------

    def subsystems(self) -> Dict[str, Dict[str, float]]:
        """Self-time aggregated by leaf scope key (last flame segment)."""
        agg: Dict[str, Dict[str, float]] = {}
        for path, secs in self.self_s.items():
            leaf = path.rsplit(";", 1)[-1]
            row = agg.get(leaf)
            if row is None:
                row = agg.setdefault(leaf, {"self_s": 0.0, "calls": 0})
            row["self_s"] += secs
            row["calls"] += self.calls.get(path, 0)
        return agg

    def report(self) -> Dict[str, Any]:
        """Shares per subsystem plus the raw flame rows, largest first."""
        total = sum(self.self_s.values())
        subsystems = {}
        for leaf, row in sorted(self.subsystems().items(),
                                key=lambda kv: -kv[1]["self_s"]):
            subsystems[leaf] = {
                "self_s": row["self_s"],
                "share": row["self_s"] / total if total > 0 else 0.0,
                "calls": row["calls"],
            }
        flame = [{"path": path, "self_s": secs,
                  "calls": self.calls.get(path, 0)}
                 for path, secs in sorted(self.self_s.items(),
                                          key=lambda kv: -kv[1])]
        return {"total_s": total, "subsystems": subsystems, "flame": flame}


class _ProfiledSimulator(Simulator):
    """Simulator with profiled dispatch.

    Uses the generic ``_surface()`` event loop rather than the base
    class's inlined one; both implement the identical total order (the
    parity test pins this), so profiling never perturbs event order —
    only wall-clock attribution differs.
    """

    __slots__ = ()

    def run(self, until: Optional[float] = None) -> float:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        prof = self._prof
        prof.push("kernel.loop")
        try:
            while True:
                entry = self._surface()
                if entry is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and entry.when > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = entry.when
                self._execute(entry)
        finally:
            prof.pop()
            self._running = False
        return self._now

    def _execute(self, entry) -> None:
        prof = self._prof
        prof.push("kernel.dispatch")
        try:
            Simulator._execute(self, entry)
        finally:
            prof.pop()

    def _flush_far(self) -> None:
        prof = self._prof
        prof.push("kernel.timer_wheel")
        try:
            Simulator._flush_far(self)
        finally:
            prof.pop()

    def _wheel_flush_min(self) -> None:
        prof = self._prof
        prof.push("kernel.timer_wheel")
        try:
            Simulator._wheel_flush_min(self)
        finally:
            prof.pop()


def _install(sim: Simulator, profiler: Profiler) -> Profiler:
    """Swap ``sim`` onto the profiled subclass and set the ACTIVE global."""
    global ACTIVE
    if type(sim) is not Simulator:
        raise ValueError(
            f"profiler needs a plain Simulator (got {type(sim).__name__}); "
            f"it is mutually exclusive with the sanitizer's class swap")
    if ACTIVE is not None and ACTIVE is not profiler:
        raise ValueError("another profiler is already active in this process")
    sim._prof = profiler
    sim.__class__ = _ProfiledSimulator
    ACTIVE = profiler
    return profiler


def install(sim: Simulator, profiler: Optional[Profiler] = None) -> Profiler:
    """Attach a (new, by default) profiler to ``sim``; returns it."""
    return _install(sim, profiler if profiler is not None else Profiler())


def detach(sim: Simulator) -> Optional[Profiler]:
    """Undo :func:`install`: restore the base class, clear ACTIVE."""
    global ACTIVE
    if isinstance(sim, _ProfiledSimulator):
        sim.__class__ = Simulator
        prof, sim._prof = sim._prof, None
        if ACTIVE is prof:
            ACTIVE = None
        return prof
    return None
