"""Procedure tracing for the simulated Magma stack.

Distributed tracing in the style of OpenTelemetry/Dapper, adapted to the
discrete-event kernel: a :class:`Tracer` mints spans whose timestamps come
from the virtual clock (``sim.now``) and whose ids come from named RNG
streams, so traces are fully deterministic and replayable (REPRO201/202).

Context propagation is *ambient*: the kernel carries the active
:class:`SpanContext` across ``schedule()`` hops and generator resumes
(``Simulator.ctx``), and the RPC layer ships it inside request payloads, so
a single attach trace nests UE -> eNodeB -> MME -> sessiond -> pipelined
without any of those components passing trace arguments around.

Cost model: with no tracer installed (``sim.tracer is None``) instrumented
code does one attribute read and a no-op method call per span site; with a
tracer installed but ``sample_rate=0`` every root span is the shared
:data:`NOOP_SPAN` and no child spans are created downstream.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

from . import profiler as _profiler


class SpanContext(NamedTuple):
    """The propagated part of a span: enough to parent children to it."""

    trace_id: int
    span_id: int


class _Activation:
    """Context manager that makes a span ambient without ending it."""

    __slots__ = ("span", "_prev")

    def __init__(self, span: "Span"):
        self.span = span
        self._prev = None

    def __enter__(self) -> "Span":
        sim = self.span.tracer.sim
        self._prev = sim.ctx
        sim.ctx = self.span.context
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.tracer.sim.ctx = self._prev
        return False


class Span:
    """One timed operation within a trace.

    Spans are recorded on the tracer at creation and closed by
    :meth:`end` (directly, via the context-manager protocol, or deferred
    with :meth:`end_on`).  ``start``/``end_time`` are virtual-clock
    seconds; ``end_time`` is None while the span is open.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "component", "node", "start", "end_time", "tags", "status",
                 "_prev_ctx")

    recording = True

    def __init__(self, tracer: "Tracer", trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, component: str,
                 node: str, tags: Optional[Dict[str, Any]] = None):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.node = node
        self.start = tracer.sim.now
        self.end_time: Optional[float] = None
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.status = "open"
        self._prev_ctx = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def end(self, status: str = "ok") -> None:
        """Close the span at the current virtual time (idempotent)."""
        if self.end_time is not None:
            return
        self.end_time = self.tracer.sim.now
        self.status = status

    def end_on(self, event: Any) -> "Span":
        """Close the span when ``event`` triggers (ok/error by outcome)."""
        event.add_callback(
            lambda ev: self.end("ok" if ev.ok else "error"))
        return self

    def active(self) -> _Activation:
        """``with span.active():`` - ambient activation without ending."""
        return _Activation(self)

    # ``with span:`` activates the span and ends it on exit.

    def __enter__(self) -> "Span":
        sim = self.tracer.sim
        self._prev_ctx = sim.ctx
        sim.ctx = self.context
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer.sim.ctx = self._prev_ctx
        self.end("error" if exc_type is not None else "ok")
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.4f}s" if self.finished else "open"
        return f"<Span {self.name!r} {self.component} {state}>"


class NoopSpan:
    """Shared do-nothing span: the unsampled / tracing-off fast path.

    Its ``context`` is None, so children of an unsampled root are
    themselves no-ops and nothing propagates downstream.
    """

    __slots__ = ()

    recording = False
    context = None
    trace_id = None
    span_id = None
    parent_id = None
    name = ""
    component = ""
    node = ""
    start = 0.0
    end_time = None
    duration = 0.0
    finished = False
    status = "noop"
    tags: Dict[str, Any] = {}

    def set_tag(self, key: str, value: Any) -> "NoopSpan":
        return self

    def end(self, status: str = "ok") -> None:
        pass

    def end_on(self, event: Any) -> "NoopSpan":
        return self

    def active(self) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class Tracer:
    """Mints, samples, and records spans for one simulation.

    ``sample_rate`` is the fraction of *root* spans recorded (head-based
    sampling: the decision is made once per trace and inherited by every
    child through context propagation).  Ids come from the registry's
    ``obs.span_ids`` / ``obs.sampling`` streams, timestamps from
    ``sim.now`` - two runs with the same seed produce identical traces.
    """

    def __init__(self, sim: Any, rng: Any, sample_rate: float = 1.0,
                 max_spans: int = 200_000, install: bool = True):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate out of range: {sample_rate}")
        self.sim = sim
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self._ids = rng.stream("obs.span_ids")
        self._sampler = rng.stream("obs.sampling")
        self.spans: List[Span] = []
        self.stats = {"traces_started": 0, "traces_sampled": 0,
                      "spans": 0, "spans_dropped": 0}
        if install:
            sim.tracer = self

    # -- span creation -----------------------------------------------------

    def start_trace(self, name: str, component: str = "", node: str = "",
                    tags: Optional[Dict[str, Any]] = None):
        """Start a new root span, applying the sampling decision."""
        self.stats["traces_started"] += 1
        if self.sample_rate <= 0.0:
            return NOOP_SPAN
        if self.sample_rate < 1.0 and \
                self._sampler.random() >= self.sample_rate:
            return NOOP_SPAN
        self.stats["traces_sampled"] += 1
        trace_id = self._new_id()
        span = Span(self, trace_id, self._new_id(), None, name,
                    component, node, tags)
        self._record(span)
        return span

    def start_span(self, name: str, parent: Optional[SpanContext],
                   component: str = "", node: str = "",
                   tags: Optional[Dict[str, Any]] = None):
        """Child span of an explicit parent context (None -> no-op)."""
        if parent is None:
            return NOOP_SPAN
        span = Span(self, parent.trace_id, self._new_id(), parent.span_id,
                    name, component, node, tags)
        self._record(span)
        return span

    def child(self, name: str, component: str = "", node: str = "",
              tags: Optional[Dict[str, Any]] = None):
        """Child of the ambient context; no-op when none is active."""
        return self.start_span(name, self.sim.ctx, component=component,
                               node=node, tags=tags)

    def begin(self, name: str, component: str = "", node: str = "",
              tags: Optional[Dict[str, Any]] = None):
        """Child of the ambient context if present, else a new root.

        The right call for procedure entry points that can be either
        user-initiated (a fresh trace) or network-initiated mid-trace
        (e.g. a service request triggered by paging).
        """
        if self.sim.ctx is not None:
            return self.start_span(name, self.sim.ctx, component=component,
                                   node=node, tags=tags)
        return self.start_trace(name, component=component, node=node,
                                tags=tags)

    def activate(self, span: Any) -> None:
        """Make ``span`` the ambient context (sticks across yields)."""
        if span.recording:
            self.sim.ctx = span.context

    # -- accessors ---------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.finished]

    def clear(self) -> None:
        self.spans = []

    # -- internals ---------------------------------------------------------

    def _new_id(self) -> int:
        # 48 bits: unique enough for any run, exactly representable in JSON.
        return self._ids.getrandbits(48)

    def _record(self, span: Span) -> None:
        prof = _profiler.ACTIVE
        if prof is None:
            self._record_span(span)
            return
        prof.push("obs.tracer")
        try:
            self._record_span(span)
        finally:
            prof.pop()

    def _record_span(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.stats["spans_dropped"] += 1
            return
        self.spans.append(span)
        self.stats["spans"] += 1


class NoopTracer:
    """Stands in when no tracer is installed; every span is NOOP_SPAN."""

    __slots__ = ()

    recording = False
    sample_rate = 0.0
    spans: List[Span] = []

    def start_trace(self, name: str, component: str = "", node: str = "",
                    tags: Optional[Dict[str, Any]] = None) -> NoopSpan:
        return NOOP_SPAN

    def start_span(self, name: str, parent: Optional[SpanContext] = None,
                   component: str = "", node: str = "",
                   tags: Optional[Dict[str, Any]] = None) -> NoopSpan:
        return NOOP_SPAN

    def child(self, name: str, component: str = "", node: str = "",
              tags: Optional[Dict[str, Any]] = None) -> NoopSpan:
        return NOOP_SPAN

    def begin(self, name: str, component: str = "", node: str = "",
              tags: Optional[Dict[str, Any]] = None) -> NoopSpan:
        return NOOP_SPAN

    def activate(self, span: Any) -> None:
        pass

    def finished_spans(self) -> List[Span]:
        return []


NOOP_TRACER = NoopTracer()


def tracer_of(sim: Any):
    """The simulation's tracer, or the shared no-op when none installed."""
    tracer = getattr(sim, "tracer", None)
    return tracer if tracer is not None else NOOP_TRACER
