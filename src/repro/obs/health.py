"""Health/SLO engine: windowed scalar health per AGW, shard, and fleet.

The paper's operational claim is that the orchestrator makes a failing
access network *visible* to a small operator — not as a wall of raw
series, but as "this gateway is unhealthy, and here is why".  This module
turns metricsd state into that answer: each AGW gets subscores in
``[0, 1]`` over a sliding window —

- **attach**: accepted/requested ratio from the cumulative attach
  counters' deltas inside the window;
- **latency**: attach p99 against the SLO, with a metric *exemplar* — the
  trace id of a recorded sample at/above the p99 — so the operator can
  jump straight from the number to the trace that was that slow;
- **cpu**: headroom against a utilization ceiling;
- **freshness**: recency of the last check-in against the offline
  threshold;
- **convergence**: how long the gateway's applied config has lagged the
  newest publish (the desired-state model's own SLO).

The weighted blend scales to a 0–100 score; shards roll up their members
and the fleet rolls up the shards.  Everything reads orchestrator-side
state only (metricsd, statesync, the convergence tracker) — the engine
never talks to gateways, exactly like real Magma's health dashboards.

This module is a *consumer* of the orchestrator (duck-typed; no import),
so the orchestrator can build one without a dependency cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.monitor import percentile

ATTACH_LATENCY_METRIC = "attach_latency_s"
CONVERGENCE_METRIC = "sync.convergence.lag_s"


@dataclass
class HealthSlo:
    """Targets and weights; defaults follow the paper's workloads."""

    window: float = 60.0               # seconds of history per evaluation
    attach_p99_slo_s: float = 1.0      # NAS attach should finish within this
    convergence_slo_s: float = 120.0   # publish -> all-applied budget
    cpu_util_ceiling: float = 0.9      # headroom exhausted at this load
    weights: Dict[str, float] = field(default_factory=lambda: {
        "attach": 0.30, "latency": 0.25, "cpu": 0.15,
        "freshness": 0.15, "convergence": 0.15})


def _clamp(value: float) -> float:
    return 0.0 if value < 0.0 else (1.0 if value > 1.0 else value)


class HealthEngine:
    """Computes health reports from an orchestrator's stores."""

    def __init__(self, orchestrator, slo: Optional[HealthSlo] = None):
        self.orc = orchestrator
        self.slo = slo or HealthSlo()

    # -- per-AGW ---------------------------------------------------------------

    def agw_health(self, gateway_id: str) -> Optional[Dict[str, Any]]:
        """Subscores, blended score, and supporting numbers for one AGW."""
        state = self.orc.statesync.gateway(gateway_id)
        if state is None:
            return None
        now = self.orc.sim.now
        t0 = now - self.slo.window
        labels = {"gateway_id": gateway_id}
        metricsd = self.orc.metricsd
        subscores: Dict[str, float] = {}
        detail: Dict[str, Any] = {}

        # Attach success: windowed delta of the cumulative counters.
        accepted = [s for s in metricsd.query("attach_accepted", labels)
                    if s.time >= t0]
        requested = [s for s in metricsd.query("attach_requests", labels)
                     if s.time >= t0]
        d_req = requested[-1].value - requested[0].value \
            if len(requested) >= 2 else 0.0
        d_acc = accepted[-1].value - accepted[0].value \
            if len(accepted) >= 2 else 0.0
        if d_req > 0:
            rate = _clamp(d_acc / d_req)
            subscores["attach"] = rate
            detail["attach_success_rate"] = rate
        else:
            subscores["attach"] = 1.0  # no attempts: nothing failing

        # Attach latency p99 + exemplar.
        lat = [s for s in metricsd.query(ATTACH_LATENCY_METRIC, labels)
               if s.time >= t0]
        if lat:
            p99 = percentile([s.value for s in lat], 99.0)
            subscores["latency"] = _clamp(self.slo.attach_p99_slo_s / p99) \
                if p99 > 0 else 1.0
            detail["attach_p99_s"] = p99
            exemplar = self._exemplar_at_or_above(lat, p99)
            if exemplar is not None:
                detail["attach_p99_exemplar"] = {
                    "trace_id": exemplar.trace_id,
                    "value_s": exemplar.value,
                    "time": exemplar.time,
                }
        else:
            subscores["latency"] = 1.0

        # CPU headroom from the freshest utilization sample.
        cpu = metricsd.latest("cpu_util", labels)
        if cpu is not None:
            subscores["cpu"] = _clamp(
                1.0 - cpu.value / self.slo.cpu_util_ceiling)
            detail["cpu_util"] = cpu.value
        else:
            subscores["cpu"] = 1.0

        # Check-in freshness against the offline threshold.
        offline_after = self.orc.config.offline_threshold
        age = now - state.last_checkin
        subscores["freshness"] = _clamp(1.0 - age / offline_after)
        detail["checkin_age_s"] = age

        # Convergence: how stale is this gateway's applied config?
        published = self.orc.convergence.oldest_unapplied_publish(
            state.network_id, state.config_version)
        if published is None:
            subscores["convergence"] = 1.0
            detail["config_lag_s"] = 0.0
        else:
            lag = now - published
            subscores["convergence"] = _clamp(
                1.0 - lag / self.slo.convergence_slo_s)
            detail["config_lag_s"] = lag

        weights = self.slo.weights
        total_weight = sum(weights.values())
        score = 100.0 * sum(weights[k] * subscores[k]
                            for k in weights) / total_weight
        return {
            "gateway_id": gateway_id,
            "score": score,
            "subscores": subscores,
            "detail": detail,
            "shard": self._shard_id_for(gateway_id),
        }

    @staticmethod
    def _exemplar_at_or_above(samples: List[Any], threshold: float):
        """The trace-linked sample closest above the threshold (falling
        back to the largest linked one), or None if no sample in the
        window carries a trace id."""
        best = None
        linked = [s for s in samples if s.trace_id is not None]
        if not linked:
            return None
        at_or_above = [s for s in linked if s.value >= threshold]
        if at_or_above:
            best = min(at_or_above, key=lambda s: s.value)
        else:
            best = max(linked, key=lambda s: s.value)
        return best

    def _shard_id_for(self, gateway_id: str) -> str:
        shard = self.orc.shard_for(gateway_id)
        return shard.shard_id if shard is not None else self.orc.node

    # -- rollups ---------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Per-AGW, per-shard, and fleet health at the current sim time."""
        agws: Dict[str, Dict[str, Any]] = {}
        for state in self.orc.statesync.gateways():
            health = self.agw_health(state.gateway_id)
            if health is not None:
                agws[state.gateway_id] = health
        shards: Dict[str, Dict[str, Any]] = {}
        for health in agws.values():
            row = shards.setdefault(health["shard"], {
                "agws": 0, "score_sum": 0.0, "min_score": 100.0,
                "worst_agw": None})
            row["agws"] += 1
            row["score_sum"] += health["score"]
            if health["score"] <= row["min_score"]:
                row["min_score"] = health["score"]
                row["worst_agw"] = health["gateway_id"]
        for row in shards.values():
            row["mean_score"] = row["score_sum"] / row["agws"]
            del row["score_sum"]
        convergence = self.orc.convergence
        fleet = {
            "time": self.orc.sim.now,
            "agws": len(agws),
            "mean_score": (sum(h["score"] for h in agws.values())
                           / len(agws)) if agws else 100.0,
            "min_score": min((h["score"] for h in agws.values()),
                             default=100.0),
            "convergence_lag_s": dict(convergence.last_lag),
            "convergence_pending": {
                network_id: convergence.oldest_pending_age(network_id)
                for network_id in convergence.pending_networks()},
        }
        return {"agws": agws, "shards": shards, "fleet": fleet}


def health_rule(engine: HealthEngine, threshold: float = 70.0,
                name: str = "agw-health"):
    """An AlertManager-compatible rule: fires per AGW under ``threshold``.

    Returned as a plain ``AlertRule``-shaped object is unnecessary — the
    manager only needs ``name``/``evaluate``/``message`` — but we build
    the real dataclass to keep one alert type in the system.
    """
    from ..core.orchestrator.alerting import AlertRule

    def evaluate() -> List[str]:
        report = engine.report()
        return sorted(gateway_id
                      for gateway_id, health in report["agws"].items()
                      if health["score"] < threshold)

    return AlertRule(name=name, evaluate=evaluate,
                     message=f"gateway health score below {threshold:g}")
