"""Chrome trace-event JSON export.

Produces the trace-event format consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): open either, load the exported file,
and every simulated procedure renders as a nested flame of spans.

Mapping: each simulation *node* (AGW, eNodeB, orchestrator, UE...) becomes
a "process" row, each *trace* a "thread" within it, and each finished span
a complete ("X") event with microsecond virtual-clock timestamps.

Flight-recorder records ride along as instant ("i") events: a record that
carries a trace id lands on that trace's thread inside its node's process
row, so structured log lines appear interleaved with the very spans they
were emitted under.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .tracing import Span


def to_chrome_trace(spans: Iterable[Span],
                    records: Optional[Iterable[Any]] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event document from finished spans.

    ``records`` (optional) is an iterable of flight-recorder
    :class:`~repro.obs.flightrec.LogRecord` rows to merge as instant
    events.
    """
    spans = [s for s in spans if s.finished]
    pids: Dict[str, int] = {}
    tids: Dict[int, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        row = span.node or span.component or "sim"
        pid = pids.setdefault(row, len(pids) + 1)
        tid = tids.setdefault(span.trace_id, len(tids) + 1)
        args: Dict[str, Any] = {
            "trace_id": f"{span.trace_id:x}",
            "span_id": f"{span.span_id:x}",
            "status": span.status,
        }
        if span.parent_id is not None:
            args["parent_id"] = f"{span.parent_id:x}"
        for key, value in span.tags.items():
            args[str(key)] = value if isinstance(
                value, (int, float, bool)) else str(value)
        events.append({
            "name": span.name,
            "cat": span.component or "span",
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    for rec in records or ():
        row = rec.node or rec.component or "sim"
        pid = pids.setdefault(row, len(pids) + 1)
        # A trace-correlated record lands on its trace's thread row;
        # uncorrelated ones get process scope on the node's thread 0.
        if rec.trace_id is not None:
            tid = tids.setdefault(rec.trace_id, len(tids) + 1)
            scope = "t"
        else:
            tid = 0
            scope = "p"
        args = {"severity": rec.severity, "seq": rec.seq}
        if rec.trace_id is not None:
            args["trace_id"] = f"{rec.trace_id:x}"
        for key, value in rec.fields.items():
            args[str(key)] = value if isinstance(
                value, (int, float, bool)) else str(value)
        events.append({
            "name": f"{rec.component}:{rec.event}",
            "cat": "flightrec",
            "ph": "i",
            "s": scope,
            "ts": round(rec.time * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    metadata = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                 "args": {"name": row}} for row, pid in pids.items()]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span],
                       records: Optional[Iterable[Any]] = None) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    document = to_chrome_trace(spans, records=records)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1)
        fh.write("\n")
    return len(document["traceEvents"])
