"""Observability: procedure tracing, trace analysis, and export.

The missing piece between the per-AGW :class:`~repro.sim.monitor.Monitor`
and the orchestrator's :class:`~repro.core.orchestrator.metricsd.Metricsd`:
end-to-end traces of control-plane procedures (attach, paging, handover,
checkpoint/restore, state sync) with deterministic ids and virtual-clock
timestamps, plus critical-path analysis and Chrome-trace export.

``scenario``/``cli`` are imported lazily (they pull in the full AGW stack);
``python -m repro.obs`` runs the traced demo.
"""

from .analysis import (
    TraceView,
    aggregate_breakdown,
    build_traces,
    format_summary,
    procedure_summary,
)
from .export import to_chrome_trace, write_chrome_trace
from .flightrec import (
    NOOP_LOG,
    NOOP_RECORDER,
    FlightRecorder,
    LogRecord,
    NodeLog,
    recorder_of,
)
from .health import HealthEngine, HealthSlo, health_rule
from .profiler import Profiler
from .profiler import detach as detach_profiler
from .profiler import install as install_profiler
from .tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopSpan,
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    tracer_of,
)

__all__ = [
    "NOOP_LOG",
    "NOOP_RECORDER",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "FlightRecorder",
    "HealthEngine",
    "HealthSlo",
    "LogRecord",
    "NodeLog",
    "NoopSpan",
    "NoopTracer",
    "Profiler",
    "Span",
    "SpanContext",
    "TraceView",
    "Tracer",
    "aggregate_breakdown",
    "build_traces",
    "detach_profiler",
    "format_summary",
    "health_rule",
    "install_profiler",
    "procedure_summary",
    "recorder_of",
    "to_chrome_trace",
    "tracer_of",
    "write_chrome_trace",
]
