"""Traced demo scenario: an attach storm with the tracer on.

Used by ``python -m repro.obs`` and the CI smoke step: stands up an
emulated site, traces an attach storm (plus an idle/paging round trip and
a detach wave, so the exported trace shows more than one procedure type),
and returns the tracer for analysis/export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..experiments.common import EmulatedSite, build_emulated_site
from ..workloads.attach_storm import AttachStorm
from .flightrec import FlightRecorder
from .tracing import Tracer


@dataclass
class TracedRun:
    site: EmulatedSite
    tracer: Tracer
    storm: AttachStorm
    attach_successes: int


def run_traced_attach_storm(num_ues: int = 20, rate: float = 5.0,
                            seed: int = 1, sample_rate: float = 1.0,
                            num_enbs: int = 2) -> TracedRun:
    """Run a short attach storm with tracing enabled."""
    site = build_emulated_site(num_enbs=num_enbs, num_ues=num_ues, seed=seed)
    tracer = Tracer(site.sim, site.rng, sample_rate=sample_rate)
    storm = AttachStorm(site.sim, site.ues, rate_per_sec=rate,
                        monitor=site.monitor)
    storm.start()
    site.sim.run_until_triggered(storm.done,
                                 limit=site.sim.now + 60.0 + num_ues / rate)
    attached: List = [ue for ue in site.ues if ue.is_registered]
    # Idle -> paging -> service-request round trip for a few UEs.
    for ue in attached[:3]:
        ue.go_idle()
    site.sim.run(until=site.sim.now + 2.0)
    for ue in attached[:3]:
        site.agw.page(ue.imsi)
    site.sim.run(until=site.sim.now + 5.0)
    # Graceful detaches close out the session lifecycle in the trace.
    for ue in attached[:2]:
        ue.detach(switch_off=False)
    site.sim.run(until=site.sim.now + 10.0)
    return TracedRun(site=site, tracer=tracer, storm=storm,
                     attach_successes=storm.success_count())


@dataclass
class HealthFleetRun:
    """Handles from :func:`run_health_fleet` for CLI/test inspection."""

    sim: Any
    network: Any
    orc: Any
    agws: List[Any]
    ues: List[Any]
    tracer: Tracer
    recorder: FlightRecorder
    monitor: Any
    report: Dict[str, Any]


def run_health_fleet(num_agws: int = 20, num_shards: int = 4,
                     ues_per_agw: int = 2, duration: float = 120.0,
                     seed: int = 7, checkin_interval: float = 5.0,
                     sample_rate: float = 1.0) -> HealthFleetRun:
    """A sharded fleet with real AGWs, health-scored end to end.

    Stands up ``num_agws`` full access gateways against a sharded
    orchestrator, attaches every subscriber (staggered, after the first
    check-in has synced config so the attaches exercise the orchestrator-
    provisioned path), publishes a mid-run config change to exercise the
    publish→all-applied convergence tracker, and returns the orchestrator's
    health report plus every handle a caller could want to drill into —
    including the tracer, so attach-p99 exemplar trace ids can be resolved
    back to recorded spans.
    """
    from ..core.agw import AccessGateway, AgwConfig, SubscriberProfile
    from ..experiments.common import subscriber_keys
    from ..lte import Enodeb, Ue, make_imsi
    from ..net import Network, backhaul
    from ..sim import Monitor, RngRegistry, Simulator

    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    monitor = Monitor()
    tracer = Tracer(sim, rng, sample_rate=sample_rate)
    recorder = FlightRecorder(sim)
    from ..core.orchestrator import Orchestrator
    orc = Orchestrator(sim, network, "orc", monitor=monitor,
                       num_shards=num_shards)
    config = AgwConfig(checkin_interval=checkin_interval)
    agws: List[Any] = []
    ues: List[Any] = []
    index = 0
    for i in range(num_agws):
        node = f"agw-{i}"
        target = orc.shard_node_for(node)
        network.connect(node, target, backhaul.by_name("fiber"))
        agw = AccessGateway(sim, network, node, config=config,
                            orchestrator_node=target, monitor=monitor,
                            rng=rng)
        enb_node = f"enb-{i}"
        network.connect(enb_node, node, backhaul.lan(f"lan-{i}"))
        enb = Enodeb(sim, network, enb_node, node)
        for _ in range(ues_per_agw):
            index += 1
            imsi = make_imsi(index)
            k, opc = subscriber_keys(index)
            orc.add_subscriber(SubscriberProfile(imsi=imsi, k=k, opc=opc))
            ues.append(Ue(sim, imsi, k, opc, enb))
        agw.start()
        enb.s1_setup()
        agws.append(agw)
    # Attaches start after the first check-in round has synced config and
    # are spread across the run, round-robin over the gateways, so at the
    # end every AGW still holds latency samples (and their exemplars)
    # inside the health engine's sliding window.
    start = checkin_interval + 1.0
    step = max(0.5, (duration - start - 5.0) / max(1, len(ues)))
    order = [ues[a * ues_per_agw + j]
             for j in range(ues_per_agw) for a in range(num_agws)]
    for n, ue in enumerate(order):
        sim.call_later(start + step * n, ue.attach)

    def mid_run_publish() -> None:
        extra = num_agws * ues_per_agw + 1
        k, opc = subscriber_keys(extra)
        orc.add_subscriber(SubscriberProfile(imsi=make_imsi(extra),
                                             k=k, opc=opc))

    sim.call_later(duration / 2, mid_run_publish)
    sim.run(until=duration)
    return HealthFleetRun(sim=sim, network=network, orc=orc, agws=agws,
                          ues=ues, tracer=tracer, recorder=recorder,
                          monitor=monitor, report=orc.health_report())
