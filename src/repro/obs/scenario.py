"""Traced demo scenario: an attach storm with the tracer on.

Used by ``python -m repro.obs`` and the CI smoke step: stands up an
emulated site, traces an attach storm (plus an idle/paging round trip and
a detach wave, so the exported trace shows more than one procedure type),
and returns the tracer for analysis/export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..experiments.common import EmulatedSite, build_emulated_site
from ..workloads.attach_storm import AttachStorm
from .tracing import Tracer


@dataclass
class TracedRun:
    site: EmulatedSite
    tracer: Tracer
    storm: AttachStorm
    attach_successes: int


def run_traced_attach_storm(num_ues: int = 20, rate: float = 5.0,
                            seed: int = 1, sample_rate: float = 1.0,
                            num_enbs: int = 2) -> TracedRun:
    """Run a short attach storm with tracing enabled."""
    site = build_emulated_site(num_enbs=num_enbs, num_ues=num_ues, seed=seed)
    tracer = Tracer(site.sim, site.rng, sample_rate=sample_rate)
    storm = AttachStorm(site.sim, site.ues, rate_per_sec=rate,
                        monitor=site.monitor)
    storm.start()
    site.sim.run_until_triggered(storm.done,
                                 limit=site.sim.now + 60.0 + num_ues / rate)
    attached: List = [ue for ue in site.ues if ue.is_registered]
    # Idle -> paging -> service-request round trip for a few UEs.
    for ue in attached[:3]:
        ue.go_idle()
    site.sim.run(until=site.sim.now + 2.0)
    for ue in attached[:3]:
        site.agw.page(ue.imsi)
    site.sim.run(until=site.sim.now + 5.0)
    # Graceful detaches close out the session lifecycle in the trace.
    for ue in attached[:2]:
        ue.detach(switch_off=False)
    site.sim.run(until=site.sim.now + 10.0)
    return TracedRun(site=site, tracer=tracer, storm=storm,
                     attach_successes=storm.success_count())
