"""CLI: run a traced attach storm, export Chrome trace JSON, summarize.

Usage::

    PYTHONPATH=src python -m repro.obs [trace.json] [--ues N] [--rate R]
                                       [--seed S] [--sample-rate F]

The JSON output loads in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .analysis import (
    aggregate_breakdown,
    build_traces,
    format_summary,
    procedure_summary,
)
from .export import write_chrome_trace
from .scenario import run_traced_attach_storm


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Traced attach storm + Chrome trace export")
    parser.add_argument("output", nargs="?", default="trace.json",
                        help="Chrome trace JSON output path")
    parser.add_argument("--ues", type=int, default=20)
    parser.add_argument("--rate", type=float, default=5.0,
                        help="attach rate (UE/s)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--sample-rate", type=float, default=1.0)
    args = parser.parse_args(argv)

    run = run_traced_attach_storm(num_ues=args.ues, rate=args.rate,
                                  seed=args.seed,
                                  sample_rate=args.sample_rate)
    tracer = run.tracer
    print(f"attach storm: {run.attach_successes}/{args.ues} attached, "
          f"{tracer.stats['traces_sampled']}/{tracer.stats['traces_started']}"
          f" traces sampled, {tracer.stats['spans']} spans")
    events = write_chrome_trace(args.output, tracer.spans)
    print(f"wrote {events} trace events to {args.output} "
          "(load in chrome://tracing or ui.perfetto.dev)")

    traces = [t for t in build_traces(tracer.spans) if t.complete]
    summary = procedure_summary(traces)
    print("\nper-procedure latency:")
    print(format_summary(summary))

    attach_traces = [t for t in traces if t.name == "attach"]
    if attach_traces:
        fractions = aggregate_breakdown(traces, "attach")
        print("\nattach critical path (mean self-time share by component):")
        for component, fraction in sorted(fractions.items(),
                                          key=lambda kv: -kv[1]):
            print(f"  {fraction * 100:5.1f}%  {component}")
        slowest = max(attach_traces, key=lambda t: t.duration)
        print("\nslowest attach:")
        print(slowest.format())
    return 0
