"""CLI: traced attach storm export, and fleet health reporting.

Usage::

    PYTHONPATH=src python -m repro.obs [trace.json] [--ues N] [--rate R]
                                       [--seed S] [--sample-rate F]
                                       [--flightrec PATH]
    PYTHONPATH=src python -m repro.obs health [--agws N] [--shards N]
                                       [--duration S] [--seed S]
                                       [--flightrec PATH]

The first form runs the traced attach storm and writes Chrome trace JSON
(loads in ``chrome://tracing`` or https://ui.perfetto.dev).  The second
stands up a sharded fleet of real AGWs and prints per-AGW, per-shard, and
fleet health scores — including publish→all-applied convergence lag and
exemplar-linked attach p99s, each checked against the run's own recorded
traces.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import (
    aggregate_breakdown,
    build_traces,
    format_summary,
    procedure_summary,
)
from .export import write_chrome_trace


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "health":
        return _health_main(args[1:])
    return _trace_main(args)


def _trace_main(argv: Sequence[str]) -> int:
    from .scenario import run_traced_attach_storm

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Traced attach storm + Chrome trace export")
    parser.add_argument("output", nargs="?", default="trace.json",
                        help="Chrome trace JSON output path")
    parser.add_argument("--ues", type=int, default=20)
    parser.add_argument("--rate", type=float, default=5.0,
                        help="attach rate (UE/s)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--sample-rate", type=float, default=1.0)
    parser.add_argument("--flightrec", default=None,
                        help="also dump the flight recorder (JSONL) here")
    args = parser.parse_args(argv)

    run = run_traced_attach_storm(num_ues=args.ues, rate=args.rate,
                                  seed=args.seed,
                                  sample_rate=args.sample_rate)
    tracer = run.tracer
    print(f"attach storm: {run.attach_successes}/{args.ues} attached, "
          f"{tracer.stats['traces_sampled']}/{tracer.stats['traces_started']}"
          f" traces sampled, {tracer.stats['spans']} spans")
    recorder = getattr(run.site.sim, "recorder", None)
    records = recorder.records() if recorder is not None else None
    events = write_chrome_trace(args.output, tracer.spans, records=records)
    print(f"wrote {events} trace events to {args.output} "
          "(load in chrome://tracing or ui.perfetto.dev)")
    if args.flightrec and recorder is not None:
        lines = recorder.dump_jsonl(args.flightrec)
        print(f"wrote {lines} flight-recorder lines to {args.flightrec}")

    traces = [t for t in build_traces(tracer.spans) if t.complete]
    summary = procedure_summary(traces)
    print("\nper-procedure latency:")
    print(format_summary(summary))

    attach_traces = [t for t in traces if t.name == "attach"]
    if attach_traces:
        fractions = aggregate_breakdown(traces, "attach")
        print("\nattach critical path (mean self-time share by component):")
        for component, fraction in sorted(fractions.items(),
                                          key=lambda kv: -kv[1]):
            print(f"  {fraction * 100:5.1f}%  {component}")
        slowest = max(attach_traces, key=lambda t: t.duration)
        print("\nslowest attach:")
        print(slowest.format())
    return 0


def _health_main(argv: Sequence[str]) -> int:
    from .scenario import run_health_fleet

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs health",
        description="Sharded-fleet health/SLO report")
    parser.add_argument("--agws", type=int, default=20)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--ues-per-agw", type=int, default=2)
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--checkin-interval", type=float, default=5.0)
    parser.add_argument("--flightrec", default=None,
                        help="dump the flight recorder (JSONL) here")
    args = parser.parse_args(argv)

    run = run_health_fleet(num_agws=args.agws, num_shards=args.shards,
                           ues_per_agw=args.ues_per_agw,
                           duration=args.duration, seed=args.seed,
                           checkin_interval=args.checkin_interval)
    report = run.report
    fleet = report["fleet"]
    print(f"fleet health @ t={fleet['time']:.1f}s: {fleet['agws']} AGWs, "
          f"mean {fleet['mean_score']:.1f}, min {fleet['min_score']:.1f}")
    lags = fleet["convergence_lag_s"]
    if lags:
        lag_text = ", ".join(f"{net}={lag:.2f}s"
                             for net, lag in sorted(lags.items()))
    else:
        lag_text = "none measured"
    print(f"convergence lag (publish → all applied): {lag_text}")
    pending = fleet["convergence_pending"]
    if pending:
        for net, age in sorted(pending.items()):
            print(f"  pending publish in {net}: waiting {age:.2f}s")
    else:
        print("  no unconverged publishes")

    print("\nper-shard:")
    for shard_id, row in sorted(report["shards"].items()):
        print(f"  {shard_id:<8} agws={row['agws']:<3} "
              f"mean={row['mean_score']:6.1f}  min={row['min_score']:6.1f}"
              f"  worst={row['worst_agw']}")

    trace_ids = {span.trace_id for span in run.tracer.spans}
    exemplars = 0
    resolved = 0
    print("\nper-AGW:")
    for gateway_id, health in sorted(report["agws"].items()):
        sub = health["subscores"]
        detail = health["detail"]
        line = (f"  {gateway_id:<8} score={health['score']:6.1f}  "
                f"attach={sub['attach']:.2f} latency={sub['latency']:.2f} "
                f"cpu={sub['cpu']:.2f} fresh={sub['freshness']:.2f} "
                f"conv={sub['convergence']:.2f}")
        p99 = detail.get("attach_p99_s")
        if p99 is not None:
            line += f"  p99={p99 * 1e3:.1f}ms"
        exemplar = detail.get("attach_p99_exemplar")
        if exemplar is not None:
            exemplars += 1
            ok = exemplar["trace_id"] in trace_ids
            resolved += ok
            line += (f" trace={exemplar['trace_id']:x}"
                     f"{'' if ok else ' (UNRESOLVED)'}")
        print(line)
    print(f"\nexemplar check: {resolved}/{exemplars} p99 exemplars resolve "
          "to recorded traces")
    if args.flightrec:
        lines = run.recorder.dump_jsonl(args.flightrec)
        print(f"wrote {lines} flight-recorder lines to {args.flightrec}")
    return 0 if resolved == exemplars else 1
