"""``python -m repro.obs`` entry point."""

import sys

from .cli import main

sys.exit(main())
