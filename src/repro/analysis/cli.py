"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (or fully suppressed), 1 violations, 2 usage or parse
errors.  ``--json-output`` always writes the machine report (CI uploads
it as an artifact even when the step fails).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .core import AnalysisCache, Baseline, Finding, all_rules, analyze_paths

#: Auto-loaded from the working directory when --baseline is not given.
DEFAULT_BASELINE = "reprolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("reprolint: static analysis enforcing the "
                     "reproduction's core invariants (checkpoint "
                     "completeness, determinism, non-blocking coroutines, "
                     "desired-state sync, failure hygiene)"))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON report on stdout instead of text")
    parser.add_argument("--json-output", metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings matching this baseline file "
                             f"(default: ./{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline, including the default")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE as a baseline "
                             "and exit 0")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="analyze files with N worker processes "
                             "(0 = one per CPU; default: 1)")
    parser.add_argument("--cache", metavar="FILE",
                        help="persist a content-hash findings cache to "
                             "FILE; unchanged files skip parse and rules")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"    {rule.description}")
        lines.append(f"    guards: {rule.invariant}")
    return "\n".join(lines)


def _report(findings: List[Finding], suppressed: int,
            unused, parse_errors, file_count: int, rules) -> dict:
    return {
        "tool": "reprolint",
        "version": 1,
        "rules": [rule.name for rule in rules],
        "files_analyzed": file_count,
        "findings": [finding.to_dict() for finding in findings],
        "suppressed_by_baseline": suppressed,
        "unused_baseline_entries": unused,
        "parse_errors": parse_errors,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
    try:
        rules = all_rules(select)
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache = AnalysisCache(args.cache) if args.cache else None
    try:
        findings, parse_errors, file_count = analyze_paths(
            args.paths, rules, jobs=jobs, cache=cache)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    if cache is not None:
        cache.save()

    if args.write_baseline:
        Baseline.write(args.write_baseline, findings)
        print(f"reprolint: wrote {len(findings)} suppression(s) to "
              f"{args.write_baseline}")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    suppressed = 0
    unused: List[dict] = []
    if baseline_path and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"reprolint: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        kept = []
        for finding in findings:
            if baseline.suppresses(finding):
                suppressed += 1
            else:
                kept.append(finding)
        findings = kept
        unused = baseline.unused_entries()

    report = _report(findings, suppressed, unused, parse_errors,
                     file_count, rules)
    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        for finding in findings:
            print(finding.render())
        for error in parse_errors:
            print(f"{error['path']}: PARSE ERROR: {error['message']}")
        summary = (f"reprolint: {file_count} file(s), "
                   f"{len(findings)} finding(s)")
        if suppressed:
            summary += f", {suppressed} baseline-suppressed"
        print(summary)
        for entry in unused:
            print(f"reprolint: note: unused baseline entry "
                  f"{entry['rule']} @ {entry['path']}")

    if parse_errors:
        return 2
    return 1 if findings else 0
