"""Intra-procedural control-flow graphs for reprolint's dataflow rules.

The per-node AST rules (REPRO1xx-5xx) check properties a single statement
can witness.  The timer-leak and yield-atomicity families (REPRO6xx) are
*path* properties — "every path out of this scope cancels the handle",
"no read-modify-write straddles a yield" — so they need a CFG.

The graph is statement-level: one :class:`CfgNode` per simple statement
(assignments, expression statements, ``return``, ...) plus one per branch
test (``if``/``while`` conditions, ``for`` iterators) and synthetic
``entry``/``exit``/``except``/``finally`` landing nodes.  Compound
statements contribute structure (edges), not nodes.

Two modelling decisions matter for soundness of the rules built on top:

- **Yield points throw.**  In this kernel, interrupts and failed awaited
  events surface as exceptions raised *at the yield* (see
  ``Process._step``).  Every statement whose own expressions contain a
  ``yield``/``yield from``/``await`` therefore gets exception edges to the
  innermost enclosing handler/finally landings — or straight to ``exit``
  when there are none.  This is exactly why ``schedule(); yield; cancel()``
  leaks and the PR 6 ``finally``-revoke pattern does not, and the CFG makes
  that difference visible to a must-analysis.
- **``finally`` runs on every exit.**  The finally body is built once; its
  entry is reachable from normal completion, from every handler, from the
  exceptional landing, and from ``return`` statements inside the try
  (which are routed through the innermost enclosing finally).  Its exits
  continue both to the code after the ``try`` and to the next outer
  landing (or ``exit``), over-approximating propagation.  Extra infeasible
  paths only make the must-analysis more conservative, never unsound.

Plain (non-yield) calls are deliberately *not* treated as throwing: the
rules built here target coroutine interleaving hazards, and modelling
every call as a potential raise would drown them in infeasible paths.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = ["CfgNode", "Cfg", "build_cfg", "stmt_has_yield"]

# Statements that become a single CFG node as-is.
_SIMPLE = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Pass,
           ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal, ast.Assert,
           ast.Delete, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _expr_has_yield(node: Optional[ast.AST]) -> bool:
    """True when an expression tree contains a yield point in its own scope
    (nested lambdas/defs excluded — their yields belong to them)."""
    if node is None:
        return False
    stack = [node]
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        stack.extend(ast.iter_child_nodes(child))
    return False


def stmt_has_yield(stmt: ast.stmt) -> bool:
    """True when a *simple* statement's expressions contain a yield point."""
    for field in stmt._fields:
        value = getattr(stmt, field, None)
        if isinstance(value, ast.expr) and _expr_has_yield(value):
            return True
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr) and _expr_has_yield(item):
                    return True
    return False


class CfgNode:
    """One vertex: a simple statement, a branch test, or a landing pad."""

    __slots__ = ("index", "kind", "stmt", "expr", "succ", "pred", "is_yield")

    def __init__(self, index: int, kind: str, stmt: Optional[ast.AST],
                 expr: Optional[ast.expr] = None):
        self.index = index
        self.kind = kind          # entry|exit|stmt|test|except|finally
        self.stmt = stmt          # owning ast statement (None for entry/exit)
        self.expr = expr          # the test/iter expression for kind=="test"
        self.succ: List[int] = []
        self.pred: List[int] = []
        self.is_yield = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = getattr(self.stmt, "lineno", "?")
        return f"<CfgNode #{self.index} {self.kind} L{where} -> {self.succ}>"


class Cfg:
    """The built graph.  ``nodes[0]`` is entry, ``nodes[1]`` is exit."""

    ENTRY = 0
    EXIT = 1

    def __init__(self, func: ast.AST):
        self.func = func
        self.nodes: List[CfgNode] = []
        self._by_stmt: Dict[int, CfgNode] = {}

    @property
    def entry(self) -> CfgNode:
        return self.nodes[self.ENTRY]

    @property
    def exit(self) -> CfgNode:
        return self.nodes[self.EXIT]

    def node_of(self, stmt: ast.stmt) -> Optional[CfgNode]:
        """The node for a simple statement (None for compound statements,
        whose structure is edges rather than a node)."""
        return self._by_stmt.get(id(stmt))


class _Builder:
    def __init__(self, func: ast.AST):
        self.cfg = Cfg(func)
        self._new("entry", None)
        self._new("exit", None)
        # (continue_target_index, break_collector) per enclosing loop.
        self._loops: List[tuple] = []
        # Exception landing node indices for the innermost try region.
        self._landings: List[List[int]] = []
        # Innermost enclosing finally landing (for return routing).
        self._finallies: List[int] = []

    def _new(self, kind: str, stmt: Optional[ast.AST],
             expr: Optional[ast.expr] = None) -> CfgNode:
        node = CfgNode(len(self.cfg.nodes), kind, stmt, expr)
        self.cfg.nodes.append(node)
        return node

    def _edge(self, src: int, dst: int) -> None:
        nodes = self.cfg.nodes
        if dst not in nodes[src].succ:
            nodes[src].succ.append(dst)
            nodes[dst].pred.append(src)

    def _connect(self, preds: List[int], dst: int) -> None:
        for src in preds:
            self._edge(src, dst)

    def _exception_targets(self) -> List[int]:
        """Where an exception raised here lands: the innermost try region's
        landing pads, or function exit when uncovered."""
        if self._landings:
            return self._landings[-1]
        return [Cfg.EXIT]

    def _mark_yield(self, node: CfgNode) -> None:
        node.is_yield = True
        for target in self._exception_targets():
            self._edge(node.index, target)

    def build(self) -> Cfg:
        body = getattr(self.cfg.func, "body", [])
        frontier = self._block(body, [Cfg.ENTRY])
        self._connect(frontier, Cfg.EXIT)
        return self.cfg

    def _block(self, stmts: List[ast.stmt], preds: List[int]) -> List[int]:
        for stmt in stmts:
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        cfg = self.cfg
        if isinstance(stmt, _SIMPLE):
            node = self._new("stmt", stmt)
            cfg._by_stmt[id(stmt)] = node
            self._connect(preds, node.index)
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)) and stmt_has_yield(stmt):
                self._mark_yield(node)
            return [node.index]

        if isinstance(stmt, ast.Return):
            node = self._new("stmt", stmt)
            cfg._by_stmt[id(stmt)] = node
            self._connect(preds, node.index)
            if stmt.value is not None and _expr_has_yield(stmt.value):
                self._mark_yield(node)
            # return runs the innermost enclosing finally before leaving.
            if self._finallies:
                self._edge(node.index, self._finallies[-1])
            else:
                self._edge(node.index, Cfg.EXIT)
            return []

        if isinstance(stmt, ast.Raise):
            node = self._new("stmt", stmt)
            cfg._by_stmt[id(stmt)] = node
            self._connect(preds, node.index)
            for target in self._exception_targets():
                self._edge(node.index, target)
            return []

        if isinstance(stmt, ast.Break):
            node = self._new("stmt", stmt)
            cfg._by_stmt[id(stmt)] = node
            self._connect(preds, node.index)
            if self._loops:
                self._loops[-1][1].append(node.index)
            return []

        if isinstance(stmt, ast.Continue):
            node = self._new("stmt", stmt)
            cfg._by_stmt[id(stmt)] = node
            self._connect(preds, node.index)
            if self._loops:
                self._edge(node.index, self._loops[-1][0])
            return []

        if isinstance(stmt, ast.If):
            test = self._new("test", stmt, stmt.test)
            cfg._by_stmt[id(stmt)] = test
            self._connect(preds, test.index)
            if _expr_has_yield(stmt.test):
                self._mark_yield(test)
            then_frontier = self._block(stmt.body, [test.index])
            if stmt.orelse:
                else_frontier = self._block(stmt.orelse, [test.index])
            else:
                else_frontier = [test.index]
            return then_frontier + else_frontier

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            header = self._new("test", stmt, header_expr)
            cfg._by_stmt[id(stmt)] = header
            self._connect(preds, header.index)
            if _expr_has_yield(header_expr):
                self._mark_yield(header)
            breaks: List[int] = []
            self._loops.append((header.index, breaks))
            body_frontier = self._block(stmt.body, [header.index])
            self._connect(body_frontier, header.index)  # back edge
            self._loops.pop()
            if stmt.orelse:
                after = self._block(stmt.orelse, [header.index])
            else:
                after = [header.index]
            return after + breaks

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._new("stmt", stmt)
            cfg._by_stmt[id(stmt)] = node
            self._connect(preds, node.index)
            if any(_expr_has_yield(item.context_expr) for item in stmt.items):
                self._mark_yield(node)
            return self._block(stmt.body, [node.index])

        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)

        # Unknown/newer statement forms (e.g. ``match``): treat as an opaque
        # simple node so the graph stays connected and analyses stay sound
        # on the rest of the function.
        node = self._new("stmt", stmt)
        cfg._by_stmt[id(stmt)] = node
        self._connect(preds, node.index)
        return [node.index]

    def _try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        fin_landing: Optional[CfgNode] = None
        if stmt.finalbody:
            fin_landing = self._new("finally", stmt)
        handler_landings = [self._new("except", handler)
                            for handler in stmt.handlers]

        # Exceptions inside the body land on the handlers (and the finally
        # pad, covering non-matching exception types when one exists).
        body_targets = [n.index for n in handler_landings]
        if fin_landing is not None:
            body_targets = body_targets + [fin_landing.index]
        self._landings.append(body_targets)
        if fin_landing is not None:
            self._finallies.append(fin_landing.index)
        body_frontier = self._block(stmt.body, preds)
        if stmt.orelse:
            body_frontier = self._block(stmt.orelse, body_frontier)
        self._landings.pop()

        # Exceptions inside a handler land on this try's finally (if any),
        # else on the next outer region.
        normal_exits = list(body_frontier)
        for handler, landing in zip(stmt.handlers, handler_landings):
            if fin_landing is not None:
                self._landings.append([fin_landing.index])
            normal_exits.extend(self._block(handler.body, [landing.index]))
            if fin_landing is not None:
                self._landings.pop()

        if fin_landing is None:
            return normal_exits

        self._finallies.pop()
        # The finally body runs after normal completion, after each handler,
        # and on the exceptional path (the landing pad).
        self._connect(normal_exits, fin_landing.index)
        fin_frontier = self._block(stmt.finalbody, [fin_landing.index])
        # Exceptional continuation: propagate to the outer landing / exit.
        # (Also an infeasible normal-path edge; harmless for must-analyses.)
        if self._finallies:
            outer = [self._finallies[-1]]
        else:
            outer = self._exception_targets()
        for target in outer:
            self._connect(fin_frontier, target)
        return fin_frontier


def build_cfg(func: ast.AST) -> Cfg:
    """Build the CFG for one ``FunctionDef``/``AsyncFunctionDef`` body."""
    return _Builder(func).build()
