"""reprolint: domain-aware static analysis for the Magma reproduction.

The paper's architecture rests on a handful of load-bearing invariants
that ordinary linters cannot see:

- **Crash recovery** (§3.3): runtime state checkpointed by ``magmad`` must
  round-trip completely — a field silently dropped from a snapshot is a
  latent recovery bug (PR 1's ECM ``connected`` flag was exactly this).
- **Deterministic replay**: all time and randomness flow through the sim
  kernel (``sim.now``) and named RNG streams (``repro.sim.rng``); wall
  clocks and the global ``random`` module break replicability.
- **Cooperative scheduling**: sim coroutines must never block the real
  thread (``time.sleep``, sockets, file IO) — one blocking call stalls
  every simulated process.
- **Desired-state sync** (§3.4): configuration is only ever written by the
  orchestrator and converges replicas with full-state pushes; per-entry
  CRUD deltas on replicated stores are the anti-pattern the paper rejects.
- **Failure hygiene**: broad ``except`` clauses need a stated reason, or
  they hide the very session errors the fault-domain analysis measures.
- **Interleaving safety** (REPRO6xx): every kernel timer handle must be
  revoked on all paths out of its scope, and no read-modify-write on
  shared state may straddle a yield point — dataflow rules over a
  per-function CFG (:mod:`repro.analysis.cfg`), with the SimSan runtime
  sanitizer (:mod:`repro.sim.sansim`) checking the same discipline live.

Each invariant is a pluggable AST rule (see :mod:`repro.analysis.rules`).
Run the pass with ``python -m repro.analysis src``; suppress individual
lines with ``# reprolint: disable=<rule>`` and known legacy findings with
a ``--baseline`` file.
"""

from .core import (  # noqa: F401  (public API re-exports)
    AnalysisCache,
    Baseline,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    register,
)
