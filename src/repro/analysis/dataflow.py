"""Worklist dataflow solvers over :mod:`repro.analysis.cfg` graphs.

Two entry points cover the REPRO6xx rule families:

- :func:`solve_forward` — a classic iterative may/must solver with
  set-valued facts, used by the yield-atomicity rule (forward, union
  meet: "which locals hold a pre-yield snapshot of a shared attribute").
- :func:`must_reach` — the specialised backward boolean analysis behind
  the timer-leak rule: *does every path from this node to function exit
  pass through a covering node before any killing node?*  It computes the
  greatest fixpoint (start optimistic, shrink), which is the standard
  formulation for a must-property over graphs with cycles: a loop that
  never decides is treated as covered only if every way out of it is.

Both operate purely on node indices so rules stay in charge of what a
"fact" means; the solvers never look at the AST.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from .cfg import Cfg, CfgNode

__all__ = ["must_reach", "solve_forward"]


def must_reach(cfg: Cfg, start: int,
               covers: Callable[[CfgNode], bool],
               kills: Callable[[CfgNode], bool]) -> bool:
    """True iff every path from ``start``'s successors to exit hits a node
    where ``covers`` holds, before any node where ``kills`` holds.

    ``covers`` nodes terminate a path successfully (the obligation is met
    there); ``kills`` nodes terminate it unsuccessfully (the tracked value
    is gone, the obligation can no longer be met); reaching exit without
    either is likewise a failure.
    """
    nodes = cfg.nodes
    # Optimistic initialisation: everything covered except exit; iterate
    # downwards to the greatest fixpoint.
    covered = [True] * len(nodes)
    covered[Cfg.EXIT] = False
    changed = True
    while changed:
        changed = False
        for node in nodes:
            index = node.index
            if index == Cfg.EXIT:
                continue
            if covers(node):
                continue  # stays True
            if kills(node):
                value = False
            elif node.succ:
                value = True
                for succ in node.succ:
                    if not covered[succ]:
                        value = False
                        break
            else:
                # Dangling node (unreachable continuation): vacuously fine.
                value = True
            if value != covered[index]:
                covered[index] = value
                changed = True
    start_node = nodes[start]
    if not start_node.succ:
        return False
    return all(covered[succ] for succ in start_node.succ)


Facts = FrozenSet[tuple]


def solve_forward(cfg: Cfg,
                  transfer: Callable[[CfgNode, Facts], Facts],
                  initial: Facts = frozenset()) -> Dict[int, Tuple[Facts, Facts]]:
    """Forward may-analysis with union meet over frozenset facts.

    Returns ``{node_index: (in_facts, out_facts)}``.  ``transfer`` maps a
    node's in-set to its out-set and must be monotone (only ever add facts
    or rewrite existing ones to a bounded set of variants) for termination.
    """
    nodes = cfg.nodes
    in_facts: Dict[int, Facts] = {n.index: frozenset() for n in nodes}
    out_facts: Dict[int, Facts] = {n.index: frozenset() for n in nodes}
    in_facts[Cfg.ENTRY] = initial
    out_facts[Cfg.ENTRY] = transfer(nodes[Cfg.ENTRY], initial)

    worklist = [n.index for n in nodes if n.index != Cfg.ENTRY]
    pending = set(worklist)
    while worklist:
        index = worklist.pop(0)
        pending.discard(index)
        node = nodes[index]
        merged = frozenset().union(*(out_facts[p] for p in node.pred)) \
            if node.pred else frozenset()
        new_out = transfer(node, merged)
        if merged != in_facts[index] or new_out != out_facts[index]:
            in_facts[index] = merged
            out_facts[index] = new_out
            for succ in node.succ:
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return {index: (in_facts[index], out_facts[index]) for index in in_facts}
