"""desired-state-sync: configuration converges by full-state push, not deltas.

§3.4's central design argument: configuration state "is only ever written
by the orchestrator", and replicas converge by receiving the *entire*
desired state — one successful sync heals any number of lost updates.
Per-entry CRUD writes on a replicated store are the 3GPP-style
anti-pattern the paper (and TEGRA's critique of monolithic cores)
rejects: a lost delta silently desynchronizes the replica forever.

Detection: method calls that mutate one entry of an orchestrator-owned
store — ``upsert``/``delete`` on receivers named like replicated config
caches (``subscriberdb``, ``policydb``, ``hss``) and ``put``/``delete``
on config stores (``store``, ``config_store``) — outside the
orchestrator's own modules.  The sanctioned replica write path is
``apply_desired_state`` / ``apply_desired_config``.

Legitimate exceptions carry a pragma (e.g. the MME's federated-profile
cache fill, which is runtime state, not config sync) or a baseline entry
(experiment harnesses that pre-provision SIMs the way the paper's
evaluation does).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import FileContext, Finding, Rule, register

REPLICA_RECEIVERS = {"subscriberdb", "policydb", "hss"}
REPLICA_METHODS = {"upsert", "delete"}

STORE_RECEIVERS = {"store", "config_store", "_store"}
STORE_METHODS = {"put", "delete"}


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of the receiver expression (``a.b.c`` -> 'c')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register
class DesiredStateSync(Rule):
    name = "desired-state-sync"
    code = "REPRO401"
    description = ("flag per-entry CRUD mutation of orchestrator-owned "
                   "config stores outside the orchestrator")
    invariant = ("desired-state model (§3.4): config written only by the "
                 "orchestrator, replicas converge by full-state push")
    exempt_suffixes = (
        "core/orchestrator/statesync.py",
        "core/orchestrator/config_store.py",
        "core/orchestrator/orchestrator.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            method = func.attr
            receiver = _terminal_name(func.value)
            if receiver is None:
                continue
            if receiver in REPLICA_RECEIVERS and method in REPLICA_METHODS:
                yield self.finding(
                    ctx, node,
                    f"direct {method}() on replicated config store "
                    f"'{receiver}' is a CRUD delta; desired state flows "
                    f"from the orchestrator via apply_desired_state() "
                    f"(a lost delta desynchronizes the replica forever)")
            elif receiver in STORE_RECEIVERS and method in STORE_METHODS:
                yield self.finding(
                    ctx, node,
                    f"direct {method}() on config store '{receiver}' "
                    f"outside the orchestrator; configuration is only ever "
                    f"written by the orchestrator (§3.4)")
