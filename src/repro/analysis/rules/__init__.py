"""Rule modules.  Importing this package registers every rule."""

from . import blocking, checkpoint, determinism, excepts, statesync  # noqa: F401
