"""Rule modules.  Importing this package registers every rule."""

from . import (atomicity, blocking, checkpoint, determinism, excepts,  # noqa: F401
               statesync, timers)  # noqa: F401
