"""no-blocking-in-coroutine: sim coroutines must stay cooperative.

Every protocol state machine, RPC exchange, and workload in this
reproduction is a generator scheduled on ``repro.sim.kernel``.  The
kernel interleaves thousands of them in one OS thread; a single
``time.sleep`` or real socket/file operation stalls *all* simulated
processes and decouples virtual time from progress.  Anything slow must
be expressed as virtual time (``yield sim.timeout(...)``) or an event.

Heuristic: any generator (a function whose own scope yields) or ``async
def`` in the tree is treated as a sim coroutine — in this codebase that
convention holds by construction.  Calls made through deferred nested
functions are attributed to the nested function, not the coroutine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import (FileContext, Finding, Rule, dotted_name, is_generator,
                    register, walk_own_scope)

BLOCKING_CALLS = {
    "time.sleep",
    "socket.socket", "socket.create_connection",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.request",
}

BLOCKING_BUILTINS = {"open", "input"}


@register
class NoBlockingInCoroutine(Rule):
    name = "no-blocking-in-coroutine"
    code = "REPRO301"
    description = ("ban blocking calls (time.sleep, sockets, file IO) "
                   "inside generator/async coroutines")
    invariant = ("cooperative simulation: one blocking call stalls every "
                 "simulated process on the kernel")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(func, ast.FunctionDef) and not is_generator(func):
                continue
            for node in walk_own_scope(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name in BLOCKING_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"blocking call {name}() inside coroutine "
                        f"'{func.name}' stalls the whole event loop; yield "
                        f"sim.timeout()/an event instead")
                elif (isinstance(node.func, ast.Name)
                        and node.func.id in BLOCKING_BUILTINS):
                    yield self.finding(
                        ctx, node,
                        f"blocking builtin {node.func.id}() inside coroutine "
                        f"'{func.name}' performs real IO on the sim thread; "
                        f"move it outside the coroutine or model it as "
                        f"virtual-time work")
