"""timer-leak: every kernel timer handle must be revoked on all paths.

PR 6 hand-fixed four bugs of one shape: a guard/deadline timer scheduled
before a yield point was never cancelled on the losing side of a race, so
a drained run carried rotted 15s guards (and a million-UE run carried a
million of them).  The fix pattern is mechanical — revoke the handle in a
``finally`` — and this rule makes it an invariant instead of a review
item.

For each ``h = sim.schedule(...)`` / ``schedule_at`` / ``schedule_periodic``
binding a plain local, a backward must-analysis over the function's CFG
(:mod:`repro.analysis.cfg`) demands that *every* path from the binding to
function exit reaches one of:

- ``h.cancel()`` / ``h.release()`` — the handle is revoked;
- an *escape* — ``h`` is stored into an attribute/subscript/collection,
  passed to a call, returned, yielded, aliased, or captured by a nested
  function: ownership moved somewhere this intra-procedural analysis
  cannot see, so the obligation moves with it (the RPC layer's
  ``record.expire = sim.schedule(...)`` pattern).

Rebinding ``h`` before revoking kills the only reference — those paths
are leaks too.  Yield points carry exception edges in the CFG, so
``schedule(); yield; cancel()`` is correctly flagged (an interrupt at the
yield skips the cancel) while the ``try/finally`` revoke is correctly
accepted: this is precisely the PR 6 bug class, now machine-checked.

Two companion checks need no dataflow:

- a schedule call whose handle is discarded outright (a bare expression
  statement) — fire-and-forget work belongs on ``call_later()``, which
  recycles its entry at fire time instead of growing the garbage set;
- a handle-shaped binding from ``call_later()``, which returns ``None``
  by design — the author wanted ``schedule()``.

A conditional revoke guarded by the handle itself (``if h is not None:
h.cancel()``) is recognised: the branch test is the liveness check, so
the test node counts as covering.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..cfg import CfgNode, build_cfg
from ..core import FileContext, Finding, Rule, dotted_name, register
from ..dataflow import must_reach

SCHEDULE_METHODS = ("schedule", "schedule_at", "schedule_periodic")
REVOKE_METHODS = ("cancel", "release")
# Receiver heads that identify the kernel scheduler: ``sim.schedule`` and
# ``self.sim.schedule`` cover this codebase's convention.
_SIM_HEADS = ("sim", "simulator", "_sim")
# Handle attribute reads that are not an ownership transfer.
_HANDLE_READS = ("active", "when", "seq")


def _scheduler_call(node: ast.AST) -> Optional[str]:
    """The schedule-method name when ``node`` is a handle-returning kernel
    scheduling call, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in SCHEDULE_METHODS:
        return None
    receiver = dotted_name(func.value)
    if receiver is None:
        return None
    if receiver.split(".")[-1] in _SIM_HEADS:
        return func.attr
    return None


def _call_later_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "call_later":
        return False
    receiver = dotted_name(func.value)
    return receiver is not None and receiver.split(".")[-1] in _SIM_HEADS


def _walk_exprs(root: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression tree without entering nested function scopes."""
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _stmt_exprs(node: CfgNode) -> List[ast.AST]:
    """The expression roots a CFG node evaluates (test nodes evaluate only
    their condition/iterator, not their body)."""
    if node.stmt is None:
        return []
    if node.kind == "test":
        return [node.expr] if node.expr is not None else []
    if node.kind in ("except", "finally"):
        return []
    roots: List[ast.AST] = []
    for field in node.stmt._fields:
        value = getattr(node.stmt, field, None)
        if isinstance(value, ast.expr):
            roots.append(value)
        elif isinstance(value, list):
            roots.extend(v for v in value if isinstance(v, ast.expr))
    return roots


def _revokes(node: CfgNode, var: str) -> bool:
    """True when the node calls ``var.cancel()``/``var.release()`` — or is a
    branch test on ``var`` guarding such a call (``if h: h.cancel()``)."""
    for root in _stmt_exprs(node):
        for expr in _walk_exprs(root):
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in REVOKE_METHODS
                    and isinstance(expr.func.value, ast.Name)
                    and expr.func.value.id == var):
                return True
    if (node.kind == "test" and isinstance(node.stmt, ast.If)
            and node.expr is not None):
        mentions = any(isinstance(e, ast.Name) and e.id == var
                       for e in _walk_exprs(node.expr))
        if mentions:
            for stmt in node.stmt.body:
                for expr in ast.walk(stmt):
                    if (isinstance(expr, ast.Call)
                            and isinstance(expr.func, ast.Attribute)
                            and expr.func.attr in REVOKE_METHODS
                            and isinstance(expr.func.value, ast.Name)
                            and expr.func.value.id == var):
                        return True
    return False


def _escapes(node: CfgNode, var: str) -> bool:
    """True when ownership of ``var`` leaves this scope at ``node``."""
    for root in _stmt_exprs(node):
        # Parent-aware scan: find Name loads of ``var`` and classify the
        # context they appear in.
        stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [(root, None)]
        while stack:
            expr, parent = stack.pop()
            if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                # Closure capture: does the nested scope read ``var``?
                for inner in ast.walk(expr):
                    if isinstance(inner, ast.Name) and inner.id == var:
                        return True
                continue
            if isinstance(expr, ast.Name) and expr.id == var \
                    and isinstance(expr.ctx, ast.Load):
                if isinstance(parent, ast.Attribute):
                    # ``h.cancel()`` / ``h.active`` — a read, not a transfer
                    # (unknown attributes are conservatively reads too).
                    continue
                if isinstance(parent, (ast.Compare, ast.BoolOp, ast.UnaryOp)):
                    continue  # truthiness / identity tests
                # Everything else hands the value somewhere: call argument,
                # collection element, return/yield value, RHS of a store.
                return True
            for child in ast.iter_child_nodes(expr):
                stack.append((child, expr))
    # A store through an attribute/subscript target with ``var`` anywhere on
    # the RHS was caught above (the RHS Name's parent is the Assign value
    # expression or the Name itself is the value root).
    if isinstance(node.stmt, (ast.Assign, ast.AnnAssign)) and node.kind == "stmt":
        value = node.stmt.value
        if isinstance(value, ast.Name) and value.id == var:
            return True  # plain alias ``other = h``
    return False


def _rebinds(node: CfgNode, var: str) -> bool:
    stmt = node.stmt
    if node.kind == "test" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        return any(isinstance(t, ast.Name) and t.id == var
                   for t in ast.walk(stmt.target))
    if node.kind != "stmt":
        return False
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for t in ast.walk(target):
                if isinstance(t, ast.Name) and t.id == var \
                        and isinstance(t.ctx, ast.Store):
                    return True
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        t = stmt.target
        if isinstance(t, ast.Name) and t.id == var:
            return True
    elif isinstance(stmt, ast.Delete):
        return any(isinstance(t, ast.Name) and t.id == var
                   for t in stmt.targets)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for t in ast.walk(item.optional_vars):
                    if isinstance(t, ast.Name) and t.id == var:
                        return True
    return False


@register
class TimerLeak(Rule):
    name = "timer-leak"
    code = "REPRO601"
    description = ("schedule()/schedule_periodic() handles must reach "
                   "cancel()/release() on every path (or escape to an "
                   "owner); fire-and-forget work belongs on call_later()")
    invariant = ("no rotted timers: a drained run holds no pending entries "
                 "whose owner already exited (the PR 6 guard-timer bug "
                 "class)")
    exempt_suffixes = ("sim/kernel.py", "sim/sansim.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterator[Finding]:
        # Cheap pre-scan before paying for a CFG build.
        interesting = False
        for node in ast.walk(func):
            if _scheduler_call(node) or _call_later_call(node):
                interesting = True
                break
        if not interesting:
            return

        cfg = build_cfg(func)
        creations: List[Tuple[CfgNode, str, str]] = []
        for node in cfg.nodes:
            stmt = node.stmt
            if node.kind != "stmt" or stmt is None:
                continue
            if isinstance(stmt, ast.Expr):
                method = _scheduler_call(stmt.value)
                if method is not None:
                    yield self.finding(
                        ctx, stmt,
                        f"handle from {method}() is discarded; use "
                        f"call_later() for fire-and-forget work or keep "
                        f"the handle and cancel() it")
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                if _call_later_call(value):
                    yield self.finding(
                        ctx, stmt,
                        "call_later() returns no handle (fire-and-forget "
                        "by design); use schedule() if the callback must "
                        "be cancelable")
                    continue
                method = _scheduler_call(value)
                if method is None:
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    creations.append((node, targets[0].id, method))
                # Attribute/subscript targets transfer ownership at birth;
                # tuple targets are out of scope for the analysis.

        for creation, var, method in creations:
            def covers(n: CfgNode, _var: str = var,
                       _creation: CfgNode = creation) -> bool:
                return n is not _creation and (
                    _revokes(n, _var) or _escapes(n, _var))

            def kills(n: CfgNode, _var: str = var,
                      _creation: CfgNode = creation) -> bool:
                return n is not _creation and _rebinds(n, _var)

            if not must_reach(cfg, creation.index, covers, kills):
                yield self.finding(
                    ctx, creation.stmt,
                    f"timer handle '{var}' from {method}() may leak: "
                    f"cancel()/release() is not reached on every path out "
                    f"of '{getattr(func, 'name', '<fn>')}' (revoke it in a "
                    f"finally, or hand it to an owner)")
