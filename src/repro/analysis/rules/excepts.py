"""broad-except-hygiene: broad handlers need a stated reason.

The fault-domain analysis (§3.3) depends on failures being *visible*: a
``except Exception`` that silently swallows errors hides exactly the
session faults the paper's small-fault-domain argument measures.  Broad
handlers are sometimes right (process boundaries, best-effort reporting),
so the rule demands a same-line justification comment rather than banning
them outright.

Accepted justifications (same line as the ``except``):

- any comment with real words, e.g. ``# cell full, eNB down, ...``
- a tagged reason, e.g. ``# noqa: BLE001 - surfaced to caller``

A bare tag with no reason (``# noqa: BLE001`` alone) does not count.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

BROAD_NAMES = {"Exception", "BaseException"}

_NOQA_PREFIX = re.compile(r"^noqa(?::\s*[A-Z0-9, ]+)?", re.IGNORECASE)
_SEPARATORS = " \t-–—:,."
#: Minimum characters of actual justification text.
MIN_REASON_CHARS = 3


def _broad_kind(handler: ast.ExceptHandler):
    """'bare', the broad class name, or None for a narrow handler."""
    if handler.type is None:
        return "bare"
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = list(handler.type.elts)
    else:
        names = [handler.type]
    for node in names:
        if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
            return node.id
    return None


def _justification(line: str) -> str:
    """The justification text carried by the line's comment, if any."""
    hash_index = line.find("#")
    if hash_index < 0:
        return ""
    comment = line[hash_index + 1:].strip()
    # A pragma is handled by the suppression layer, not treated as prose.
    comment = re.sub(r"reprolint:\s*disable=[A-Za-z0-9_,\- ]+", "", comment)
    comment = _NOQA_PREFIX.sub("", comment.strip())
    return comment.strip(_SEPARATORS)


@register
class BroadExceptHygiene(Rule):
    name = "broad-except-hygiene"
    code = "REPRO501"
    description = ("except Exception / bare except must carry a same-line "
                   "justification comment")
    invariant = ("failure visibility: swallowed errors hide the session "
                 "faults the fault-domain analysis measures (§3.3)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            kind = _broad_kind(node)
            if kind is None:
                continue
            reason = _justification(ctx.line_text(node.lineno))
            if len(reason) >= MIN_REASON_CHARS:
                continue
            what = ("bare 'except:'" if kind == "bare"
                    else f"'except {kind}'")
            yield self.finding(
                ctx, node,
                f"{what} without a same-line justification comment swallows "
                f"kernel and programming errors alike; catch the specific "
                f"failure or state why broad is right here")
