"""checkpoint-completeness: every checkpointed dataclass field round-trips.

The crash-recovery failure model (§3.3) only works if ``checkpoint()``
captures *all* of a session record's runtime state and ``restore()``
rebuilds all of it.  A field the serializer never reads is silently
dropped from every snapshot; a field the restorer never sets silently
reverts to its default after recovery.  PR 1's ECM ``connected`` bug was
exactly this shape, and this rule makes the class mechanical.

Detection: within one module, find classes defining both ``checkpoint``
and ``restore`` methods.  A ``@dataclass`` in the same module whose field
names overlap heavily with the attributes ``checkpoint`` reads is taken
to be the serialized record.  Each of its fields must then be

- read somewhere in ``checkpoint`` (attribute load), and
- written somewhere in ``restore`` — as a keyword argument to the
  dataclass constructor or as an attribute assignment.

Findings anchor on the field's definition line, so an intentionally
ephemeral field is excluded with a same-line
``# reprolint: disable=checkpoint-completeness`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..core import FileContext, Finding, Rule, register

#: Minimum field-name overlap before a dataclass counts as "the record
#: being checkpointed" (guards against coincidental one-field matches).
MIN_OVERLAP = 3

_DATACLASS_DECORATORS = {"dataclass"}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else None
        if name in _DATACLASS_DECORATORS:
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """(name, lineno) for every non-ClassVar annotated field."""
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((stmt.target.id, stmt.lineno))
    return fields


def _method(node: ast.ClassDef, name: str):
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and stmt.name == name:
            return stmt
    return None


def _attribute_reads(func: ast.AST) -> Set[str]:
    return {n.attr for n in ast.walk(func)
            if isinstance(n, ast.Attribute) and isinstance(n.ctx, ast.Load)}


def _restore_writes(func: ast.AST, record_class: str) -> Set[str]:
    """Field names ``restore`` populates for the given record class."""
    written: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            name = target.attr if isinstance(target, ast.Attribute) else \
                target.id if isinstance(target, ast.Name) else None
            if name == record_class:
                written.update(kw.arg for kw in node.keywords
                               if kw.arg is not None)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            written.add(node.attr)
    return written


@register
class CheckpointCompleteness(Rule):
    name = "checkpoint-completeness"
    code = "REPRO101"
    description = ("every field of a checkpointed dataclass must be read by "
                   "checkpoint() and written back by restore()")
    invariant = ("crash-recovery: snapshots capture all session runtime "
                 "state (§3.3 small fault domains)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        dataclasses: Dict[str, List[Tuple[str, int]]] = {}
        pairs = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_dataclass(node):
                fields = _dataclass_fields(node)
                if fields:
                    dataclasses[node.name] = fields
            checkpoint = _method(node, "checkpoint")
            restore = _method(node, "restore")
            if checkpoint is not None and restore is not None:
                pairs.append((node, checkpoint, restore))
        for owner, checkpoint, restore in pairs:
            reads = _attribute_reads(checkpoint)
            for record_class, fields in dataclasses.items():
                field_names = {name for name, _ in fields}
                overlap = field_names & reads
                if len(overlap) < max(MIN_OVERLAP, len(field_names) // 2):
                    continue
                writes = _restore_writes(restore, record_class)
                for field_name, lineno in fields:
                    if field_name not in reads:
                        yield self.finding(
                            ctx, lineno,
                            f"field '{field_name}' of {record_class} is never "
                            f"read in {owner.name}.checkpoint(); it is "
                            f"silently dropped from every snapshot")
                    if field_name not in writes:
                        yield self.finding(
                            ctx, lineno,
                            f"field '{field_name}' of {record_class} is never "
                            f"written in {owner.name}.restore(); restored "
                            f"records silently revert to the field default")
