"""Determinism rules: no wall clocks, no unseeded global randomness.

Experiments must be replicable (the paper's Landslide testbed emphasises
replicable emulation): two runs with the same root seed must produce the
same trace.  Virtual time comes from the kernel (``sim.now`` /
``sim.timeout``); randomness comes from named, independently-seeded
streams (``repro.sim.rng.RngRegistry``).  Wall-clock reads and the global
``random`` module both smuggle nondeterminism past the seed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, dotted_name, register

WALLCLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
}

_RANDOM_MODULE_PREFIXES = ("random.", "np.random.", "numpy.random.")


@register
class NoWallclock(Rule):
    name = "no-wallclock"
    code = "REPRO201"
    description = ("ban wall-clock reads; simulated code takes time from "
                   "the kernel (sim.now)")
    invariant = "deterministic replay: virtual time only"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in WALLCLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {name}() breaks deterministic replay; "
                    f"take virtual time from the sim kernel (sim.now)")


@register
class NoUnseededRandom(Rule):
    name = "no-unseeded-random"
    code = "REPRO202"
    description = ("ban the global random module outside sim/rng.py; draw "
                   "from named RngRegistry streams")
    invariant = "deterministic replay: all randomness through seeded streams"
    exempt_suffixes = ("sim/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            ctx, node,
                            "import of the global 'random' module outside "
                            "sim/rng.py; draw from a named "
                            "repro.sim.rng.RngRegistry stream instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "from-import of the global 'random' module outside "
                        "sim/rng.py; draw from a named "
                        "repro.sim.rng.RngRegistry stream instead")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and name.startswith(_RANDOM_MODULE_PREFIXES):
                    yield self.finding(
                        ctx, node,
                        f"call to module-level {name}() is seeded globally "
                        f"(or not at all); draw from a named "
                        f"repro.sim.rng.RngRegistry stream instead")
