"""yield-point-atomicity: no read-modify-write across a yield.

A kernel coroutine owns the interpreter between yield points — but at a
yield, *anything* can run: other processes mutate the same gateway
stores, interrupts fire, RPC responses land.  The PR 1/PR 3 checkpoint
bugs were this shape: a value read from shared state before an await was
written back after it, silently undoing whatever ran in between.

The rule runs a forward may-analysis over the function CFG.  A fact is a
triple ``(local, attr_chain, crossed)``:

- **gen** — ``v = self.attr[.chain]`` binds a snapshot: ``(v, chain,
  False)``;
- **yield** — every live fact becomes ``crossed=True``: the snapshot is
  now *stale*, the store may have moved;
- **kill** — rebinding ``v`` drops its facts (re-reading ``v =
  self.attr`` after the yield is therefore the blessed fix: it generates
  a fresh, uncrossed fact);
- **guard** — a branch test that compares the stale local against a
  fresh read of the same attribute (``if self.attr != v: return``)
  un-stales the fact: the author is explicitly validating the snapshot;
- **report** — ``self.attr = <expr using v>`` where ``(v, "self.attr",
  True)`` is live: the write publishes a pre-yield snapshot.

Augmented assignment (``self.attr += d``) re-reads the attribute at
write time, so it is atomic with respect to the store and never
reported.  Only generator/async functions are analysed — straight-line
callbacks cannot be preempted by the kernel.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from ..cfg import CfgNode, build_cfg
from ..core import (FileContext, Finding, Rule, dotted_name, is_generator,
                    register)
from ..dataflow import solve_forward

Fact = Tuple[str, str, bool]  # (local, attr_chain, crossed_yield)


def _attr_chain(node: ast.AST) -> Optional[str]:
    """``self.a.b`` -> "self.a.b" for pure attribute chains on self."""
    name = dotted_name(node)
    if name is not None and name.startswith("self.") and name.count(".") >= 1:
        return name
    return None


def _own_walk(root: ast.AST) -> Iterator[ast.AST]:
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _names_read(expr: ast.AST) -> Set[str]:
    return {n.id for n in _own_walk(expr)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


def _stores(node: CfgNode) -> Set[str]:
    """Local names (re)bound at this node."""
    stmt = node.stmt
    bound: Set[str] = set()
    if stmt is None:
        return bound
    if node.kind == "test":
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            bound.update(n.id for n in ast.walk(stmt.target)
                         if isinstance(n, ast.Name))
        return bound
    if node.kind == "except":
        if isinstance(stmt, ast.ExceptHandler) and stmt.name:
            bound.add(stmt.name)
        return bound
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            bound.update(n.id for n in ast.walk(target)
                         if isinstance(n, ast.Name)
                         and isinstance(n.ctx, ast.Store))
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(stmt.target, ast.Name):
            bound.add(stmt.target.id)
    elif isinstance(stmt, ast.Delete):
        bound.update(n.id for n in stmt.targets if isinstance(n, ast.Name))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                bound.update(n.id for n in ast.walk(item.optional_vars)
                             if isinstance(n, ast.Name))
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.NamedExpr):
        if isinstance(stmt.value.target, ast.Name):
            bound.add(stmt.value.target.id)
    return bound


def _snapshot_bind(node: CfgNode) -> Optional[Tuple[str, str]]:
    """``v = self.attr.chain`` -> (v, chain)."""
    stmt = node.stmt
    if node.kind != "stmt" or not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        return None
    if stmt.value is None:
        return None
    if isinstance(stmt, ast.Assign):
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return None
        target = stmt.targets[0].id
    else:
        if not isinstance(stmt.target, ast.Name):
            return None
        target = stmt.target.id
    chain = _attr_chain(stmt.value)
    if chain is None:
        return None
    return target, chain


def _writeback(node: CfgNode) -> Optional[Tuple[str, Set[str]]]:
    """``self.attr = expr`` -> (chain, names read by expr)."""
    stmt = node.stmt
    if node.kind != "stmt" or not isinstance(stmt, ast.Assign):
        return None
    if len(stmt.targets) != 1:
        return None
    chain = _attr_chain(stmt.targets[0])
    if chain is None:
        return None
    return chain, _names_read(stmt.value)


def _guarded(node: CfgNode, facts: FrozenSet[Fact]) -> Set[Tuple[str, str]]:
    """Facts validated by this branch test: the test reads both the stale
    local and (freshly) the same attribute chain."""
    if node.kind != "test" or node.expr is None:
        return set()
    reads = _names_read(node.expr)
    chains = {c for n in _own_walk(node.expr)
              if isinstance(n, ast.Attribute) and (c := _attr_chain(n))}
    return {(var, chain) for var, chain, crossed in facts
            if crossed and var in reads and chain in chains}


@register
class YieldAtomicity(Rule):
    name = "yield-atomicity"
    code = "REPRO602"
    description = ("flag read-modify-write on self.* state that straddles "
                   "a yield/await without a re-read or a guard")
    invariant = ("interleaving safety: between yields, anything may run; "
                 "writing back a pre-yield snapshot undoes concurrent "
                 "updates (the PR 1/PR 3 checkpoint bug class)")
    exempt_suffixes = ("sim/kernel.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                pass
            elif isinstance(func, ast.FunctionDef):
                if not is_generator(func):
                    continue
            else:
                continue
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterator[Finding]:
        cfg = build_cfg(func)
        if not any(node.is_yield for node in cfg.nodes):
            return

        def transfer(node: CfgNode, facts: FrozenSet[Fact]) -> FrozenSet[Fact]:
            out = set(facts)
            # Branch-test guards validate stale snapshots.
            for var, chain in _guarded(node, facts):
                out.discard((var, chain, True))
                out.add((var, chain, False))
            # Rebinding a local drops its snapshots.
            stored = _stores(node)
            if stored:
                out = {f for f in out if f[0] not in stored}
            bind = _snapshot_bind(node)
            if bind is not None:
                out.add((bind[0], bind[1], False))
            if node.is_yield:
                out = {(var, chain, True) for var, chain, _ in out}
            return frozenset(out)

        solution = solve_forward(cfg, transfer)
        for node in cfg.nodes:
            wb = _writeback(node)
            if wb is None:
                continue
            chain, reads = wb
            in_facts = solution[node.index][0]
            hits = sorted({var for var, fchain, crossed in in_facts
                           if crossed and fchain == chain and var in reads})
            for var in hits:
                yield self.finding(
                    ctx, node.stmt,
                    f"write to {chain} uses '{var}', read before a yield "
                    f"point in '{getattr(func, 'name', '<fn>')}': other "
                    f"processes may have updated {chain} in between — "
                    f"re-read it after resuming, guard the write, or use "
                    f"an augmented assignment")
