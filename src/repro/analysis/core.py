"""The reprolint framework: findings, rules, pragmas, baselines, drivers.

Design mirrors the flow-verification discipline the paper inherits from
OVS: the invariants are encoded once, mechanically, and every change is
checked against them.  Rules are small AST visitors registered in a
module-level registry; the driver parses each file once and hands every
rule a shared :class:`FileContext`.

Suppression layers (most local wins):

1. ``# reprolint: disable=<rule>[,<rule>...]`` on the finding's line
   (``disable=all`` silences every rule for that line).
2. A baseline file (``--baseline``): JSON fingerprints of known, justified
   findings.  Fingerprints match on (rule, path-suffix, message) — not
   line numbers — so unrelated edits never invalidate them.
"""

from __future__ import annotations

import ast
import hashlib
import json
import multiprocessing
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str      # rule name, e.g. "checkpoint-completeness"
    code: str      # stable numeric code, e.g. "REPRO101"
    path: str      # posix path as analyzed (relative when possible)
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "code": self.code, "path": self.path,
                "line": self.line, "col": self.col, "message": self.message}

    def fingerprint(self) -> Dict[str, str]:
        """Line-insensitive identity used by baseline suppression."""
        return {"rule": self.rule, "path": self.path, "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.rule}] {self.message}")


class FileContext:
    """One parsed source file, shared by every rule."""

    def __init__(self, path: str, source: str):
        self.path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._disabled: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(line)
            if match:
                names = {name.strip() for name in match.group(1).split(",")}
                self._disabled[lineno] = {name for name in names if name}

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def disabled_at(self, lineno: int) -> Set[str]:
        return self._disabled.get(lineno, set())

    def is_suppressed(self, rule_name: str, lineno: int) -> bool:
        disabled = self.disabled_at(lineno)
        return rule_name in disabled or "all" in disabled


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects (use :meth:`finding` to build them).
    ``exempt_suffixes`` lists posix path suffixes where the rule does not
    apply (e.g. ``sim/rng.py`` owns the ``random`` module).
    """

    name: str = ""
    code: str = ""
    description: str = ""
    invariant: str = ""                 # the paper invariant this guards
    exempt_suffixes: Sequence[str] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(ctx.path.endswith(suffix)
                       for suffix in self.exempt_suffixes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: object, message: str) -> Finding:
        line = getattr(node, "lineno", node if isinstance(node, int) else 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=self.name, code=self.code, path=ctx.path,
                       line=int(line), col=int(col), message=message)


_REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    if not cls.name or not cls.code:
        raise ValueError(f"rule {cls!r} must define name and code")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate registered rules (optionally a named subset)."""
    from . import rules as _rules  # noqa: F401  (import registers the rules)
    names = sorted(_REGISTRY, key=lambda n: _REGISTRY[n].code)
    if select is not None:
        wanted = set(select)
        unknown = wanted - set(names)
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        names = [n for n in names if n in wanted]
    return [_REGISTRY[n]() for n in names]


# -- baseline --------------------------------------------------------------------------


class Baseline:
    """Suppression file for known, justified findings.

    Format::

        {"version": 1, "suppressions": [
            {"rule": "...", "path": "...", "message": "...", "reason": "..."}
        ]}

    ``path`` matches by suffix in either direction, so baselines written
    from the repo root keep matching when the tool runs from elsewhere.
    One entry may suppress several identical findings in the same file.
    """

    def __init__(self, entries: Optional[List[Dict[str, str]]] = None):
        self.entries = entries or []
        self._used = [False] * len(self.entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        entries = data.get("suppressions", [])
        for entry in entries:
            for key in ("rule", "path", "message"):
                if key not in entry:
                    raise ValueError(f"baseline entry missing {key!r}: {entry}")
        return cls(entries)

    @staticmethod
    def write(path: str, findings: Sequence[Finding]) -> None:
        """Write (or refresh) a baseline from the current findings.

        Refreshing an existing file preserves hand-edited ``reason``
        fields for fingerprints that still occur, carries forward prior
        entries the current run did not reproduce (e.g. rules excluded by
        ``--select``), and prunes entries whose source file no longer
        exists — deleted or renamed files used to leave their
        suppressions behind forever.  Run from the same directory the
        baseline's paths are relative to (normally the repo root).
        """
        existing: List[Dict[str, str]] = []
        if Path(path).exists():
            try:
                existing = Baseline.load(path).entries
            except (OSError, ValueError, json.JSONDecodeError):
                existing = []
        reasons = {(e["rule"], e["path"], e["message"]): e.get("reason", "")
                   for e in existing}
        entries = []
        seen = set()
        for finding in findings:
            fp = finding.fingerprint()
            key = (fp["rule"], fp["path"], fp["message"])
            if key in seen:
                continue
            seen.add(key)
            fp["reason"] = reasons.get(key) or "TODO: justify or fix"
            entries.append(fp)
        for entry in existing:
            key = (entry["rule"], entry["path"], entry["message"])
            if key in seen:
                continue
            if not Path(entry["path"]).exists():
                continue  # stale: the file was deleted or renamed
            seen.add(key)
            entries.append(dict(entry))
        payload = {"version": 1, "suppressions": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    def suppresses(self, finding: Finding) -> bool:
        for index, entry in enumerate(self.entries):
            if entry["rule"] != finding.rule:
                continue
            if entry["message"] != finding.message:
                continue
            if (finding.path.endswith(entry["path"])
                    or entry["path"].endswith(finding.path)):
                self._used[index] = True
                return True
        return False

    def unused_entries(self) -> List[Dict[str, str]]:
        return [entry for entry, used in zip(self.entries, self._used)
                if not used]


# -- findings cache --------------------------------------------------------------------


class AnalysisCache:
    """Persistent per-file analysis cache keyed by source content hash.

    The key is ``sha256(rule-key || source)`` where the rule key encodes
    which rules ran, so a cache survives across runs and branches: only
    files whose bytes changed (or runs with a different rule selection)
    are re-parsed and re-analyzed.  The cached value is the full analysis
    result — findings plus any parse error — which subsumes caching the
    AST itself: on a hit neither :func:`ast.parse` nor any rule runs.

    Cached findings are re-homed onto the current display path on read,
    so renaming a file (same content) still reports the new path.  Bump
    :data:`VERSION` whenever a rule's semantics change; it participates
    in the on-disk envelope and stale caches are silently discarded.
    """

    VERSION = 1

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.entries: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        if path and Path(path).exists():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                if data.get("version") == self.VERSION:
                    self.entries = data.get("entries", {})
            except (OSError, ValueError, json.JSONDecodeError):
                self.entries = {}

    @staticmethod
    def rule_key(rules: Sequence[Rule]) -> str:
        return ",".join(sorted(rule.code for rule in rules))

    @staticmethod
    def digest(rule_key: str, source: str) -> str:
        blob = rule_key.encode("utf-8") + b"\0" + source.encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def get(self, digest: str, shown: str):
        """Return ``(findings, parse_error)`` for a hit, else ``None``."""
        entry = self.entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        findings = [Finding(**{**raw, "path": shown})  # type: ignore[arg-type]
                    for raw in entry.get("findings", [])]
        error = entry.get("parse_error")
        if error is not None:
            error = {"path": shown, "message": error["message"]}
        return findings, error

    def put(self, digest: str, findings: Sequence[Finding],
            parse_error: Optional[Dict[str, str]]) -> None:
        self.entries[digest] = {
            "findings": [finding.to_dict() for finding in findings],
            "parse_error": parse_error,
        }

    def save(self) -> None:
        if not self.path:
            return
        payload = {"version": self.VERSION, "entries": self.entries}
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")


# -- drivers ---------------------------------------------------------------------------


def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run rules over one in-memory source blob (test/fixture entry point)."""
    rules = list(rules) if rules is not None else all_rules()
    ctx = FileContext(path, source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(rule.name, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                yield child
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def display_path(path: Path) -> str:
    """Repo-relative posix path when under the cwd, else as given."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# Worker-process state for the multiprocessing pool: rules are pickled
# once per worker (via the initializer) instead of once per file.
_WORKER_RULES: Optional[List[Rule]] = None


def _pool_init(rules: List[Rule]) -> None:
    global _WORKER_RULES
    _WORKER_RULES = rules


def _pool_analyze(task: Tuple[int, str, str]):
    """Analyze one pre-read source blob; runs inside a pool worker."""
    index, shown, source = task
    assert _WORKER_RULES is not None
    try:
        return index, analyze_source(source, shown, _WORKER_RULES), None
    except SyntaxError as exc:
        return index, [], {"path": shown, "message": str(exc)}


def analyze_paths(paths: Sequence[str],
                  rules: Optional[Sequence[Rule]] = None,
                  jobs: int = 1,
                  cache: Optional[AnalysisCache] = None):
    """Analyze files/trees.  Returns (findings, parse_errors, file_count).

    ``jobs > 1`` fans the per-file work (parse + every rule) out over a
    ``multiprocessing`` pool; files are read in the parent so results
    land deterministically regardless of completion order.  ``cache``
    (an :class:`AnalysisCache`) skips files whose content hash already
    has a result for this rule selection.
    """
    rules = list(rules) if rules is not None else all_rules()
    files = list(iter_python_files(paths))
    results: Dict[int, Tuple[List[Finding], Optional[Dict[str, str]]]] = {}
    tasks: List[Tuple[int, str, str]] = []
    digests: Dict[int, str] = {}
    rule_key = AnalysisCache.rule_key(rules) if cache is not None else ""
    for index, path in enumerate(files):
        shown = display_path(path)
        source = path.read_text(encoding="utf-8")
        if cache is not None:
            digest = AnalysisCache.digest(rule_key, source)
            hit = cache.get(digest, shown)
            if hit is not None:
                results[index] = hit
                continue
            digests[index] = digest
        tasks.append((index, shown, source))
    if jobs > 1 and len(tasks) > 1:
        workers = min(jobs, len(tasks))
        with multiprocessing.Pool(workers, initializer=_pool_init,
                                  initargs=(rules,)) as pool:
            for index, found, error in pool.imap_unordered(
                    _pool_analyze, tasks, chunksize=4):
                results[index] = (found, error)
    else:
        _pool_init(rules)
        for task in tasks:
            index, found, error = _pool_analyze(task)
            results[index] = (found, error)
    findings: List[Finding] = []
    parse_errors: List[Dict[str, str]] = []
    for index in range(len(files)):
        found, error = results[index]
        findings.extend(found)
        if error is not None:
            parse_errors.append(error)
        if cache is not None and index in digests:
            cache.put(digests[index], found, error)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, parse_errors, len(files)


# -- shared AST helpers ----------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string (else None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested function scopes.

    Nested defs/lambdas are separate coroutine candidates (the driver scans
    every function), so a blocking call inside one must not be attributed
    to the enclosing function.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def is_generator(func: ast.AST) -> bool:
    """True when the function's own scope contains a yield."""
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in walk_own_scope(func))


__all__ = [
    "AnalysisCache", "Baseline", "FileContext", "Finding", "Rule",
    "all_rules", "analyze_paths", "analyze_source", "dotted_name",
    "is_generator", "iter_python_files", "register", "walk_own_scope",
]
