"""Entry point for ``python -m repro.analysis``."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed stdout early; point
        # the fd at devnull so interpreter shutdown does not re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
