"""Actions: what a matched flow rule does to a packet.

A rule carries an ordered action list.  Action execution is interpreted by
:class:`~repro.dataplane.switch.SoftwareSwitch`; the classes here are plain
declarative records so rules can be installed over the (simulated) OpenFlow
control channel by value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class Action:
    """Marker base class for all actions."""

    __slots__ = ()


@dataclass(frozen=True)
class Output(Action):
    """Emit the packet on a named port."""

    port: str


@dataclass(frozen=True)
class Drop(Action):
    """Discard the packet (terminal)."""


@dataclass(frozen=True)
class ToController(Action):
    """Punt the packet to the datapath's controller callback (packet-in)."""

    reason: str = "table-miss"


@dataclass(frozen=True)
class GotoTable(Action):
    """Continue pipeline processing at another table."""

    table_id: int


@dataclass(frozen=True)
class SetRegister(Action):
    """Write a scratch metadata register (visible to later tables)."""

    register: str
    value: Any


@dataclass(frozen=True)
class SetDscp(Action):
    """Rewrite the innermost IP DSCP (QoS marking)."""

    dscp: int


@dataclass(frozen=True)
class Meter(Action):
    """Subject the packet to a token-bucket meter; over-rate drops."""

    meter_id: int


@dataclass(frozen=True)
class PushGtpu(Action):
    """Encapsulate in GTP-U toward a tunnel endpoint (e.g. the eNodeB)."""

    teid: int
    tunnel_src: str
    tunnel_dst: str


@dataclass(frozen=True)
class PopGtpu(Action):
    """Decapsulate a GTP-U packet (uplink from the eNodeB)."""
