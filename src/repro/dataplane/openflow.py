"""OpenFlow-like control messages for programming the software switch.

Magma's ``pipelined`` service programs OVS through OpenFlow; our
data-plane-configuration service programs :class:`SoftwareSwitch` through
these messages.  Keeping the control interface message-based (rather than
direct method calls) preserves the paper's architectural point: if the
forwarding engine were swapped, only the data-plane-configuration component
would change (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .actions import Action
from .matcher import FlowMatch


@dataclass(frozen=True)
class FlowMod:
    """Add or delete flow rules in a table."""

    ADD = "add"
    DELETE = "delete"
    DELETE_BY_COOKIE = "delete_by_cookie"

    command: str
    table_id: int = 0
    priority: int = 0
    match: Optional[FlowMatch] = None
    actions: Sequence[Action] = ()
    cookie: Any = None


@dataclass(frozen=True)
class MeterMod:
    """Add, modify, or delete a token-bucket meter."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"

    command: str
    meter_id: int
    rate_mbps: float = 0.0
    burst_bytes: int = 125_000


@dataclass(frozen=True)
class StatsRequest:
    """Request flow stats, optionally filtered by cookie."""

    cookie: Any = None
    table_id: Optional[int] = None


@dataclass(frozen=True)
class StatsReply:
    """Per-rule stats snapshot."""

    entries: Sequence["FlowStatsEntry"]


@dataclass(frozen=True)
class FlowStatsEntry:
    table_id: int
    cookie: Any
    priority: int
    packets: int
    bytes: int


@dataclass(frozen=True)
class FlowBundle:
    """A group of FlowMod/MeterMod messages applied atomically, in order.

    Mirrors the OpenFlow 1.4 bundle mechanism ``pipelined`` uses to commit
    a session's rules as one transaction: the switch validates every mod
    first and applies either all of them or none.  Consecutive rule ADDs
    are batched per table, so installing thousands of sessions costs one
    sort instead of one ordered insertion per rule.
    """

    mods: Sequence[Any] = ()


@dataclass(frozen=True)
class BundleReply:
    """Result of an applied bundle."""

    mods_applied: int
    rules_added: int


@dataclass(frozen=True)
class BarrierRequest:
    """Complete all preceding mods before replying (ordering fence)."""


@dataclass(frozen=True)
class PacketIn:
    """A packet punted to the controller (table miss or explicit action)."""

    packet: Any
    in_port: Optional[str]
    table_id: int
    reason: str
