"""Flow matching: the classifier half of a match/action rule.

A :class:`FlowMatch` is a conjunction of field predicates; ``None`` fields
are wildcards.  IP address fields accept either exact addresses or
``"a.b.c.d/len"`` prefixes.  This covers the matching vocabulary Magma's
``pipelined`` uses: per-UE IP, tunnel id (TEID), direction (port), transport
5-tuple pieces, and scratch metadata registers set by earlier tables.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .packet import GtpuHeader, IPv4Header, Packet, TcpHeader, UdpHeader


def _ip_matches(pattern: str, address: str) -> bool:
    """Exact or CIDR-prefix match."""
    if "/" in pattern:
        try:
            network = ipaddress.ip_network(pattern, strict=False)
            return ipaddress.ip_address(address) in network
        except ValueError:
            return False
    return pattern == address


@dataclass(frozen=True)
class FlowMatch:
    """A conjunction of header-field predicates; None means wildcard."""

    in_port: Optional[str] = None
    ip_src: Optional[str] = None
    ip_dst: Optional[str] = None
    ip_proto: Optional[int] = None
    dscp: Optional[int] = None
    l4_sport: Optional[int] = None
    l4_dport: Optional[int] = None
    tun_id: Optional[int] = None
    registers: Optional[Dict[str, Any]] = None

    def matches(self, pkt: Packet, in_port: Optional[str] = None) -> bool:
        if self.in_port is not None and self.in_port != in_port:
            return False
        ip = pkt.inner_ip()
        if self.ip_src is not None:
            if ip is None or not _ip_matches(self.ip_src, ip.src):
                return False
        if self.ip_dst is not None:
            if ip is None or not _ip_matches(self.ip_dst, ip.dst):
                return False
        if self.ip_proto is not None:
            if ip is None or ip.proto != self.ip_proto:
                return False
        if self.dscp is not None:
            if ip is None or ip.dscp != self.dscp:
                return False
        if self.l4_sport is not None or self.l4_dport is not None:
            l4 = pkt.find(UdpHeader) or pkt.find(TcpHeader)
            if l4 is None:
                return False
            if self.l4_sport is not None and l4.sport != self.l4_sport:
                return False
            if self.l4_dport is not None and l4.dport != self.l4_dport:
                return False
        if self.tun_id is not None:
            gtpu = pkt.find(GtpuHeader)
            teid = gtpu.teid if gtpu is not None else pkt.metadata.get("decapped_teid")
            if teid != self.tun_id:
                return False
        if self.registers:
            for reg, expected in self.registers.items():
                if pkt.metadata.get(reg) != expected:
                    return False
        return True

    def specificity(self) -> int:
        """How many fields are constrained (used as a tiebreak in tests)."""
        fields = [self.in_port, self.ip_src, self.ip_dst, self.ip_proto,
                  self.dscp, self.l4_sport, self.l4_dport, self.tun_id]
        count = sum(1 for f in fields if f is not None)
        if self.registers:
            count += len(self.registers)
        return count

    def classifier_fields(self) -> Optional[Tuple[Tuple[Any, ...], Tuple[Any, ...]]]:
        """``(mask, key)`` for tuple-space search, or None for residue rules.

        ``mask`` names the constrained fields (register fields appear as
        ``("reg", name)``, sorted by name) and ``key`` carries the exact
        values in the same order, so a packet matches iff its extracted
        field tuple for ``mask`` equals ``key``.  Rules that cannot be
        reduced to an exact-match tuple - CIDR prefixes, unhashable
        register values - return None and stay on the table's linear
        residue list.
        """
        names: List[Any] = []
        values: List[Any] = []
        if self.in_port is not None:
            names.append("in_port")
            values.append(self.in_port)
        if self.ip_src is not None:
            if "/" in self.ip_src:
                return None
            names.append("ip_src")
            values.append(self.ip_src)
        if self.ip_dst is not None:
            if "/" in self.ip_dst:
                return None
            names.append("ip_dst")
            values.append(self.ip_dst)
        if self.ip_proto is not None:
            names.append("ip_proto")
            values.append(self.ip_proto)
        if self.dscp is not None:
            names.append("dscp")
            values.append(self.dscp)
        if self.l4_sport is not None:
            names.append("l4_sport")
            values.append(self.l4_sport)
        if self.l4_dport is not None:
            names.append("l4_dport")
            values.append(self.l4_dport)
        if self.tun_id is not None:
            names.append("tun_id")
            values.append(self.tun_id)
        if self.registers:
            for reg in sorted(self.registers):
                names.append(("reg", reg))
                values.append(self.registers[reg])
        key = tuple(values)
        try:
            hash(key)
        except TypeError:
            return None
        return tuple(names), key


MATCH_ALL = FlowMatch()
