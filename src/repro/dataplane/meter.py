"""Token-bucket meters: the data plane's rate-limiting primitive.

Meters serve double duty in this reproduction:

- **Per-packet** (:meth:`TokenBucketMeter.allow`): exact token-bucket
  admission for unit tests, examples, and small-scale packet runs.
- **Fluid** (:meth:`TokenBucketMeter.shape`): given an offered rate, the
  admitted rate - used by the experiment harness, where per-packet
  simulation of hundreds of Mbps would be pointless.

Both views are consistent: a bucket of rate R admits at most R on average.
"""

from __future__ import annotations

from dataclasses import dataclass


class TokenBucketMeter:
    """A classic token bucket: ``rate_mbps`` sustained, ``burst_bytes`` depth."""

    def __init__(self, meter_id: int, rate_mbps: float,
                 burst_bytes: int = 125_000):
        if rate_mbps <= 0:
            raise ValueError("meter rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.meter_id = meter_id
        self.rate_mbps = rate_mbps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0
        self.stats = {"allowed_packets": 0, "dropped_packets": 0,
                      "allowed_bytes": 0, "dropped_bytes": 0}

    @property
    def rate_bytes_per_sec(self) -> float:
        return self.rate_mbps * 1e6 / 8.0

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise ValueError("meter clock went backwards")
        elapsed = now - self._last_refill
        self._last_refill = now
        self._tokens = min(self.burst_bytes,
                           self._tokens + elapsed * self.rate_bytes_per_sec)

    def allow(self, size_bytes: int, now: float) -> bool:
        """Per-packet admission: True if the packet passes the meter."""
        self._refill(now)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            self.stats["allowed_packets"] += 1
            self.stats["allowed_bytes"] += size_bytes
            return True
        self.stats["dropped_packets"] += 1
        self.stats["dropped_bytes"] += size_bytes
        return False

    def shape(self, offered_mbps: float) -> float:
        """Fluid admission: the sustained rate admitted for an offered rate."""
        if offered_mbps < 0:
            raise ValueError("offered rate must be >= 0")
        return min(offered_mbps, self.rate_mbps)

    def reconfigure(self, rate_mbps: float,
                    burst_bytes: int | None = None) -> None:
        """Change the rate (e.g. policy moved a UE to a throttled tier)."""
        if rate_mbps <= 0:
            raise ValueError("meter rate must be positive")
        self.rate_mbps = rate_mbps
        if burst_bytes is not None:
            if burst_bytes <= 0:
                raise ValueError("burst must be positive")
            self.burst_bytes = burst_bytes
            self._tokens = min(self._tokens, float(burst_bytes))
