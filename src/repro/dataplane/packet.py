"""Structural packet model for the software data plane.

Packets are modelled as a stack of typed headers plus a payload size.  We do
not serialize to real wire formats - the data plane's behaviour (matching,
tunnel push/pop, metering, stats) depends only on header *fields*, which is
what this model carries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Type, TypeVar

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

GTPU_PORT = 2152


@dataclass
class IPv4Header:
    """An IPv4 header: addresses are plain dotted-quad strings."""

    src: str
    dst: str
    proto: int = PROTO_UDP
    dscp: int = 0
    ttl: int = 64


@dataclass
class UdpHeader:
    sport: int = 0
    dport: int = 0


@dataclass
class TcpHeader:
    sport: int = 0
    dport: int = 0


@dataclass
class GtpuHeader:
    """GTP-U tunnel header: TEID identifies the bearer."""

    teid: int
    # The encapsulating endpoints (set when pushed):
    tunnel_src: str = ""
    tunnel_dst: str = ""


H = TypeVar("H")

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A packet: a header stack (outermost first) and a payload size."""

    headers: List[Any] = field(default_factory=list)
    payload_bytes: int = 1400
    metadata: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bytes(self) -> int:
        """Total size: payload plus a nominal 40 bytes per header layer."""
        return self.payload_bytes + 40 * len(self.headers)

    def push(self, header: Any) -> None:
        """Add ``header`` as the new outermost layer."""
        self.headers.insert(0, header)

    def pop(self) -> Any:
        """Remove and return the outermost header."""
        if not self.headers:
            raise ValueError("cannot pop from empty header stack")
        return self.headers.pop(0)

    def outermost(self) -> Any:
        if not self.headers:
            raise ValueError("packet has no headers")
        return self.headers[0]

    def find(self, header_type: Type[H]) -> Optional[H]:
        """Return the outermost header of the given type, if present."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def inner_ip(self) -> Optional[IPv4Header]:
        """The innermost IPv4 header (the UE's, beneath any tunnel)."""
        for header in reversed(self.headers):
            if isinstance(header, IPv4Header):
                return header
        return None

    def is_tunneled(self) -> bool:
        return self.find(GtpuHeader) is not None

    def copy(self) -> "Packet":
        """A structural copy with a fresh packet id.

        Headers are flat dataclasses of scalars, so a per-layer
        :func:`dataclasses.replace` gives independent copies without the
        cost of a recursive deepcopy (hot in ``evaluate_fluid``).
        """
        return Packet(headers=[replace(h) for h in self.headers],
                      payload_bytes=self.payload_bytes,
                      metadata=dict(self.metadata))

    def flow_key(self, in_port: Optional[str] = None) -> Optional[Tuple[Any, ...]]:
        """A hashable microflow key: in_port plus every extracted header field.

        Two packets with equal flow keys are indistinguishable to the
        classifier (same match fields, same header structure for tunnel
        push/pop), so the switch can memoize the resolved rule chain under
        this key.  Returns None when the packet is not safely cacheable
        (unknown header layer or unhashable metadata).
        """
        parts: List[Any] = [in_port]
        for h in self.headers:
            cls = h.__class__
            if cls is IPv4Header:
                parts.append(("ip", h.src, h.dst, h.proto, h.dscp, h.ttl))
            elif cls is UdpHeader:
                parts.append(("udp", h.sport, h.dport))
            elif cls is TcpHeader:
                parts.append(("tcp", h.sport, h.dport))
            elif cls is GtpuHeader:
                parts.append(("gtpu", h.teid, h.tunnel_src, h.tunnel_dst))
            else:
                return None
        if self.metadata:
            try:
                parts.append(tuple(sorted(self.metadata.items())))
            except TypeError:
                return None
        key = tuple(parts)
        try:
            hash(key)
        except TypeError:
            return None
        return key


def ip_packet(src: str, dst: str, proto: int = PROTO_UDP, sport: int = 0,
              dport: int = 0, payload_bytes: int = 1400, dscp: int = 0) -> Packet:
    """Convenience constructor for a plain UE IP packet."""
    pkt = Packet(payload_bytes=payload_bytes)
    pkt.headers.append(IPv4Header(src=src, dst=dst, proto=proto, dscp=dscp))
    if proto == PROTO_UDP:
        pkt.headers.append(UdpHeader(sport=sport, dport=dport))
    elif proto == PROTO_TCP:
        pkt.headers.append(TcpHeader(sport=sport, dport=dport))
    return pkt


def gtpu_encap(pkt: Packet, teid: int, tunnel_src: str, tunnel_dst: str) -> Packet:
    """Encapsulate ``pkt`` in a GTP-U tunnel (outer IP/UDP/GTP-U)."""
    pkt.push(GtpuHeader(teid=teid, tunnel_src=tunnel_src, tunnel_dst=tunnel_dst))
    pkt.push(UdpHeader(sport=GTPU_PORT, dport=GTPU_PORT))
    pkt.push(IPv4Header(src=tunnel_src, dst=tunnel_dst, proto=PROTO_UDP))
    return pkt


def gtpu_decap(pkt: Packet) -> Packet:
    """Strip the outer IP/UDP/GTP-U layers, exposing the inner packet."""
    if not isinstance(pkt.outermost(), IPv4Header):
        raise ValueError("outermost header is not the tunnel's outer IP")
    outer_ip = pkt.pop()
    outer_udp = pkt.pop()
    if not isinstance(outer_udp, UdpHeader) or outer_udp.dport != GTPU_PORT:
        raise ValueError("not a GTP-U packet (outer UDP dport != 2152)")
    gtpu = pkt.pop()
    if not isinstance(gtpu, GtpuHeader):
        raise ValueError("missing GTP-U header beneath outer UDP")
    pkt.metadata["decapped_teid"] = gtpu.teid
    pkt.metadata["decapped_from"] = outer_ip.src
    return pkt
