"""Flow tables: priority-ordered match/action rules with statistics.

Mirrors the OVS/OpenFlow table model that Magma's ``pipelined`` programs:
each table holds rules at integer priorities; the highest-priority matching
rule wins; every hit updates the rule's packet/byte counters (the paper's
data-plane responsibility (ii): "collecting statistics for those flows").

Scaling notes.  The *control* hot path (session programming) uses a binary
search on the descending-priority order for single inserts, one stable sort
for bulk inserts (:meth:`FlowTable.add_batch`), and a cookie index for
per-session lookups.  The *data* hot path (:meth:`FlowTable.lookup`) is a
tuple-space-search classifier, as in real OVS: rules are grouped by their
wildcard mask (the set of constrained :class:`FlowMatch` fields), each mask
group is an exact-match hash subtable keyed by the extracted field tuple,
and lookup probes subtables in descending max-priority order with early
exit - O(#masks) hash probes instead of O(#rules) predicate evaluations.
Rules that cannot be hashed exactly (CIDR prefixes, unhashable register
values) fall back to a small linear "residue" list that participates in
the same priority order.

A :class:`FlowRule` instance belongs to at most one table at a time: the
table stamps a per-table insertion sequence number on the rule to break
priority ties exactly like the linear scan did (first-added wins).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .actions import Action
from .matcher import FlowMatch
from .packet import GtpuHeader, Packet, TcpHeader, UdpHeader

_rule_ids = itertools.count(1)


def _rule_order(rule: "FlowRule") -> Tuple[int, int]:
    """Sort key reproducing linear-scan order: priority desc, insertion asc."""
    return (-rule.priority, rule.seq)


@dataclass
class FlowStats:
    packets: int = 0
    bytes: int = 0
    # Fluid accounting (experiments): admitted rate integrated over time.
    fluid_byte_seconds: float = 0.0


class FlowRule:
    """A single match/action entry."""

    def __init__(self, priority: int, match: FlowMatch,
                 actions: Sequence[Action], cookie: Any = None):
        if priority < 0:
            raise ValueError("priority must be >= 0")
        self.rule_id = next(_rule_ids)
        self.priority = priority
        self.match = match
        self.actions = list(actions)
        self.cookie = cookie
        self.stats = FlowStats()
        # Classifier placement, stamped by the owning FlowTable.
        self.seq = 0
        self._mask: Optional[Tuple[Any, ...]] = None
        self._key: Optional[Tuple[Any, ...]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowRule id={self.rule_id} prio={self.priority} "
                f"cookie={self.cookie!r}>")


class _Subtable:
    """An exact-match hash table for one wildcard mask."""

    __slots__ = ("mask", "buckets", "max_priority", "max_dirty")

    def __init__(self, mask: Tuple[Any, ...]):
        self.mask = mask
        # key tuple -> rules sorted by (priority desc, insertion asc).
        self.buckets: Dict[Tuple[Any, ...], List[FlowRule]] = {}
        self.max_priority = -1
        self.max_dirty = False


class FlowTable:
    """A priority-ordered rule list with lookup and management operations."""

    def __init__(self, table_id: int, name: str = ""):
        self.table_id = table_id
        self.name = name or f"table-{table_id}"
        self._rules: List[FlowRule] = []
        self._by_cookie: Dict[Any, List[FlowRule]] = {}
        # Tuple-space-search classifier state.
        self._subtables: Dict[Tuple[Any, ...], _Subtable] = {}
        self._residue: List[FlowRule] = []          # sorted by _rule_order
        self._residue_max = -1
        self._residue_dirty = False
        # Cached (max_priority, subtable-or-None) groups, priority desc;
        # None marks the residue group.  Invalidated by any mutation.
        self._order: Optional[List[Tuple[int, Optional[_Subtable]]]] = None
        self._seq = itertools.count(1)
        # Structural-change hook: the owning switch uses this to invalidate
        # its microflow cache on any rule add/remove/clear.
        self.on_change: Optional[Callable[[], None]] = None
        self.lookups = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[FlowRule]:
        return list(self._rules)

    def _index_for(self, priority: int) -> int:
        """Insertion point: after every rule with priority >= ``priority``."""
        rules = self._rules
        lo, hi = 0, len(rules)
        while lo < hi:
            mid = (lo + hi) // 2
            if rules[mid].priority >= priority:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def add(self, rule: FlowRule) -> FlowRule:
        """Insert keeping rules sorted by descending priority (stable)."""
        self._rules.insert(self._index_for(rule.priority), rule)
        self._index_add(rule)
        container = self._classifier_add(rule)
        if len(container) > 1:
            container.sort(key=_rule_order)
        self._notify()
        return rule

    def add_batch(self, rules: Iterable[FlowRule]) -> int:
        """Insert many rules with one stable sort (bundle fast path).

        Equivalent to calling :meth:`add` per rule - the sort is stable, so
        existing rules keep their order and new equal-priority rules land
        after them in insertion order - but costs O((n+k) log (n+k)) total
        instead of one ordered insertion per rule.  Classifier buckets
        touched by the batch are likewise re-sorted once each.
        """
        added = 0
        touched: Dict[int, List[FlowRule]] = {}
        for rule in rules:
            self._rules.append(rule)
            self._index_add(rule)
            container = self._classifier_add(rule)
            touched[id(container)] = container
            added += 1
        if added:
            self._rules.sort(key=lambda r: -r.priority)
            for container in touched.values():
                if len(container) > 1:
                    container.sort(key=_rule_order)
            self._notify()
        return added

    def remove_by_cookie(self, cookie: Any) -> int:
        """Delete all rules with this cookie; returns how many."""
        doomed = self._by_cookie.pop(cookie, None)
        if not doomed:
            return 0
        doomed_ids = {r.rule_id for r in doomed}
        self._rules = [r for r in self._rules if r.rule_id not in doomed_ids]
        for rule in doomed:
            self._classifier_discard(rule)
        self._notify()
        return len(doomed_ids)

    def remove_rule(self, rule_id: int) -> bool:
        before = len(self._rules)
        removed = [r for r in self._rules if r.rule_id == rule_id]
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        for rule in removed:
            self._index_discard(rule)
            self._classifier_discard(rule)
        if removed:
            self._notify()
        return len(self._rules) < before

    def remove_matching(self, match: Optional[FlowMatch], priority: int) -> int:
        """Delete every rule with this exact match and priority in one pass.

        This is the OpenFlow strict-DELETE: one table rebuild however many
        rules die, instead of one :meth:`remove_rule` rebuild per rule.
        """
        doomed = [r for r in self._rules
                  if r.priority == priority and r.match == match]
        if not doomed:
            return 0
        doomed_ids = {r.rule_id for r in doomed}
        self._rules = [r for r in self._rules if r.rule_id not in doomed_ids]
        for rule in doomed:
            self._index_discard(rule)
            self._classifier_discard(rule)
        self._notify()
        return len(doomed)

    def clear(self) -> None:
        self._rules.clear()
        self._by_cookie.clear()
        self._subtables.clear()
        self._residue.clear()
        self._residue_max = -1
        self._residue_dirty = False
        self._order = None
        self._notify()

    # -- tuple-space-search lookup ------------------------------------------------

    def lookup(self, pkt: Packet, in_port: Optional[str] = None) -> Optional[FlowRule]:
        """Highest-priority matching rule, or None on table miss."""
        self.lookups += 1
        rule = self._classify(pkt, in_port)
        if rule is not None:
            self.matches += 1
        return rule

    def _classify(self, pkt: Packet, in_port: Optional[str]) -> Optional[FlowRule]:
        order = self._group_order()
        if not order:
            return None
        # Extract the header context once; each subtable probe is then a
        # cheap tuple build + one hash lookup.
        ip = pkt.inner_ip()
        l4 = pkt.find(UdpHeader) or pkt.find(TcpHeader)
        gtpu = pkt.find(GtpuHeader)
        md = pkt.metadata
        teid = gtpu.teid if gtpu is not None else md.get("decapped_teid")

        best: Optional[FlowRule] = None
        best_prio = -1
        best_seq = 0
        for max_prio, st in order:
            if best is not None and max_prio < best_prio:
                break  # no remaining group can beat the current winner
            if st is None:
                best, best_prio, best_seq = self._scan_residue(
                    pkt, in_port, best, best_prio, best_seq)
                continue
            parts = []
            for f in st.mask:
                if f.__class__ is tuple:          # ("reg", name)
                    parts.append(md.get(f[1]))
                elif f == "in_port":
                    parts.append(in_port)
                elif f == "ip_src":
                    parts.append(ip.src if ip is not None else None)
                elif f == "ip_dst":
                    parts.append(ip.dst if ip is not None else None)
                elif f == "ip_proto":
                    parts.append(ip.proto if ip is not None else None)
                elif f == "dscp":
                    parts.append(ip.dscp if ip is not None else None)
                elif f == "l4_sport":
                    parts.append(l4.sport if l4 is not None else None)
                elif f == "l4_dport":
                    parts.append(l4.dport if l4 is not None else None)
                else:                              # "tun_id"
                    parts.append(teid)
            try:
                bucket = st.buckets.get(tuple(parts))
            except TypeError:
                # Unhashable packet metadata: fall back to evaluating the
                # subtable's (identical-predicate) buckets directly.
                bucket = None
                for b in st.buckets.values():
                    if b[0].match.matches(pkt, in_port):
                        if bucket is None or _rule_order(b[0]) < _rule_order(bucket[0]):
                            bucket = b
            if bucket:
                cand = bucket[0]
                if (cand.priority > best_prio
                        or (cand.priority == best_prio and cand.seq < best_seq)):
                    best, best_prio, best_seq = cand, cand.priority, cand.seq
        return best

    def _scan_residue(self, pkt: Packet, in_port: Optional[str],
                      best: Optional[FlowRule], best_prio: int,
                      best_seq: int) -> Tuple[Optional[FlowRule], int, int]:
        for rule in self._residue:
            if rule.priority < best_prio or (rule.priority == best_prio
                                             and rule.seq > best_seq):
                break  # sorted: nothing later can beat the current winner
            if rule.match.matches(pkt, in_port):
                return rule, rule.priority, rule.seq
        return best, best_prio, best_seq

    def _group_order(self) -> List[Tuple[int, Optional[_Subtable]]]:
        order = self._order
        if order is None:
            for st in self._subtables.values():
                if st.max_dirty:
                    st.max_priority = max(r.priority
                                          for b in st.buckets.values()
                                          for r in b)
                    st.max_dirty = False
            if self._residue_dirty:
                self._residue_max = max(
                    (r.priority for r in self._residue), default=-1)
                self._residue_dirty = False
            order = [(st.max_priority, st) for st in self._subtables.values()]
            if self._residue:
                order.append((self._residue_max, None))
            order.sort(key=lambda e: -e[0])
            self._order = order
        return order

    def classifier_stats(self) -> Dict[str, int]:
        """Observability: how the rule set decomposed into subtables."""
        return {"rules": len(self._rules),
                "subtables": len(self._subtables),
                "residue_rules": len(self._residue),
                "lookups": self.lookups,
                "matches": self.matches}

    def find_by_cookie(self, cookie: Any) -> List[FlowRule]:
        return list(self._by_cookie.get(cookie, ()))

    # -- classifier maintenance ---------------------------------------------------

    def _classifier_add(self, rule: FlowRule) -> List[FlowRule]:
        """Place ``rule``; returns the (possibly unsorted) container list."""
        rule.seq = next(self._seq)
        self._order = None
        placed = rule.match.classifier_fields()
        if placed is None:
            rule._mask = rule._key = None
            self._residue.append(rule)
            if not self._residue_dirty and rule.priority > self._residue_max:
                self._residue_max = rule.priority
            return self._residue
        mask, key = placed
        rule._mask, rule._key = mask, key
        st = self._subtables.get(mask)
        if st is None:
            st = self._subtables[mask] = _Subtable(mask)
        bucket = st.buckets.get(key)
        if bucket is None:
            bucket = st.buckets[key] = []
        bucket.append(rule)
        if not st.max_dirty and rule.priority > st.max_priority:
            st.max_priority = rule.priority
        return bucket

    def _classifier_discard(self, rule: FlowRule) -> None:
        self._order = None
        if rule._mask is None:
            try:
                self._residue.remove(rule)
            except ValueError:
                return
            if rule.priority >= self._residue_max:
                self._residue_dirty = True
            return
        st = self._subtables.get(rule._mask)
        if st is None:
            return
        bucket = st.buckets.get(rule._key)
        if bucket is None:
            return
        try:
            bucket.remove(rule)
        except ValueError:
            return
        if not bucket:
            del st.buckets[rule._key]
            if not st.buckets:
                del self._subtables[rule._mask]
                return
        if rule.priority >= st.max_priority:
            st.max_dirty = True

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change()

    # -- cookie index maintenance -------------------------------------------------

    def _index_add(self, rule: FlowRule) -> None:
        self._by_cookie.setdefault(rule.cookie, []).append(rule)

    def _index_discard(self, rule: FlowRule) -> None:
        bucket = self._by_cookie.get(rule.cookie)
        if bucket is None:
            return
        bucket[:] = [r for r in bucket if r.rule_id != rule.rule_id]
        if not bucket:
            del self._by_cookie[rule.cookie]
