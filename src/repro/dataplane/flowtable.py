"""Flow tables: priority-ordered match/action rules with statistics.

Mirrors the OVS/OpenFlow table model that Magma's ``pipelined`` programs:
each table holds rules at integer priorities; the highest-priority matching
rule wins; every hit updates the rule's packet/byte counters (the paper's
data-plane responsibility (ii): "collecting statistics for those flows").

Scaling notes (the session hot path): single inserts use a binary search
on the descending-priority order instead of a linear scan, bulk inserts
(:meth:`FlowTable.add_batch`) amortize to one stable sort, and a cookie
index makes per-session lookups (stats collection, tunnel re-pointing,
fluid accounting) O(rules-per-session) rather than O(table).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .actions import Action
from .matcher import FlowMatch
from .packet import Packet

_rule_ids = itertools.count(1)


@dataclass
class FlowStats:
    packets: int = 0
    bytes: int = 0
    # Fluid accounting (experiments): admitted rate integrated over time.
    fluid_byte_seconds: float = 0.0


class FlowRule:
    """A single match/action entry."""

    def __init__(self, priority: int, match: FlowMatch,
                 actions: Sequence[Action], cookie: Any = None):
        if priority < 0:
            raise ValueError("priority must be >= 0")
        self.rule_id = next(_rule_ids)
        self.priority = priority
        self.match = match
        self.actions = list(actions)
        self.cookie = cookie
        self.stats = FlowStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowRule id={self.rule_id} prio={self.priority} "
                f"cookie={self.cookie!r}>")


class FlowTable:
    """A priority-ordered rule list with lookup and management operations."""

    def __init__(self, table_id: int, name: str = ""):
        self.table_id = table_id
        self.name = name or f"table-{table_id}"
        self._rules: List[FlowRule] = []
        self._by_cookie: Dict[Any, List[FlowRule]] = {}
        self.lookups = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[FlowRule]:
        return list(self._rules)

    def _index_for(self, priority: int) -> int:
        """Insertion point: after every rule with priority >= ``priority``."""
        rules = self._rules
        lo, hi = 0, len(rules)
        while lo < hi:
            mid = (lo + hi) // 2
            if rules[mid].priority >= priority:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def add(self, rule: FlowRule) -> FlowRule:
        """Insert keeping rules sorted by descending priority (stable)."""
        self._rules.insert(self._index_for(rule.priority), rule)
        self._index_add(rule)
        return rule

    def add_batch(self, rules: Iterable[FlowRule]) -> int:
        """Insert many rules with one stable sort (bundle fast path).

        Equivalent to calling :meth:`add` per rule - the sort is stable, so
        existing rules keep their order and new equal-priority rules land
        after them in insertion order - but costs O((n+k) log (n+k)) total
        instead of one ordered insertion per rule.
        """
        added = 0
        for rule in rules:
            self._rules.append(rule)
            self._index_add(rule)
            added += 1
        if added:
            self._rules.sort(key=lambda r: -r.priority)
        return added

    def remove_by_cookie(self, cookie: Any) -> int:
        """Delete all rules with this cookie; returns how many."""
        doomed = self._by_cookie.pop(cookie, None)
        if not doomed:
            return 0
        doomed_ids = {r.rule_id for r in doomed}
        self._rules = [r for r in self._rules if r.rule_id not in doomed_ids]
        return len(doomed_ids)

    def remove_rule(self, rule_id: int) -> bool:
        before = len(self._rules)
        removed = [r for r in self._rules if r.rule_id == rule_id]
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        for rule in removed:
            self._index_discard(rule)
        return len(self._rules) < before

    def clear(self) -> None:
        self._rules.clear()
        self._by_cookie.clear()

    def lookup(self, pkt: Packet, in_port: Optional[str] = None) -> Optional[FlowRule]:
        """Highest-priority matching rule, or None on table miss."""
        self.lookups += 1
        for rule in self._rules:
            if rule.match.matches(pkt, in_port):
                self.matches += 1
                return rule
        return None

    def find_by_cookie(self, cookie: Any) -> List[FlowRule]:
        return list(self._by_cookie.get(cookie, ()))

    # -- cookie index maintenance -------------------------------------------------

    def _index_add(self, rule: FlowRule) -> None:
        self._by_cookie.setdefault(rule.cookie, []).append(rule)

    def _index_discard(self, rule: FlowRule) -> None:
        bucket = self._by_cookie.get(rule.cookie)
        if bucket is None:
            return
        bucket[:] = [r for r in bucket if r.rule_id != rule.rule_id]
        if not bucket:
            del self._by_cookie[rule.cookie]
