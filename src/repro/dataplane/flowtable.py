"""Flow tables: priority-ordered match/action rules with statistics.

Mirrors the OVS/OpenFlow table model that Magma's ``pipelined`` programs:
each table holds rules at integer priorities; the highest-priority matching
rule wins; every hit updates the rule's packet/byte counters (the paper's
data-plane responsibility (ii): "collecting statistics for those flows").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from .actions import Action
from .matcher import FlowMatch
from .packet import Packet

_rule_ids = itertools.count(1)


@dataclass
class FlowStats:
    packets: int = 0
    bytes: int = 0
    # Fluid accounting (experiments): admitted rate integrated over time.
    fluid_byte_seconds: float = 0.0


class FlowRule:
    """A single match/action entry."""

    def __init__(self, priority: int, match: FlowMatch,
                 actions: Sequence[Action], cookie: Any = None):
        if priority < 0:
            raise ValueError("priority must be >= 0")
        self.rule_id = next(_rule_ids)
        self.priority = priority
        self.match = match
        self.actions = list(actions)
        self.cookie = cookie
        self.stats = FlowStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowRule id={self.rule_id} prio={self.priority} "
                f"cookie={self.cookie!r}>")


class FlowTable:
    """A priority-ordered rule list with lookup and management operations."""

    def __init__(self, table_id: int, name: str = ""):
        self.table_id = table_id
        self.name = name or f"table-{table_id}"
        self._rules: List[FlowRule] = []
        self.lookups = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[FlowRule]:
        return list(self._rules)

    def add(self, rule: FlowRule) -> FlowRule:
        """Insert keeping rules sorted by descending priority (stable)."""
        index = len(self._rules)
        for i, existing in enumerate(self._rules):
            if existing.priority < rule.priority:
                index = i
                break
        self._rules.insert(index, rule)
        return rule

    def remove_by_cookie(self, cookie: Any) -> int:
        """Delete all rules with this cookie; returns how many."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.cookie != cookie]
        return before - len(self._rules)

    def remove_rule(self, rule_id: int) -> bool:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        return len(self._rules) < before

    def clear(self) -> None:
        self._rules.clear()

    def lookup(self, pkt: Packet, in_port: Optional[str] = None) -> Optional[FlowRule]:
        """Highest-priority matching rule, or None on table miss."""
        self.lookups += 1
        for rule in self._rules:
            if rule.match.matches(pkt, in_port):
                self.matches += 1
                return rule
        return None

    def find_by_cookie(self, cookie: Any) -> List[FlowRule]:
        return [r for r in self._rules if r.cookie == cookie]
