"""The software switch: an OVS-like multi-table match/action pipeline.

Responsibilities (paper §3.5): (i) recognize flows of active sessions,
(ii) collect statistics, (iii) add/remove tunnel headers, (iv) enforce
per-subscriber policies such as rate limits (via meters).

The switch supports two execution modes:

- **Per-packet** (:meth:`SoftwareSwitch.inject`): full pipeline walk for a
  real :class:`~repro.dataplane.packet.Packet`; used by unit tests, the
  quickstart example, and protocol-level scenarios.
- **Fluid** (:meth:`SoftwareSwitch.evaluate_fluid`): classify a
  representative packet once and compute the *admitted rate* for an offered
  rate, applying any meters along the action chain.  Experiments use this to
  model hundreds of Mbps without simulating every packet.

The per-packet path is a two-level OVS-style lookup stack.  Each
:class:`~repro.dataplane.flowtable.FlowTable` classifies with tuple-space
search (O(#masks), not O(#rules)); above that, a **microflow cache** keyed
on :meth:`Packet.flow_key` memoizes the resolved rule chain of the first
walk, so subsequent packets of the same flow skip classification entirely
and just re-execute the chain's actions (meters still enforce, per-rule
stats still count).  The cache is invalidated by a per-switch generation
counter bumped by every structural change: any FlowMod/MeterMod, bundles,
``clear()``, ``remove_by_cookie`` - wired through ``FlowTable.on_change``
so even direct table mutations invalidate.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from . import actions as act
from .flowtable import FlowRule, FlowTable
from .matcher import FlowMatch
from .meter import TokenBucketMeter
from .openflow import (
    BarrierRequest,
    BundleReply,
    FlowBundle,
    FlowMod,
    FlowStatsEntry,
    MeterMod,
    PacketIn,
    StatsReply,
    StatsRequest,
)
from .packet import Packet, gtpu_decap, gtpu_encap

MAX_PIPELINE_STEPS = 64

# Default bound on memoized microflows (OVS's microflow cache is likewise
# a small fixed-size exact-match cache; stale/overflow entries just fall
# back to classification).
MICROFLOW_CAPACITY = 8192


class PipelineError(Exception):
    """Raised on malformed pipelines (loops, unknown tables/meters)."""


class SoftwareSwitch:
    """A programmable multi-table software datapath."""

    def __init__(self, name: str, num_tables: int = 4,
                 clock: Optional[Callable[[], float]] = None):
        if num_tables < 1:
            raise ValueError("need at least one table")
        self.name = name
        self.tables: List[FlowTable] = [FlowTable(i) for i in range(num_tables)]
        self.meters: Dict[int, TokenBucketMeter] = {}
        self._ports: Dict[str, Callable[[Packet], None]] = {}
        self._controller: Optional[Callable[[PacketIn], None]] = None
        self._clock = clock or (lambda: 0.0)
        # control_msgs counts apply() calls (a bundle is ONE message);
        # flow_ops counts individual mods, batched or not.  The hot-path
        # benchmarks compare the two to show bundle coalescing.
        # mf_* counters cover the microflow cache (hits skip classification).
        self.stats = {"rx": 0, "tx": 0, "dropped": 0, "to_controller": 0,
                      "meter_dropped": 0, "control_msgs": 0, "flow_ops": 0,
                      "bundles": 0, "mf_hits": 0, "mf_misses": 0,
                      "mf_evictions": 0, "mf_invalidations": 0,
                      "mf_uncacheable": 0}
        # Microflow cache: flow_key -> (rule chain, generation).  Entries
        # from an older generation are stale and dropped on sight.
        self.microflow_enabled = True
        self.microflow_capacity = MICROFLOW_CAPACITY
        self._mf_cache: Dict[Any, Tuple[Tuple[FlowRule, ...], int]] = {}
        self._generation = 0
        for table in self.tables:
            table.on_change = self._invalidate_microflows

    # -- ports & controller ----------------------------------------------------

    def add_port(self, name: str, deliver: Callable[[Packet], None]) -> None:
        if name in self._ports:
            raise ValueError(f"port {name!r} already exists on {self.name}")
        self._ports[name] = deliver

    def remove_port(self, name: str) -> None:
        self._ports.pop(name, None)

    def ports(self) -> List[str]:
        return list(self._ports)

    def set_controller(self, callback: Callable[[PacketIn], None]) -> None:
        self._controller = callback

    # -- control channel ---------------------------------------------------------

    def apply(self, message: Any) -> Any:
        """Apply a control message (FlowMod/MeterMod/Bundle/Stats/Barrier)."""
        self.stats["control_msgs"] += 1
        if isinstance(message, FlowMod):
            self.stats["flow_ops"] += 1
            return self._apply_flow_mod(message)
        if isinstance(message, MeterMod):
            self.stats["flow_ops"] += 1
            return self._apply_meter_mod(message)
        if isinstance(message, FlowBundle):
            return self._apply_bundle(message)
        if isinstance(message, StatsRequest):
            return self._collect_stats(message)
        if isinstance(message, BarrierRequest):
            return True  # mods apply synchronously in this model
        raise PipelineError(f"unknown control message {message!r}")

    def _table(self, table_id: int) -> FlowTable:
        if not 0 <= table_id < len(self.tables):
            raise PipelineError(f"no table {table_id} on {self.name}")
        return self.tables[table_id]

    def _apply_flow_mod(self, mod: FlowMod) -> Any:
        table = self._table(mod.table_id)
        if mod.command == FlowMod.ADD:
            match = mod.match or FlowMatch()
            return table.add(FlowRule(mod.priority, match, mod.actions, mod.cookie))
        if mod.command == FlowMod.DELETE_BY_COOKIE:
            return table.remove_by_cookie(mod.cookie)
        if mod.command == FlowMod.DELETE:
            return table.remove_matching(mod.match, mod.priority)
        raise PipelineError(f"unknown FlowMod command {mod.command!r}")

    def _apply_meter_mod(self, mod: MeterMod) -> Any:
        if mod.command == MeterMod.ADD:
            if mod.meter_id in self.meters:
                raise PipelineError(f"meter {mod.meter_id} exists")
            self.meters[mod.meter_id] = TokenBucketMeter(
                mod.meter_id, mod.rate_mbps, mod.burst_bytes)
            self._invalidate_microflows()
            return self.meters[mod.meter_id]
        if mod.command == MeterMod.MODIFY:
            meter = self.meters.get(mod.meter_id)
            if meter is None:
                raise PipelineError(f"no meter {mod.meter_id}")
            meter.reconfigure(mod.rate_mbps, mod.burst_bytes)
            self._invalidate_microflows()
            return meter
        if mod.command == MeterMod.DELETE:
            existed = self.meters.pop(mod.meter_id, None) is not None
            if existed:
                self._invalidate_microflows()
            return existed
        raise PipelineError(f"unknown MeterMod command {mod.command!r}")

    # -- bundles (atomic batched programming) -------------------------------------

    def _validate_bundle(self, bundle: FlowBundle) -> None:
        """Reject the whole bundle before any mod is applied (atomicity)."""
        meter_ids = set(self.meters)
        for mod in bundle.mods:
            if isinstance(mod, FlowMod):
                self._table(mod.table_id)  # raises on bad table
                if mod.command == FlowMod.ADD and mod.priority < 0:
                    raise PipelineError("priority must be >= 0")
                if mod.command not in (FlowMod.ADD, FlowMod.DELETE,
                                       FlowMod.DELETE_BY_COOKIE):
                    raise PipelineError(
                        f"unknown FlowMod command {mod.command!r}")
            elif isinstance(mod, MeterMod):
                if mod.command == MeterMod.ADD:
                    if mod.meter_id in meter_ids:
                        raise PipelineError(f"meter {mod.meter_id} exists")
                    meter_ids.add(mod.meter_id)
                elif mod.command == MeterMod.MODIFY:
                    if mod.meter_id not in meter_ids:
                        raise PipelineError(f"no meter {mod.meter_id}")
                elif mod.command == MeterMod.DELETE:
                    meter_ids.discard(mod.meter_id)
                else:
                    raise PipelineError(
                        f"unknown MeterMod command {mod.command!r}")
            else:
                raise PipelineError(f"bundle cannot carry {mod!r}")

    def _apply_bundle(self, bundle: FlowBundle) -> BundleReply:
        """Apply every mod or none; consecutive rule ADDs batch per table."""
        self._validate_bundle(bundle)
        self.stats["bundles"] += 1
        self.stats["flow_ops"] += len(bundle.mods)
        pending_adds: Dict[int, List[FlowRule]] = {}
        rules_added = 0

        def flush() -> None:
            nonlocal rules_added
            for table_id, rules in pending_adds.items():
                rules_added += self.tables[table_id].add_batch(rules)
            pending_adds.clear()

        for mod in bundle.mods:
            if isinstance(mod, FlowMod):
                if mod.command == FlowMod.ADD:
                    pending_adds.setdefault(mod.table_id, []).append(
                        FlowRule(mod.priority, mod.match or FlowMatch(),
                                 mod.actions, mod.cookie))
                else:
                    # Deletes must see every earlier ADD: flush preserves
                    # ordering.  (Meters live in their own namespace, so
                    # MeterMods apply inline without forcing a flush - the
                    # common all-ADD bundle then costs ONE sort per table.)
                    flush()
                    self._apply_flow_mod(mod)
            else:
                self._apply_meter_mod(mod)
        flush()
        return BundleReply(mods_applied=len(bundle.mods),
                           rules_added=rules_added)

    def _collect_stats(self, request: StatsRequest) -> StatsReply:
        entries = []
        tables = (self.tables if request.table_id is None
                  else [self._table(request.table_id)])
        for table in tables:
            # Cookie-filtered requests (per-session accounting) go through
            # the cookie index: O(rules-per-cookie), not O(table).
            rules = (table.find_by_cookie(request.cookie)
                     if request.cookie is not None else table.rules())
            for rule in rules:
                entries.append(FlowStatsEntry(
                    table_id=table.table_id, cookie=rule.cookie,
                    priority=rule.priority, packets=rule.stats.packets,
                    bytes=rule.stats.bytes))
        return StatsReply(entries=tuple(entries))

    # -- per-packet execution ------------------------------------------------------

    def inject(self, pkt: Packet, in_port: str) -> None:
        """Run a packet through the pipeline starting at table 0.

        First packet of a flow: classify table-by-table (tuple-space
        search) and memoize the traversed rule chain under the packet's
        flow key.  Subsequent packets of the same flow re-execute the
        cached chain - meters, stats, and header rewrites still apply -
        without touching the classifiers.
        """
        self.stats["rx"] += 1
        if not self.microflow_enabled:
            self._walk(pkt, in_port)
            return
        key = pkt.flow_key(in_port)
        if key is None:
            self.stats["mf_uncacheable"] += 1
            self._walk(pkt, in_port)
            return
        cache = self._mf_cache
        entry = cache.get(key)
        if entry is not None:
            if entry[1] == self._generation:
                self.stats["mf_hits"] += 1
                self._walk(pkt, in_port, chain=entry[0])
                return
            del cache[key]  # stale generation
        self.stats["mf_misses"] += 1
        chain = self._walk(pkt, in_port)
        if chain is not None:
            if len(cache) >= self.microflow_capacity:
                cache.pop(next(iter(cache)))  # FIFO eviction
                self.stats["mf_evictions"] += 1
            cache[key] = (tuple(chain), self._generation)

    def _invalidate_microflows(self) -> None:
        """Bump the generation; every cached chain becomes stale at once."""
        self._generation += 1
        self.stats["mf_invalidations"] += 1

    def _walk(self, pkt: Packet, in_port: Optional[str],
              chain: Optional[Tuple[FlowRule, ...]] = None
              ) -> Optional[List[FlowRule]]:
        """Execute the pipeline; with ``chain``, replay it sans lookups.

        Returns the traversed rule list when the walk is safe to memoize
        (it ended in a deterministic terminal: Output, Drop, or implicit
        drop).  Walks that punt to the controller or die at a meter return
        None - the controller may install rules, and meter verdicts are
        per-packet, so neither outcome may be cached.
        """
        record: Optional[List[FlowRule]] = [] if chain is None else None
        table_id = 0
        steps = 0
        pos = 0
        while True:
            if chain is None:
                if steps > MAX_PIPELINE_STEPS:
                    raise PipelineError("pipeline loop detected")
                rule = self._table(table_id).lookup(pkt, in_port)
                if rule is None:
                    self._punt(pkt, in_port, table_id, "table-miss")
                    return None
                record.append(rule)
            else:
                if pos >= len(chain):  # defensive: chains end at a terminal
                    return None
                rule = chain[pos]
                pos += 1
            rule.stats.packets += 1
            rule.stats.bytes += pkt.size_bytes
            advanced = False
            for action in rule.actions:
                if isinstance(action, act.Drop):
                    self.stats["dropped"] += 1
                    return record
                if isinstance(action, act.Output):
                    deliver = self._ports.get(action.port)
                    if deliver is None:
                        self.stats["dropped"] += 1
                    else:
                        self.stats["tx"] += 1
                        deliver(pkt)
                    return record
                if isinstance(action, act.ToController):
                    self._punt(pkt, in_port, table_id, action.reason)
                    return None
                if isinstance(action, act.GotoTable):
                    table_id = action.table_id
                    steps += 1
                    advanced = True
                    break
                if isinstance(action, act.SetRegister):
                    pkt.metadata[action.register] = action.value
                elif isinstance(action, act.SetDscp):
                    ip = pkt.inner_ip()
                    if ip is not None:
                        ip.dscp = action.dscp
                elif isinstance(action, act.Meter):
                    meter = self.meters.get(action.meter_id)
                    if meter is None:
                        raise PipelineError(f"rule references missing meter "
                                            f"{action.meter_id}")
                    if not meter.allow(pkt.size_bytes, self._clock()):
                        self.stats["meter_dropped"] += 1
                        return None
                elif isinstance(action, act.PushGtpu):
                    gtpu_encap(pkt, action.teid, action.tunnel_src,
                               action.tunnel_dst)
                elif isinstance(action, act.PopGtpu):
                    gtpu_decap(pkt)
                else:
                    raise PipelineError(f"unknown action {action!r}")
            if not advanced:
                # Action list exhausted without a terminal: implicit drop.
                self.stats["dropped"] += 1
                return record

    def datapath_stats(self) -> Dict[str, Any]:
        """Lookup-stack observability: microflow cache + per-table subtables."""
        return {
            "generation": self._generation,
            "microflow": {
                "enabled": self.microflow_enabled,
                "size": len(self._mf_cache),
                "capacity": self.microflow_capacity,
                "hits": self.stats["mf_hits"],
                "misses": self.stats["mf_misses"],
                "evictions": self.stats["mf_evictions"],
                "invalidations": self.stats["mf_invalidations"],
                "uncacheable": self.stats["mf_uncacheable"],
            },
            "tables": [dict(table.classifier_stats(),
                            table_id=table.table_id)
                       for table in self.tables],
        }

    def _punt(self, pkt: Packet, in_port: Optional[str], table_id: int,
              reason: str) -> None:
        self.stats["to_controller"] += 1
        if self._controller is not None:
            self._controller(PacketIn(packet=pkt, in_port=in_port,
                                      table_id=table_id, reason=reason))
        else:
            self.stats["dropped"] += 1

    # -- fluid execution -------------------------------------------------------------

    def evaluate_fluid(self, representative: Packet, in_port: str,
                       offered_mbps: float) -> Tuple[float, List[Any]]:
        """Classify once and compute the admitted rate for a fluid flow.

        Returns ``(admitted_mbps, cookie_chain)`` where ``cookie_chain``
        lists the cookies of the rules traversed (for accounting
        attribution).  Table misses and Drop actions admit 0.
        """
        if offered_mbps < 0:
            raise ValueError("offered rate must be >= 0")
        admitted = offered_mbps
        cookies: List[Any] = []
        table_id = 0
        steps = 0
        pkt = representative.copy()
        port: Optional[str] = in_port
        while True:
            if steps > MAX_PIPELINE_STEPS:
                raise PipelineError("pipeline loop detected")
            table = self._table(table_id)
            rule = table.lookup(pkt, port)
            if rule is None:
                return 0.0, cookies
            cookies.append(rule.cookie)
            advanced = False
            for action in rule.actions:
                if isinstance(action, act.Drop):
                    return 0.0, cookies
                if isinstance(action, act.Output):
                    if action.port not in self._ports:
                        return 0.0, cookies
                    return admitted, cookies
                if isinstance(action, act.ToController):
                    return 0.0, cookies
                if isinstance(action, act.GotoTable):
                    table_id = action.table_id
                    steps += 1
                    advanced = True
                    break
                if isinstance(action, act.SetRegister):
                    pkt.metadata[action.register] = action.value
                elif isinstance(action, act.SetDscp):
                    ip = pkt.inner_ip()
                    if ip is not None:
                        ip.dscp = action.dscp
                elif isinstance(action, act.Meter):
                    meter = self.meters.get(action.meter_id)
                    if meter is None:
                        raise PipelineError(f"rule references missing meter "
                                            f"{action.meter_id}")
                    admitted = meter.shape(admitted)
                elif isinstance(action, act.PushGtpu):
                    gtpu_encap(pkt, action.teid, action.tunnel_src,
                               action.tunnel_dst)
                elif isinstance(action, act.PopGtpu):
                    gtpu_decap(pkt)
                else:
                    raise PipelineError(f"unknown action {action!r}")
            if not advanced:
                return 0.0, cookies  # implicit drop

    def record_fluid_usage(self, cookie: Any, mbps: float, duration: float) -> None:
        """Attribute fluid throughput to the rules with ``cookie`` (stats)."""
        byte_count = int(mbps * 1e6 / 8.0 * duration)
        for table in self.tables:
            for rule in table.find_by_cookie(cookie):
                rule.stats.bytes += byte_count
                rule.stats.fluid_byte_seconds += mbps * duration
