"""The software switch: an OVS-like multi-table match/action pipeline.

Responsibilities (paper §3.5): (i) recognize flows of active sessions,
(ii) collect statistics, (iii) add/remove tunnel headers, (iv) enforce
per-subscriber policies such as rate limits (via meters).

The switch supports two execution modes:

- **Per-packet** (:meth:`SoftwareSwitch.inject`): full pipeline walk for a
  real :class:`~repro.dataplane.packet.Packet`; used by unit tests, the
  quickstart example, and protocol-level scenarios.
- **Fluid** (:meth:`SoftwareSwitch.evaluate_fluid`): classify a
  representative packet once and compute the *admitted rate* for an offered
  rate, applying any meters along the action chain.  Experiments use this to
  model hundreds of Mbps without simulating every packet.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from . import actions as act
from .flowtable import FlowRule, FlowTable
from .matcher import FlowMatch
from .meter import TokenBucketMeter
from .openflow import (
    BarrierRequest,
    BundleReply,
    FlowBundle,
    FlowMod,
    FlowStatsEntry,
    MeterMod,
    PacketIn,
    StatsReply,
    StatsRequest,
)
from .packet import Packet, gtpu_decap, gtpu_encap

MAX_PIPELINE_STEPS = 64


class PipelineError(Exception):
    """Raised on malformed pipelines (loops, unknown tables/meters)."""


class SoftwareSwitch:
    """A programmable multi-table software datapath."""

    def __init__(self, name: str, num_tables: int = 4,
                 clock: Optional[Callable[[], float]] = None):
        if num_tables < 1:
            raise ValueError("need at least one table")
        self.name = name
        self.tables: List[FlowTable] = [FlowTable(i) for i in range(num_tables)]
        self.meters: Dict[int, TokenBucketMeter] = {}
        self._ports: Dict[str, Callable[[Packet], None]] = {}
        self._controller: Optional[Callable[[PacketIn], None]] = None
        self._clock = clock or (lambda: 0.0)
        # control_msgs counts apply() calls (a bundle is ONE message);
        # flow_ops counts individual mods, batched or not.  The hot-path
        # benchmarks compare the two to show bundle coalescing.
        self.stats = {"rx": 0, "tx": 0, "dropped": 0, "to_controller": 0,
                      "meter_dropped": 0, "control_msgs": 0, "flow_ops": 0,
                      "bundles": 0}

    # -- ports & controller ----------------------------------------------------

    def add_port(self, name: str, deliver: Callable[[Packet], None]) -> None:
        if name in self._ports:
            raise ValueError(f"port {name!r} already exists on {self.name}")
        self._ports[name] = deliver

    def remove_port(self, name: str) -> None:
        self._ports.pop(name, None)

    def ports(self) -> List[str]:
        return list(self._ports)

    def set_controller(self, callback: Callable[[PacketIn], None]) -> None:
        self._controller = callback

    # -- control channel ---------------------------------------------------------

    def apply(self, message: Any) -> Any:
        """Apply a control message (FlowMod/MeterMod/Bundle/Stats/Barrier)."""
        self.stats["control_msgs"] += 1
        if isinstance(message, FlowMod):
            self.stats["flow_ops"] += 1
            return self._apply_flow_mod(message)
        if isinstance(message, MeterMod):
            self.stats["flow_ops"] += 1
            return self._apply_meter_mod(message)
        if isinstance(message, FlowBundle):
            return self._apply_bundle(message)
        if isinstance(message, StatsRequest):
            return self._collect_stats(message)
        if isinstance(message, BarrierRequest):
            return True  # mods apply synchronously in this model
        raise PipelineError(f"unknown control message {message!r}")

    def _table(self, table_id: int) -> FlowTable:
        if not 0 <= table_id < len(self.tables):
            raise PipelineError(f"no table {table_id} on {self.name}")
        return self.tables[table_id]

    def _apply_flow_mod(self, mod: FlowMod) -> Any:
        table = self._table(mod.table_id)
        if mod.command == FlowMod.ADD:
            match = mod.match or FlowMatch()
            return table.add(FlowRule(mod.priority, match, mod.actions, mod.cookie))
        if mod.command == FlowMod.DELETE_BY_COOKIE:
            return table.remove_by_cookie(mod.cookie)
        if mod.command == FlowMod.DELETE:
            removed = 0
            for rule in table.rules():
                if rule.match == mod.match and rule.priority == mod.priority:
                    table.remove_rule(rule.rule_id)
                    removed += 1
            return removed
        raise PipelineError(f"unknown FlowMod command {mod.command!r}")

    def _apply_meter_mod(self, mod: MeterMod) -> Any:
        if mod.command == MeterMod.ADD:
            if mod.meter_id in self.meters:
                raise PipelineError(f"meter {mod.meter_id} exists")
            self.meters[mod.meter_id] = TokenBucketMeter(
                mod.meter_id, mod.rate_mbps, mod.burst_bytes)
            return self.meters[mod.meter_id]
        if mod.command == MeterMod.MODIFY:
            meter = self.meters.get(mod.meter_id)
            if meter is None:
                raise PipelineError(f"no meter {mod.meter_id}")
            meter.reconfigure(mod.rate_mbps, mod.burst_bytes)
            return meter
        if mod.command == MeterMod.DELETE:
            return self.meters.pop(mod.meter_id, None) is not None
        raise PipelineError(f"unknown MeterMod command {mod.command!r}")

    # -- bundles (atomic batched programming) -------------------------------------

    def _validate_bundle(self, bundle: FlowBundle) -> None:
        """Reject the whole bundle before any mod is applied (atomicity)."""
        meter_ids = set(self.meters)
        for mod in bundle.mods:
            if isinstance(mod, FlowMod):
                self._table(mod.table_id)  # raises on bad table
                if mod.command == FlowMod.ADD and mod.priority < 0:
                    raise PipelineError("priority must be >= 0")
                if mod.command not in (FlowMod.ADD, FlowMod.DELETE,
                                       FlowMod.DELETE_BY_COOKIE):
                    raise PipelineError(
                        f"unknown FlowMod command {mod.command!r}")
            elif isinstance(mod, MeterMod):
                if mod.command == MeterMod.ADD:
                    if mod.meter_id in meter_ids:
                        raise PipelineError(f"meter {mod.meter_id} exists")
                    meter_ids.add(mod.meter_id)
                elif mod.command == MeterMod.MODIFY:
                    if mod.meter_id not in meter_ids:
                        raise PipelineError(f"no meter {mod.meter_id}")
                elif mod.command == MeterMod.DELETE:
                    meter_ids.discard(mod.meter_id)
                else:
                    raise PipelineError(
                        f"unknown MeterMod command {mod.command!r}")
            else:
                raise PipelineError(f"bundle cannot carry {mod!r}")

    def _apply_bundle(self, bundle: FlowBundle) -> BundleReply:
        """Apply every mod or none; consecutive rule ADDs batch per table."""
        self._validate_bundle(bundle)
        self.stats["bundles"] += 1
        self.stats["flow_ops"] += len(bundle.mods)
        pending_adds: Dict[int, List[FlowRule]] = {}
        rules_added = 0

        def flush() -> None:
            nonlocal rules_added
            for table_id, rules in pending_adds.items():
                rules_added += self.tables[table_id].add_batch(rules)
            pending_adds.clear()

        for mod in bundle.mods:
            if isinstance(mod, FlowMod):
                if mod.command == FlowMod.ADD:
                    pending_adds.setdefault(mod.table_id, []).append(
                        FlowRule(mod.priority, mod.match or FlowMatch(),
                                 mod.actions, mod.cookie))
                else:
                    # Deletes must see every earlier ADD: flush preserves
                    # ordering.  (Meters live in their own namespace, so
                    # MeterMods apply inline without forcing a flush - the
                    # common all-ADD bundle then costs ONE sort per table.)
                    flush()
                    self._apply_flow_mod(mod)
            else:
                self._apply_meter_mod(mod)
        flush()
        return BundleReply(mods_applied=len(bundle.mods),
                           rules_added=rules_added)

    def _collect_stats(self, request: StatsRequest) -> StatsReply:
        entries = []
        tables = (self.tables if request.table_id is None
                  else [self._table(request.table_id)])
        for table in tables:
            for rule in table.rules():
                if request.cookie is not None and rule.cookie != request.cookie:
                    continue
                entries.append(FlowStatsEntry(
                    table_id=table.table_id, cookie=rule.cookie,
                    priority=rule.priority, packets=rule.stats.packets,
                    bytes=rule.stats.bytes))
        return StatsReply(entries=tuple(entries))

    # -- per-packet execution ------------------------------------------------------

    def inject(self, pkt: Packet, in_port: str) -> None:
        """Run a packet through the pipeline starting at table 0."""
        self.stats["rx"] += 1
        self._execute(pkt, in_port, table_id=0, steps=0)

    def _execute(self, pkt: Packet, in_port: Optional[str], table_id: int,
                 steps: int) -> None:
        if steps > MAX_PIPELINE_STEPS:
            raise PipelineError("pipeline loop detected")
        table = self._table(table_id)
        rule = table.lookup(pkt, in_port)
        if rule is None:
            self._punt(pkt, in_port, table_id, "table-miss")
            return
        rule.stats.packets += 1
        rule.stats.bytes += pkt.size_bytes
        for action in rule.actions:
            if isinstance(action, act.Drop):
                self.stats["dropped"] += 1
                return
            if isinstance(action, act.Output):
                deliver = self._ports.get(action.port)
                if deliver is None:
                    self.stats["dropped"] += 1
                    return
                self.stats["tx"] += 1
                deliver(pkt)
                return
            if isinstance(action, act.ToController):
                self._punt(pkt, in_port, table_id, action.reason)
                return
            if isinstance(action, act.GotoTable):
                self._execute(pkt, in_port, action.table_id, steps + 1)
                return
            if isinstance(action, act.SetRegister):
                pkt.metadata[action.register] = action.value
            elif isinstance(action, act.SetDscp):
                ip = pkt.inner_ip()
                if ip is not None:
                    ip.dscp = action.dscp
            elif isinstance(action, act.Meter):
                meter = self.meters.get(action.meter_id)
                if meter is None:
                    raise PipelineError(f"rule references missing meter "
                                        f"{action.meter_id}")
                if not meter.allow(pkt.size_bytes, self._clock()):
                    self.stats["meter_dropped"] += 1
                    return
            elif isinstance(action, act.PushGtpu):
                gtpu_encap(pkt, action.teid, action.tunnel_src, action.tunnel_dst)
            elif isinstance(action, act.PopGtpu):
                gtpu_decap(pkt)
            else:
                raise PipelineError(f"unknown action {action!r}")
        # Action list exhausted without a terminal action: implicit drop.
        self.stats["dropped"] += 1

    def _punt(self, pkt: Packet, in_port: Optional[str], table_id: int,
              reason: str) -> None:
        self.stats["to_controller"] += 1
        if self._controller is not None:
            self._controller(PacketIn(packet=pkt, in_port=in_port,
                                      table_id=table_id, reason=reason))
        else:
            self.stats["dropped"] += 1

    # -- fluid execution -------------------------------------------------------------

    def evaluate_fluid(self, representative: Packet, in_port: str,
                       offered_mbps: float) -> Tuple[float, List[Any]]:
        """Classify once and compute the admitted rate for a fluid flow.

        Returns ``(admitted_mbps, cookie_chain)`` where ``cookie_chain``
        lists the cookies of the rules traversed (for accounting
        attribution).  Table misses and Drop actions admit 0.
        """
        if offered_mbps < 0:
            raise ValueError("offered rate must be >= 0")
        admitted = offered_mbps
        cookies: List[Any] = []
        table_id = 0
        steps = 0
        pkt = representative.copy()
        port: Optional[str] = in_port
        while True:
            if steps > MAX_PIPELINE_STEPS:
                raise PipelineError("pipeline loop detected")
            table = self._table(table_id)
            rule = table.lookup(pkt, port)
            if rule is None:
                return 0.0, cookies
            cookies.append(rule.cookie)
            advanced = False
            for action in rule.actions:
                if isinstance(action, act.Drop):
                    return 0.0, cookies
                if isinstance(action, act.Output):
                    if action.port not in self._ports:
                        return 0.0, cookies
                    return admitted, cookies
                if isinstance(action, act.ToController):
                    return 0.0, cookies
                if isinstance(action, act.GotoTable):
                    table_id = action.table_id
                    steps += 1
                    advanced = True
                    break
                if isinstance(action, act.SetRegister):
                    pkt.metadata[action.register] = action.value
                elif isinstance(action, act.SetDscp):
                    ip = pkt.inner_ip()
                    if ip is not None:
                        ip.dscp = action.dscp
                elif isinstance(action, act.Meter):
                    meter = self.meters.get(action.meter_id)
                    if meter is None:
                        raise PipelineError(f"rule references missing meter "
                                            f"{action.meter_id}")
                    admitted = meter.shape(admitted)
                elif isinstance(action, act.PushGtpu):
                    gtpu_encap(pkt, action.teid, action.tunnel_src,
                               action.tunnel_dst)
                elif isinstance(action, act.PopGtpu):
                    gtpu_decap(pkt)
                else:
                    raise PipelineError(f"unknown action {action!r}")
            if not advanced:
                return 0.0, cookies  # implicit drop

    def record_fluid_usage(self, cookie: Any, mbps: float, duration: float) -> None:
        """Attribute fluid throughput to the rules with ``cookie`` (stats)."""
        byte_count = int(mbps * 1e6 / 8.0 * duration)
        for table in self.tables:
            for rule in table.find_by_cookie(cookie):
                rule.stats.bytes += byte_count
                rule.stats.fluid_byte_seconds += mbps * duration
