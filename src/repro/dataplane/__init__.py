"""OVS-like programmable software data plane (paper §3.5).

The switch is programmed through OpenFlow-like messages
(:mod:`repro.dataplane.openflow`) by the AGW's data-plane-configuration
service (:mod:`repro.core.agw.pipelined`), and supports both per-packet and
fluid execution.
"""

from . import actions
from .flowtable import FlowRule, FlowStats, FlowTable
from .matcher import FlowMatch, MATCH_ALL
from .meter import TokenBucketMeter
from .openflow import (
    BarrierRequest,
    BundleReply,
    FlowBundle,
    FlowMod,
    FlowStatsEntry,
    MeterMod,
    PacketIn,
    StatsReply,
    StatsRequest,
)
from .packet import (
    GTPU_PORT,
    GtpuHeader,
    IPv4Header,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TcpHeader,
    UdpHeader,
    gtpu_decap,
    gtpu_encap,
    ip_packet,
)
from .switch import PipelineError, SoftwareSwitch

__all__ = [
    "BarrierRequest",
    "BundleReply",
    "FlowBundle",
    "FlowMatch",
    "FlowMod",
    "FlowRule",
    "FlowStats",
    "FlowStatsEntry",
    "FlowTable",
    "GTPU_PORT",
    "GtpuHeader",
    "IPv4Header",
    "MATCH_ALL",
    "MeterMod",
    "Packet",
    "PacketIn",
    "PipelineError",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "SoftwareSwitch",
    "StatsReply",
    "StatsRequest",
    "TcpHeader",
    "TokenBucketMeter",
    "UdpHeader",
    "actions",
    "gtpu_decap",
    "gtpu_encap",
    "ip_packet",
]
