"""Site cost models: the paper's Table 2 and Table 3.

Defaults are the paper's reported line items; every parameter can be
overridden for sensitivity sweeps (the ablation benches vary eNodeB count
and engineering costs).
"""

from __future__ import annotations

from dataclasses import dataclass

from .items import ComparisonRow, ComparisonTable, CostItem, CostTable


@dataclass
class SiteParams:
    """Table 2 inputs (a typical Magma cell site)."""

    enodeb_unit_cost: float = 4_000.0
    enodeb_count: int = 3
    agw_unit_cost: float = 450.0
    accessories_unit_cost: float = 450.0

    def __post_init__(self):
        if self.enodeb_count < 1:
            raise ValueError("a site needs at least one eNodeB")


def ran_site_capex(params: SiteParams = None) -> CostTable:
    """Table 2: cost breakdown of active RAN equipment for a typical site."""
    params = params or SiteParams()
    table = CostTable("Table 2: RAN CapEx (per site)")
    table.add(CostItem(
        name="LTE eNodeB", unit_cost=params.enodeb_unit_cost,
        quantity=params.enodeb_count,
        notes="Baicells Nova 233: 1W, 3.5GHz, 96 user, 2x2 MIMO."))
    table.add(CostItem(
        name="AGW", unit_cost=params.agw_unit_cost, quantity=1,
        notes="Same as used in experiments."))
    table.add(CostItem(
        name="Accessories", unit_cost=params.accessories_unit_cost,
        quantity=params.enodeb_count,
        notes="18dBi sector antenna, RF cables, connectors, grounding."))
    return table


def agw_cost_share(params: SiteParams = None) -> float:
    """The paper's claim: AGW < 3% of active equipment cost."""
    table = ran_site_capex(params)
    return table.share_of_total("AGW")


@dataclass
class DeploymentCostParams:
    """Table 3 inputs (AccessParks per-site installed costs)."""

    ran: float = 7_950.0
    core_hw_traditional: float = 1_200.0
    core_hw_magma: float = 300.0
    core_sw_traditional: float = 2_000.0
    core_sw_magma: float = 600.0
    field_engineering: float = 200.0
    lte_engineering_traditional: float = 5_000.0
    lte_engineering_magma: float = 330.0


def per_site_cost_comparison(params: DeploymentCostParams = None) -> ComparisonTable:
    """Table 3: per-site installed costs, traditional vs Magma."""
    params = params or DeploymentCostParams()
    table = ComparisonTable(
        "Table 3: per-site installed costs (AccessParks)")
    table.add(ComparisonRow(
        item="RAN", traditional=params.ran, magma=params.ran,
        notes="Identical RAN and backup power."))
    table.add(ComparisonRow(
        item="Core HW", traditional=params.core_hw_traditional,
        magma=params.core_hw_magma))
    table.add(ComparisonRow(
        item="Core SW", traditional=params.core_sw_traditional,
        magma=params.core_sw_magma, notes="Licenses/support."))
    table.add(ComparisonRow(
        item="Field Eng.", traditional=params.field_engineering,
        magma=params.field_engineering, notes="Installation."))
    table.add(ComparisonRow(
        item="LTE Eng.", traditional=params.lte_engineering_traditional,
        magma=params.lte_engineering_magma,
        notes="Planning, core config."))
    return table


def minimum_viable_deployment_cost(agw_unit_cost: float = 450.0,
                                   enodeb_unit_cost: float = 4_000.0,
                                   orchestrator_monthly: float = 300.0) -> dict:
    """The scale-down story (§3.2): one AGW + one eNodeB + a small cloud
    orchestrator is a complete network."""
    return {
        "capex": agw_unit_cost + enodeb_unit_cost,
        "orchestrator_monthly_opex": orchestrator_monthly,
        "notes": "single AGW + single eNodeB + 3-VM orchestrator",
    }
