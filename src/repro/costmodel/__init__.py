"""Cost models behind Tables 2-3 and the scale-down story."""

from .items import ComparisonRow, ComparisonTable, CostItem, CostTable
from .site import (
    DeploymentCostParams,
    SiteParams,
    agw_cost_share,
    minimum_viable_deployment_cost,
    per_site_cost_comparison,
    ran_site_capex,
)

__all__ = [
    "ComparisonRow",
    "ComparisonTable",
    "CostItem",
    "CostTable",
    "DeploymentCostParams",
    "SiteParams",
    "agw_cost_share",
    "minimum_viable_deployment_cost",
    "per_site_cost_comparison",
    "ran_site_capex",
]
