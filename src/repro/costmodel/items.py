"""Cost model primitives: line items and tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CostItem:
    """One line of a cost table."""

    name: str
    unit_cost: float
    quantity: float = 1.0
    notes: str = ""

    def __post_init__(self):
        if self.unit_cost < 0 or self.quantity < 0:
            raise ValueError("costs and quantities must be >= 0")

    @property
    def total(self) -> float:
        return self.unit_cost * self.quantity


class CostTable:
    """An ordered collection of cost items with a total."""

    def __init__(self, title: str, items: Optional[List[CostItem]] = None):
        self.title = title
        self._items: List[CostItem] = list(items or [])

    def add(self, item: CostItem) -> "CostTable":
        self._items.append(item)
        return self

    def items(self) -> List[CostItem]:
        return list(self._items)

    def item(self, name: str) -> CostItem:
        for entry in self._items:
            if entry.name == name:
                return entry
        raise KeyError(f"no cost item {name!r} in {self.title!r}")

    @property
    def total(self) -> float:
        return sum(item.total for item in self._items)

    def share_of_total(self, name: str) -> float:
        if self.total == 0:
            raise ValueError("empty cost table")
        return self.item(name).total / self.total

    def rows(self) -> List[Dict[str, object]]:
        """Printable rows (name, unit cost, qty, total, notes)."""
        return [{
            "item": item.name,
            "unit_cost": item.unit_cost,
            "quantity": item.quantity,
            "total": item.total,
            "notes": item.notes,
        } for item in self._items]


@dataclass(frozen=True)
class ComparisonRow:
    """One line of a side-by-side comparison (Table 3)."""

    item: str
    traditional: float
    magma: float
    notes: str = ""

    @property
    def difference(self) -> float:
        return self.magma - self.traditional

    @property
    def difference_pct(self) -> float:
        if self.traditional == 0:
            return 0.0
        return self.difference / self.traditional * 100.0


class ComparisonTable:
    def __init__(self, title: str, rows: Optional[List[ComparisonRow]] = None):
        self.title = title
        self._rows: List[ComparisonRow] = list(rows or [])

    def add(self, row: ComparisonRow) -> "ComparisonTable":
        self._rows.append(row)
        return self

    def rows(self) -> List[ComparisonRow]:
        return list(self._rows)

    def row(self, item: str) -> ComparisonRow:
        for row in self._rows:
            if row.item == item:
                return row
        raise KeyError(f"no row {item!r} in {self.title!r}")

    @property
    def traditional_total(self) -> float:
        return sum(row.traditional for row in self._rows)

    @property
    def magma_total(self) -> float:
        return sum(row.magma for row in self._rows)

    @property
    def savings_pct(self) -> float:
        if self.traditional_total == 0:
            raise ValueError("empty comparison")
        return (self.traditional_total - self.magma_total) / \
            self.traditional_total * 100.0
