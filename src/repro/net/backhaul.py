"""Backhaul link profiles.

Magma targets deployments where backhaul is *not* carrier-grade fiber:
satellite, point-to-point microwave (Figure 2 of the paper shows a rural
Peru site on wireless backhaul), or congested shared links.  These profiles
parameterize the :class:`~repro.net.simnet.Link` used between an AGW and the
orchestrator (and, in the baseline architecture, between the RAN and the
remote core - which is where raw GTP suffers).
"""

from __future__ import annotations

from .simnet import Link


def fiber(name: str = "fiber") -> Link:
    """Metro fiber: sub-millisecond, effectively lossless."""
    return Link(latency=0.001, loss=0.0, jitter=0.0005,
                bandwidth_mbps=1000.0, name=name)


def microwave(name: str = "microwave") -> Link:
    """Point-to-point wireless backhaul: moderate latency, light loss."""
    return Link(latency=0.010, loss=0.005, jitter=0.005,
                bandwidth_mbps=200.0, name=name)


def satellite(name: str = "satellite") -> Link:
    """GEO satellite: ~300 ms one-way latency and noticeable loss."""
    return Link(latency=0.300, loss=0.02, jitter=0.030,
                bandwidth_mbps=50.0, name=name)


def congested_shared(name: str = "congested") -> Link:
    """An oversubscribed shared link: high jitter and bursty loss."""
    return Link(latency=0.050, loss=0.05, jitter=0.100,
                bandwidth_mbps=20.0, name=name)


def lan(name: str = "lan") -> Link:
    """Local wiring between co-located elements (eNodeB to its AGW)."""
    return Link(latency=0.0002, loss=0.0, jitter=0.0,
                bandwidth_mbps=1000.0, name=name)


PROFILES = {
    "fiber": fiber,
    "microwave": microwave,
    "satellite": satellite,
    "congested": congested_shared,
    "lan": lan,
}


def by_name(profile: str, name: str = "") -> Link:
    """Look up a profile by name (``fiber``/``microwave``/``satellite``/...)."""
    try:
        factory = PROFILES[profile]
    except KeyError:
        raise KeyError(f"unknown backhaul profile {profile!r}; "
                       f"choose from {sorted(PROFILES)}") from None
    return factory(name or profile)
