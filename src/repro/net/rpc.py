"""gRPC-substitute RPC layer.

All Magma-internal communication (RAN-specific frontends to generic AGW
services, AGW to orchestrator, FeG to MNO core) uses gRPC in the real system.
This module provides the equivalent: request/response RPC with

- **deadlines** - every call fails with ``DEADLINE_EXCEEDED`` if no response
  arrives in time;
- **transparent retransmission** - requests and responses are retried within
  the deadline, so calls survive lossy backhaul exactly as gRPC-over-TCP
  does (the paper's §3.1 contrast with raw GTP-C);
- **idempotent dispatch** - servers de-duplicate retried requests by id and
  re-send the cached response.

Handlers may be plain callables (request -> response) or generator functions
(request -> generator), which the server runs as simulated processes so they
can consume CPU model time, call other services, etc.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs import profiler as _profiler
from ..sim.kernel import Event, Simulator
from .simnet import Datagram, Network

RPC_PORT = 50051
DEFAULT_DEADLINE = 5.0
DEFAULT_RETRY_INTERVAL = 0.25


def _payload_bytes(obj: Any) -> int:
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, str):
        return 2 + len(obj.encode("utf-8"))
    if isinstance(obj, (bytes, bytearray)):
        return 2 + len(obj)
    if isinstance(obj, dict):
        return 2 + sum(_payload_bytes(k) + _payload_bytes(v)
                       for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 2 + sum(_payload_bytes(item) for item in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return 2 + sum(_payload_bytes(f.name)
                       + _payload_bytes(getattr(obj, f.name))
                       for f in dataclasses.fields(obj))
    # Opaque object: charge a fixed envelope rather than guessing from a
    # repr (which could embed memory addresses and break determinism).
    return 16


def payload_bytes(obj: Any) -> int:
    """Deterministic wire-size estimate of an RPC payload, in bytes.

    The simulated RPC layer passes Python objects by reference, so
    nothing is actually serialized; this estimator stands in for the
    encoded size a protobuf/JSON codec would produce — close enough in
    shape (per-field tag overhead, length-prefixed strings, fixed-width
    numbers) for *relative* comparisons like full-bundle vs digest sync.
    It is pure arithmetic over the object graph: no ``id()``, no
    ``repr`` of arbitrary objects, so the same payload always measures
    the same on any run or platform.

    The wrapper exists for the self-profiler: the recursion stays inside
    ``_payload_bytes`` so only the entry point pays the scope cost, and
    the profiled and unprofiled paths compute identical sizes.
    """
    prof = _profiler.ACTIVE
    if prof is None:
        return _payload_bytes(obj)
    prof.push("rpc.serialize")
    try:
        return _payload_bytes(obj)
    finally:
        prof.pop()


class RpcError(Exception):
    """An RPC failure with a gRPC-style status code."""

    DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
    UNAVAILABLE = "UNAVAILABLE"
    NOT_FOUND = "NOT_FOUND"
    FAILED_PRECONDITION = "FAILED_PRECONDITION"
    RESOURCE_EXHAUSTED = "RESOURCE_EXHAUSTED"
    PERMISSION_DENIED = "PERMISSION_DENIED"
    UNAUTHENTICATED = "UNAUTHENTICATED"
    INVALID_ARGUMENT = "INVALID_ARGUMENT"
    INTERNAL = "INTERNAL"

    def __init__(self, code: str, detail: str = ""):
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class RpcServer:
    """Hosts RPC services at a node's well-known RPC port."""

    def __init__(self, sim: Simulator, network: Network, node: str,
                 port: int = RPC_PORT):
        self.sim = sim
        self.network = network
        self.node = node
        self.port = port
        self._handlers: Dict[Tuple[str, str], Callable] = {}
        self._response_cache: Dict[Any, Tuple[str, Any]] = {}
        self._in_flight: set = set()
        self.stats = {"requests": 0, "duplicates": 0, "errors": 0}
        network.bind(node, port, self._handle)

    def register(self, service: str, method: str, handler: Callable) -> None:
        """Register ``handler`` for service/method; see module docstring."""
        key = (service, method)
        if key in self._handlers:
            raise ValueError(f"{service}/{method} already registered on {self.node}")
        self._handlers[key] = handler

    def unregister_service(self, service: str) -> None:
        for key in [k for k in self._handlers if k[0] == service]:
            del self._handlers[key]

    def close(self) -> None:
        self.network.unbind(self.node, self.port)

    # -- internals ---------------------------------------------------------------

    def _handle(self, dgram: Datagram) -> None:
        prof = _profiler.ACTIVE
        if prof is None:
            self._dispatch(dgram)
            return
        prof.push("rpc.deliver")
        try:
            self._dispatch(dgram)
        finally:
            prof.pop()

    def _dispatch(self, dgram: Datagram) -> None:
        request_id, service, method, payload, reply_node, reply_port, ctx = \
            dgram.payload
        cached = self._response_cache.get(request_id)
        if cached is not None:
            self.stats["duplicates"] += 1
            self._reply(reply_node, reply_port, request_id, *cached)
            return
        if request_id in self._in_flight:
            self.stats["duplicates"] += 1
            return  # still processing an earlier copy; its reply will cover this
        handler = self._handlers.get((service, method))
        if handler is None:
            self._reply(reply_node, reply_port, request_id, "error",
                        RpcError(RpcError.NOT_FOUND, f"{service}/{method}"))
            return
        self.stats["requests"] += 1
        self._in_flight.add(request_id)
        # Restore the caller's trace context for the duration of dispatch so
        # server-side spans (and any processes the handler spawns) nest under
        # the client's rpc span.
        sim = self.sim
        prev_ctx, sim.ctx = sim.ctx, ctx
        tracer = sim.tracer
        span = None
        if tracer is not None:
            span = tracer.child(f"{service}/{method}", component=service,
                                node=self.node)
            if span.recording:
                sim.ctx = span.context
        try:
            try:
                result = handler(payload)
            except RpcError as exc:
                if span is not None:
                    span.end("error")
                self._finish(reply_node, reply_port, request_id, "error", exc)
                return
            except Exception as exc:  # noqa: BLE001 - surfaced as INTERNAL
                if span is not None:
                    span.end("error")
                self._finish(reply_node, reply_port, request_id, "error",
                             RpcError(RpcError.INTERNAL, repr(exc)))
                return
            if _is_generator(result):
                proc = self.sim.spawn(result, name=f"rpc:{service}/{method}")
                if span is not None and span.recording:
                    span.end_on(proc)
                proc.add_callback(
                    lambda ev: self._on_process_done(ev, reply_node, reply_port,
                                                     request_id))
            else:
                if span is not None:
                    span.end()
                self._finish(reply_node, reply_port, request_id, "ok", result)
        finally:
            sim.ctx = prev_ctx

    def _on_process_done(self, ev, reply_node: str, reply_port: int,
                         request_id: Any) -> None:
        if ev.ok:
            self._finish(reply_node, reply_port, request_id, "ok", ev.value)
        else:
            exc = ev.value
            if not isinstance(exc, RpcError):
                exc = RpcError(RpcError.INTERNAL, repr(exc))
            self._finish(reply_node, reply_port, request_id, "error", exc)

    def _finish(self, reply_node: str, reply_port: int, request_id: Any,
                status: str, value: Any) -> None:
        if status == "error":
            self.stats["errors"] += 1
        self._in_flight.discard(request_id)
        self._response_cache[request_id] = (status, value)
        if len(self._response_cache) > 10_000:
            # Bound the cache; drop roughly the older half.
            for key in list(self._response_cache)[:5_000]:
                del self._response_cache[key]
        self._reply(reply_node, reply_port, request_id, status, value)

    def _reply(self, reply_node: str, reply_port: int, request_id: Any,
               status: str, value: Any) -> None:
        self.network.send(Datagram(self.node, reply_node, reply_port,
                                   (request_id, status, value), 8_000))


class _PendingCall:
    """Book-keeping for one in-flight call: the completion event plus the
    cancelable timer handles, so completion revokes the expiry/retry timers
    instead of leaving them to rot in the scheduler until the deadline."""

    __slots__ = ("event", "expire", "attempt")

    def __init__(self, event: Event):
        self.event = event
        self.expire = None   # ScheduledCall for the deadline
        self.attempt = None  # ScheduledCall for the next retransmission

    def cancel_timers(self) -> None:
        # release() (cancel + freelist return) is safe here: the handles
        # live only on this record and both references die right now.
        if self.expire is not None:
            self.expire.release()
            self.expire = None
        if self.attempt is not None:
            self.attempt.release()
            self.attempt = None


class RpcChannel:
    """Client side of the RPC layer; one per (client node, server node) pair.

    Calls where client and server share a node take a loopback fast path:
    the request skips routing/loss/retransmission entirely (in-process
    delivery cannot lose datagrams), leaving only the deadline timer — which,
    like the retry timer on the remote path, is cancelled the moment the
    response lands.
    """

    _port_alloc = itertools.count(40_000)
    _request_ids = itertools.count(1)

    def __init__(self, sim: Simulator, network: Network, local: str, peer: str,
                 peer_port: int = RPC_PORT,
                 retry_interval: float = DEFAULT_RETRY_INTERVAL):
        self.sim = sim
        self.network = network
        self.local = local
        self.peer = peer
        self.peer_port = peer_port
        self.retry_interval = retry_interval
        self.port = next(RpcChannel._port_alloc)
        self._pending: Dict[Any, _PendingCall] = {}
        self.stats = {"calls": 0, "ok": 0, "deadline_exceeded": 0,
                      "errors": 0, "retries": 0, "local_fast_path": 0}
        network.bind(local, self.port, self._handle)

    def call(self, service: str, method: str, request: Any,
             deadline: float = DEFAULT_DEADLINE) -> Event:
        """Issue a call; the returned event succeeds with the response or
        fails with :class:`RpcError`."""
        prof = _profiler.ACTIVE
        if prof is None:
            return self._call(service, method, request, deadline)
        prof.push("rpc.call")
        try:
            return self._call(service, method, request, deadline)
        finally:
            prof.pop()

    def _call(self, service: str, method: str, request: Any,
              deadline: float) -> Event:
        self.stats["calls"] += 1
        request_id = (self.local, self.port, next(RpcChannel._request_ids))
        done = self.sim.event(f"rpc:{service}/{method}")
        record = _PendingCall(done)
        self._pending[request_id] = record
        expiry = self.sim.now + deadline
        tracer = self.sim.tracer
        ctx = self.sim.ctx
        if tracer is not None:
            span = tracer.child(f"rpc:{service}/{method}", component="rpc",
                                node=self.local, tags={"peer": self.peer})
            if span.recording:
                span.end_on(done)
                ctx = span.context
        payload = (request_id, service, method, request, self.local, self.port,
                   ctx)
        if self.peer == self.local:
            # Co-located fast path: lossless loopback, no retransmission
            # chain; only the (cancelable) deadline timer is scheduled.
            self.stats["local_fast_path"] += 1
            self.network.send_local(
                Datagram(self.local, self.peer, self.peer_port, payload, 8_000))
        else:
            self._attempt(request_id, payload, expiry, first=True)
        record.expire = self.sim.schedule(deadline, self._expire, request_id)
        return done

    def close(self) -> None:
        self.network.unbind(self.local, self.port)
        for request_id, record in list(self._pending.items()):
            record.cancel_timers()
            if not record.event.triggered:
                record.event.fail(RpcError(RpcError.UNAVAILABLE, "channel closed"))
        self._pending.clear()

    def pending_calls(self) -> int:
        return len(self._pending)

    # -- internals -----------------------------------------------------------------

    def _attempt(self, request_id: Any, payload: Any, expiry: float,
                 first: bool = False) -> None:
        record = self._pending.get(request_id)
        if record is None or self.sim.now >= expiry:
            return
        if not first:
            self.stats["retries"] += 1
        self.network.send(Datagram(self.local, self.peer, self.peer_port,
                                   payload, 8_000))
        record.attempt = self.sim.schedule(self.retry_interval, self._attempt,
                                           request_id, payload, expiry)

    def _expire(self, request_id: Any) -> None:
        record = self._pending.pop(request_id, None)
        if record is None:
            return
        record.cancel_timers()
        if not record.event.triggered:
            self.stats["deadline_exceeded"] += 1
            record.event.fail(RpcError(RpcError.DEADLINE_EXCEEDED))

    def _handle(self, dgram: Datagram) -> None:
        request_id, status, value = dgram.payload
        record = self._pending.pop(request_id, None)
        if record is None:
            return
        record.cancel_timers()
        if record.event.triggered:
            return
        if status == "ok":
            self.stats["ok"] += 1
            record.event.succeed(value)
        else:
            self.stats["errors"] += 1
            record.event.fail(value if isinstance(value, RpcError)
                              else RpcError(RpcError.INTERNAL, repr(value)))


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")
