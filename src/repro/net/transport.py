"""Transports over the simulated network.

Two transports matter to the paper's argument (§3.1):

- :class:`DatagramSocket` - fire-and-forget, loses whatever the links lose.
  This is what raw 3GPP GTP-C runs over, and why GTP "struggles to operate
  over lower quality or congested backhaul links".
- :class:`ReliableChannel` - a TCP-like connection with retransmission and
  in-order delivery.  This is what gRPC inherits, and why Magma's control
  traffic tolerates lossy backhaul.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..sim.kernel import Simulator
from .simnet import Datagram, Network

DEFAULT_RTO = 0.2
MAX_RTO = 10.0


class DatagramSocket:
    """An unreliable, unordered message socket bound to (node, port)."""

    def __init__(self, network: Network, node: str, port: int,
                 on_message: Optional[Callable[[Any, str, int], None]] = None):
        self.network = network
        self.node = node
        self.port = port
        self._on_message = on_message
        network.bind(node, port, self._handle)

    def send(self, dst_node: str, dst_port: int, payload: Any,
             size_bits: int = 8_000) -> None:
        self.network.send(Datagram(self.node, dst_node, dst_port, payload, size_bits))

    def close(self) -> None:
        self.network.unbind(self.node, self.port)

    def _handle(self, dgram: Datagram) -> None:
        if self._on_message is not None:
            self._on_message(dgram.payload, dgram.src, dgram.port)


class ReliableChannel:
    """A TCP-like reliable, in-order message stream between two endpoints.

    Simplified mechanics that preserve the properties the paper relies on:

    - every message carries a sequence number and is retransmitted on an
      exponentially backed-off timer until acknowledged;
    - the receiver acknowledges and delivers in order, buffering gaps;
    - delivery survives arbitrary (sub-100%) link loss at the cost of delay.

    Both endpoints construct a ReliableChannel bound to the same port pair.
    """

    def __init__(self, sim: Simulator, network: Network, local: str, peer: str,
                 port: int, on_message: Callable[[Any], None],
                 rto: float = DEFAULT_RTO, max_retries: int = 30):
        self.sim = sim
        self.network = network
        self.local = local
        self.peer = peer
        self.port = port
        self.on_message = on_message
        self.rto = rto
        self.max_retries = max_retries
        self._send_seq = itertools.count(1)
        self._unacked: Dict[int, Any] = {}
        # seq -> pending retransmission timer, revoked on ack/give-up/close.
        # Left alone, every acked message parks a dead timer for up to one
        # full (exponentially backed-off) RTO.
        self._retry: Dict[int, Any] = {}
        self._recv_next = 1
        self._recv_buffer: Dict[int, Any] = {}
        self._closed = False
        self.stats = {"sent": 0, "retransmits": 0, "delivered": 0,
                      "duplicates": 0, "gave_up": 0}
        network.bind(local, port, self._handle)

    def send(self, payload: Any, size_bits: int = 8_000) -> int:
        """Queue ``payload`` for reliable delivery; returns its seq number."""
        if self._closed:
            raise RuntimeError("channel is closed")
        seq = next(self._send_seq)
        self._unacked[seq] = payload
        self.stats["sent"] += 1
        self._transmit(seq, payload, size_bits, self.rto, 0)
        return seq

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)

    def close(self) -> None:
        self._closed = True
        self.network.unbind(self.local, self.port)
        for timer in self._retry.values():
            timer.cancel()
        self._retry.clear()

    # -- internals --------------------------------------------------------------

    def _transmit(self, seq: int, payload: Any, size_bits: int,
                  rto: float, attempt: int) -> None:
        if self._closed or seq not in self._unacked:
            self._retry.pop(seq, None)
            return
        if attempt > 0:
            self.stats["retransmits"] += 1
        if attempt > self.max_retries:
            self.stats["gave_up"] += 1
            del self._unacked[seq]
            self._retry.pop(seq, None)
            return
        self.network.send(Datagram(self.local, self.peer, self.port,
                                   ("data", seq, payload), size_bits))
        self._retry[seq] = self.sim.schedule(rto, self._transmit, seq, payload,
                                             size_bits, min(rto * 2, MAX_RTO),
                                             attempt + 1)

    def _handle(self, dgram: Datagram) -> None:
        if self._closed:
            return
        kind = dgram.payload[0]
        if kind == "data":
            _, seq, payload = dgram.payload
            self.network.send(Datagram(self.local, self.peer, self.port,
                                       ("ack", seq), 512))
            if seq < self._recv_next or seq in self._recv_buffer:
                self.stats["duplicates"] += 1
                return
            self._recv_buffer[seq] = payload
            while self._recv_next in self._recv_buffer:
                message = self._recv_buffer.pop(self._recv_next)
                self._recv_next += 1
                self.stats["delivered"] += 1
                self.on_message(message)
        elif kind == "ack":
            _, seq = dgram.payload
            if self._unacked.pop(seq, None) is not None:
                timer = self._retry.pop(seq, None)
                if timer is not None:
                    timer.cancel()
