"""Simulated network: nodes, links, and datagram delivery.

The control-plane fabric of the reproduction.  Nodes (AGWs, the orchestrator,
eNodeBs, the FeG, ...) are attached to a :class:`Network` and exchange
:class:`Datagram` objects over :class:`Link` objects with configurable
latency, loss, jitter, and bandwidth.

Data-plane *user traffic* is deliberately not modelled per-packet here (it is
fluid-modelled against the CPU and radio capacity models); this module
carries control messages, whose loss and delay behaviour is what the paper's
state-synchronization and GTP-termination arguments are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry


@dataclass
class Datagram:
    """An unreliable message in flight between two nodes."""

    src: str
    dst: str
    port: int
    payload: Any
    size_bits: int = 8_000  # 1 KB default control message


@dataclass
class Link:
    """A bidirectional link with latency/loss/jitter/bandwidth.

    ``loss`` is the per-traversal drop probability.  ``bandwidth_mbps`` of
    ``None`` means serialization delay is negligible.
    """

    latency: float = 0.001
    loss: float = 0.0
    jitter: float = 0.0
    bandwidth_mbps: Optional[float] = None
    name: str = "link"

    def __post_init__(self):
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {self.loss}")
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")


class _LinkState:
    """Per-direction mutable link state (serialization queue)."""

    __slots__ = ("link", "busy_until")

    def __init__(self, link: Link):
        self.link = link
        self.busy_until = 0.0


Handler = Callable[[Datagram], None]


class Network:
    """A graph of named nodes connected by links, with BFS routing.

    Nodes can be marked down (crashed); datagrams to or through a down node
    are silently dropped, as are datagrams lost on a lossy link.
    """

    def __init__(self, sim: Simulator, rng: Optional[RngRegistry] = None):
        self.sim = sim
        self.rng = rng or RngRegistry(0)
        self._handlers: Dict[Tuple[str, int], Handler] = {}
        self._adjacency: Dict[str, Dict[str, _LinkState]] = {}
        self._node_up: Dict[str, bool] = {}
        self._route_cache: Dict[Tuple[str, str], Optional[List[str]]] = {}
        self.stats = {"sent": 0, "delivered": 0, "dropped_loss": 0,
                      "dropped_down": 0, "dropped_unroutable": 0,
                      "dropped_no_handler": 0}

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str) -> None:
        self._adjacency.setdefault(name, {})
        self._node_up.setdefault(name, True)
        self._route_cache.clear()

    def connect(self, a: str, b: str, link: Optional[Link] = None) -> Link:
        """Connect two nodes (creating them if needed) with a link."""
        if a == b:
            raise ValueError("cannot connect a node to itself")
        link = link or Link()
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a][b] = _LinkState(link)
        self._adjacency[b][a] = _LinkState(link)
        self._route_cache.clear()
        return link

    def link_between(self, a: str, b: str) -> Optional[Link]:
        state = self._adjacency.get(a, {}).get(b)
        return state.link if state else None

    def set_node_up(self, name: str, up: bool) -> None:
        """Crash or recover a node; affects both endpoints and transit.

        Invalidates the route cache: cached paths through a newly-crashed
        transit node would black-hole traffic between healthy endpoints that
        still have a live alternate path, and paths computed while a node
        was down must be recomputed once it recovers.
        """
        if name not in self._adjacency:
            raise KeyError(f"unknown node {name!r}")
        if self._node_up.get(name) != up:
            self._route_cache.clear()
        self._node_up[name] = up

    def node_is_up(self, name: str) -> bool:
        return self._node_up.get(name, False)

    # -- sockets ---------------------------------------------------------------

    def bind(self, node: str, port: int, handler: Handler) -> None:
        """Register a delivery handler at (node, port)."""
        self.add_node(node)
        key = (node, port)
        if key in self._handlers:
            raise ValueError(f"port {port} already bound on {node!r}")
        self._handlers[key] = handler

    def unbind(self, node: str, port: int) -> None:
        self._handlers.pop((node, port), None)

    # -- sending ---------------------------------------------------------------

    def send(self, dgram: Datagram) -> None:
        """Route and deliver ``dgram`` asynchronously (or drop it)."""
        if dgram.src == dgram.dst:
            self.send_local(dgram)
            return
        self.stats["sent"] += 1
        if not self._node_up.get(dgram.src, False):
            self.stats["dropped_down"] += 1
            return
        path = self._route(dgram.src, dgram.dst)
        if path is None:
            self.stats["dropped_unroutable"] += 1
            return
        delay = 0.0
        rng = self.rng.stream("network.loss")
        jrng = self.rng.stream("network.jitter")
        now = self.sim.now
        for hop_src, hop_dst in zip(path, path[1:]):
            if not self._node_up.get(hop_dst, False):
                self.stats["dropped_down"] += 1
                return
            state = self._adjacency[hop_src][hop_dst]
            link = state.link
            if link.loss > 0 and rng.random() < link.loss:
                self.stats["dropped_loss"] += 1
                return
            delay += link.latency
            if link.jitter > 0:
                delay += jrng.uniform(0, link.jitter)
            if link.bandwidth_mbps is not None:
                serialization = dgram.size_bits / (link.bandwidth_mbps * 1e6)
                start = max(now + delay, state.busy_until)
                state.busy_until = start + serialization
                delay = (start + serialization) - now
        self.sim.call_later(delay, self._deliver, dgram)

    def send_local(self, dgram: Datagram) -> None:
        """Same-node delivery fast path: no routing, no per-hop loss/jitter
        draws, no serialization queueing — just an asynchronous handoff to
        the local handler.  Loopback traffic is lossless and latency-free,
        exactly as ``send()`` treated the zero-hop path, but without paying
        for the route-cache and RNG-stream lookups."""
        self.stats["sent"] += 1
        if not self._node_up.get(dgram.dst, False):
            self.stats["dropped_down"] += 1
            return
        self.sim.call_later(0.0, self._deliver, dgram)

    def _deliver(self, dgram: Datagram) -> None:
        if not self._node_up.get(dgram.dst, False):
            self.stats["dropped_down"] += 1
            return
        handler = self._handlers.get((dgram.dst, dgram.port))
        if handler is None:
            self.stats["dropped_no_handler"] += 1
            return
        self.stats["delivered"] += 1
        handler(dgram)

    # -- routing -----------------------------------------------------------------

    def _route(self, src: str, dst: str) -> Optional[List[str]]:
        key = (src, dst)
        if key in self._route_cache:
            return self._route_cache[key]
        path = self._bfs(src, dst)
        self._route_cache[key] = path
        return path

    def _bfs(self, src: str, dst: str) -> Optional[List[str]]:
        if src == dst:
            return [src]
        if src not in self._adjacency or dst not in self._adjacency:
            return None
        node_up = self._node_up
        visited = {src}
        frontier: List[List[str]] = [[src]]
        while frontier:
            next_frontier: List[List[str]] = []
            for path in frontier:
                for neighbor in self._adjacency[path[-1]]:
                    if neighbor in visited:
                        continue
                    if neighbor == dst:
                        return path + [neighbor]
                    # Down nodes cannot forward: route around crashed
                    # transit.  The endpoints themselves are checked at
                    # send/deliver time, so a down dst still terminates the
                    # search (and the drop is counted there).
                    if not node_up.get(neighbor, False):
                        continue
                    visited.add(neighbor)
                    next_frontier.append(path + [neighbor])
            frontier = next_frontier
        return None
