"""Simulated network substrate: nodes/links, transports, RPC, backhaul."""

from . import backhaul
from .rpc import RpcChannel, RpcError, RpcServer, RPC_PORT
from .simnet import Datagram, Link, Network
from .transport import DatagramSocket, ReliableChannel

__all__ = [
    "Datagram",
    "DatagramSocket",
    "Link",
    "Network",
    "ReliableChannel",
    "RpcChannel",
    "RpcError",
    "RpcServer",
    "RPC_PORT",
    "backhaul",
]
