"""Baseline architectures Magma is compared against."""

from .crud_sync import (
    CrudReplica,
    CrudSynchronizer,
    DesiredStateSynchronizer,
)
from .epc import EpcConfig, EpcUeContext, MonolithicEpc

__all__ = [
    "CrudReplica",
    "CrudSynchronizer",
    "DesiredStateSynchronizer",
    "EpcConfig",
    "EpcUeContext",
    "MonolithicEpc",
]
