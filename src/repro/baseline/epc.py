"""Baseline: a traditional monolithic EPC across the backhaul.

This is the architecture Magma defines itself against (§2, §3):

- **Centralized**: one core serves every cell site; eNodeBs reach it over
  whatever backhaul exists (satellite, microwave).  The S1AP dialogue and -
  critically - GTP run over that backhaul.
- **Large fault domain**: the core's failure takes down every site (§3.3's
  contrast with per-AGW fault domains).
- **GTP path management over backhaul**: the SGW keeps GTP-C echo monitors
  toward every eNodeB; a run of lost echoes (common on satellite links)
  declares path failure and tears down *all* sessions behind that eNodeB.
  Fragile UEs then wedge until power-cycled - the §3.1 failure mode Magma
  avoids by terminating GTP at the cell site.

The EPC reuses the same eNodeB/UE models; only the core differs, which is
the honest apples-to-apples comparison for the ablations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.agw.mobilityd import Mobilityd
from ..core.agw.subscriberdb import SubscriberDb, SubscriberProfile
from ..lte import nas, s1ap
from ..lte.enodeb import ENB_S1AP_SERVICE
from ..lte.gtp import GtpcEndpoint
from ..net.rpc import RpcChannel, RpcError, RpcServer
from ..net.simnet import Network
from ..sim.cpu import CpuModel
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry


@dataclass
class EpcConfig:
    cores: float = 32.0             # a well-provisioned central core
    attach_cpu_cost: float = 0.05
    ip_block: str = "10.200.0.0/16"
    gtp_echo_interval: float = 10.0
    gtp_t3: float = 3.0
    gtp_n3: int = 3
    rpc_deadline: float = 10.0


@dataclass
class EpcUeContext:
    mme_ue_id: int
    imsi: str
    enb_id: str
    enb_ue_id: int
    state: str = "wait-auth"
    xres: bytes = b""
    ue_ip: Optional[str] = None


class MonolithicEpc:
    """MME + HSS + SGW + PGW in one central box."""

    def __init__(self, sim: Simulator, network: Network, node: str = "epc",
                 config: Optional[EpcConfig] = None,
                 rng: Optional[RngRegistry] = None):
        self.sim = sim
        self.network = network
        self.node = node
        self.config = config or EpcConfig()
        self.rng = rng or RngRegistry(0)
        network.add_node(node)
        self.cpu = CpuModel(sim, cores=self.config.cores, name=node)
        self.hss = SubscriberDb()
        self.mobilityd = Mobilityd(self.config.ip_block)
        self.server = RpcServer(sim, network, node)
        self.server.register(s1ap.S1AP_SERVICE, "setup", self._on_setup)
        self.server.register(s1ap.S1AP_SERVICE, "uplink", self._on_uplink)
        self.gtpc = GtpcEndpoint(sim, network, node, t3=self.config.gtp_t3,
                                 n3=self.config.gtp_n3)
        self.gtpc.set_path_failure_callback(self._on_gtp_path_failure)
        self._channels: Dict[str, RpcChannel] = {}
        self._ue_ids = itertools.count(1)
        self._contexts: Dict[int, EpcUeContext] = {}
        self._by_imsi: Dict[str, EpcUeContext] = {}
        self.crashed = False
        self.stats = {"attach_requests": 0, "attach_accepted": 0,
                      "attach_rejected": 0, "sessions": 0,
                      "gtp_path_failures": 0, "sessions_torn_down": 0}

    # -- provisioning ------------------------------------------------------------

    def provision(self, profile: SubscriberProfile) -> None:
        # The baseline EPC *is* the CRUD-style monolith the paper argues
        # against; its HSS is provisioned directly by design.
        self.hss.upsert(profile)  # reprolint: disable=desired-state-sync

    def crash(self) -> None:
        """The big fault domain: everything behind this core goes dark."""
        self.crashed = True
        self.network.set_node_up(self.node, False)

    def recover(self) -> None:
        self.crashed = False
        self.network.set_node_up(self.node, True)
        # Central state is assumed replicated; sessions survive in this
        # model (the *reachability* outage is the baseline's problem).

    # -- S1AP handlers ------------------------------------------------------------

    def _on_setup(self, request: s1ap.S1SetupRequest) -> s1ap.S1SetupResponse:
        self._channel_for(request.enb_id)
        # GTP-U path to this eNodeB crosses the backhaul: monitor it.
        self.gtpc.start_path_monitor(request.enb_id,
                                     interval=self.config.gtp_echo_interval)
        return s1ap.S1SetupResponse(mme_name=self.node,
                                    served_plmn=request.tai.plmn,
                                    accepted=True)

    def _on_uplink(self, message: Any) -> Dict[str, bool]:
        if isinstance(message, s1ap.InitialUeMessage):
            if isinstance(message.nas, nas.AttachRequest):
                self.sim.spawn(self._attach(message),
                               name=f"epc-attach:{message.nas.imsi}")
            return {"accepted": True}
        if isinstance(message, s1ap.UplinkNasTransport):
            context = self._contexts.get(message.mme_ue_id)
            if context is not None:
                self._dispatch(context, message.nas)
            return {"accepted": True}
        return {"accepted": False}

    def _dispatch(self, context: EpcUeContext, message: Any) -> None:
        if isinstance(message, nas.AuthenticationResponse):
            if message.res == context.xres:
                context.state = "wait-smc"
                self._downlink(context, nas.SecurityModeCommand(
                    imsi=context.imsi))
            else:
                self.stats["attach_rejected"] += 1
                self._downlink(context, nas.AuthenticationReject(
                    imsi=context.imsi))
                self._drop(context)
        elif isinstance(message, nas.SecurityModeComplete):
            self.sim.spawn(self._setup_session(context),
                           name=f"epc-session:{context.imsi}")
        elif isinstance(message, nas.AttachComplete):
            context.state = "registered"
            self.stats["attach_accepted"] += 1
        elif isinstance(message, nas.DetachRequest):
            self._teardown(context, cause="detach")

    # -- procedures ---------------------------------------------------------------------

    def _attach(self, message: s1ap.InitialUeMessage):
        self.stats["attach_requests"] += 1
        yield self.cpu.submit("cp", self.config.attach_cpu_cost)
        request: nas.AttachRequest = message.nas
        imsi = request.imsi
        profile = self.hss.get(imsi)
        ue_ref_channel = self._channel_for(message.enb_id)
        if profile is None or profile.k is None:
            self.stats["attach_rejected"] += 1
            self._send(ue_ref_channel, "downlink_nas",
                       s1ap.DownlinkNasTransport(
                           enb_ue_id=message.enb_ue_id, mme_ue_id=0,
                           nas=nas.AttachReject(imsi=imsi,
                                                cause="unknown subscriber")))
            return
        rand = self.rng.stream(f"epc.rand.{self.node}").randbytes(16)
        vector = self.hss.generate_auth_vector(imsi, rand)
        context = EpcUeContext(mme_ue_id=next(self._ue_ids), imsi=imsi,
                               enb_id=message.enb_id,
                               enb_ue_id=message.enb_ue_id,
                               xres=vector.xres)
        self._contexts[context.mme_ue_id] = context
        self._by_imsi[imsi] = context
        self._downlink(context, nas.AuthenticationRequest(
            imsi=imsi, rand=vector.rand, autn=vector.autn))

    def _setup_session(self, context: EpcUeContext):
        yield self.cpu.submit("cp", self.config.attach_cpu_cost)
        context.ue_ip = self.mobilityd.allocate(context.imsi)
        self.stats["sessions"] += 1
        accept = nas.AttachAccept(imsi=context.imsi, ue_ip=context.ue_ip,
                                  guti=f"{self.node}-guti-{context.mme_ue_id}")
        channel = self._channel_for(context.enb_id)
        request = s1ap.InitialContextSetupRequest(
            enb_ue_id=context.enb_ue_id, mme_ue_id=context.mme_ue_id,
            ue_agg_max_bitrate_mbps=1e9, agw_teid=context.mme_ue_id,
            agw_address=self.node, nas=accept)
        try:
            yield channel.call(ENB_S1AP_SERVICE, "initial_context_setup",
                               request, deadline=self.config.rpc_deadline)
        except RpcError:
            pass

    # -- GTP path failure: the baseline's defining weakness -----------------------------

    def _on_gtp_path_failure(self, enb_id: str) -> None:
        """Tear down every session behind the failed path (3GPP behaviour)."""
        self.stats["gtp_path_failures"] += 1
        for context in list(self._contexts.values()):
            if context.enb_id == enb_id and context.state == "registered":
                self.stats["sessions_torn_down"] += 1
                self._teardown(context, cause="gtp path failure")

    def restart_path_monitor(self, enb_id: str) -> None:
        """Backhaul repaired: resume monitoring (operator action)."""
        self.gtpc.start_path_monitor(enb_id,
                                     interval=self.config.gtp_echo_interval)

    def _teardown(self, context: EpcUeContext, cause: str) -> None:
        self.mobilityd.release(context.imsi)
        channel = self._channel_for(context.enb_id)
        self._send(channel, "ue_context_release",
                   s1ap.UeContextReleaseCommand(
                       enb_ue_id=context.enb_ue_id,
                       mme_ue_id=context.mme_ue_id, cause=cause))
        self._drop(context)

    # -- plumbing --------------------------------------------------------------------------

    def _downlink(self, context: EpcUeContext, message: Any) -> None:
        channel = self._channel_for(context.enb_id)
        self._send(channel, "downlink_nas", s1ap.DownlinkNasTransport(
            enb_ue_id=context.enb_ue_id, mme_ue_id=context.mme_ue_id,
            nas=message))

    def _send(self, channel: RpcChannel, method: str, payload: Any) -> None:
        def proc(sim):
            try:
                yield channel.call(ENB_S1AP_SERVICE, method, payload,
                                   deadline=self.config.rpc_deadline)
            except RpcError:
                pass

        self.sim.spawn(proc(self.sim), name=f"epc-dl:{method}")

    def _channel_for(self, enb_id: str) -> RpcChannel:
        channel = self._channels.get(enb_id)
        if channel is None:
            channel = RpcChannel(self.sim, self.network, self.node, enb_id)
            self._channels[enb_id] = channel
        return channel

    def _drop(self, context: EpcUeContext) -> None:
        self._contexts.pop(context.mme_ue_id, None)
        if self._by_imsi.get(context.imsi) is context:
            self._by_imsi.pop(context.imsi, None)

    def session_count(self) -> int:
        return sum(1 for c in self._contexts.values()
                   if c.state == "registered")

    def context_for(self, imsi: str) -> Optional[EpcUeContext]:
        return self._by_imsi.get(imsi)
