"""CRUD-style state synchronization (the 3GPP model Magma replaces).

§3.4's worked example: a CRUD interface communicates *deltas* ("add
session Z"); if a message is lost or a component restarts mid-stream, the
receiver silently falls out of sync with the sender and stays there.  The
desired-state model sends the entire intended state, so one successful
message re-converges the replica.

Both synchronizers below push the same intended state over the same lossy
transport; the ablation (``repro.experiments.ablation_state_sync``)
measures divergence.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..net.simnet import Network
from ..net.transport import DatagramSocket
from ..sim.kernel import Simulator


class CrudReplica:
    """The receiver side: applies whatever operations arrive."""

    def __init__(self, network: Network, node: str, port: int = 7000):
        self.state: Dict[str, Any] = {}
        self.applied_ops = 0
        self._socket = DatagramSocket(network, node, port, self._on_message)

    def _on_message(self, payload: Any, src: str, port: int) -> None:
        kind = payload[0]
        if kind == "create" or kind == "update":
            _, key, value = payload
            self.state[key] = value
            self.applied_ops += 1
        elif kind == "delete":
            _, key = payload
            self.state.pop(key, None)
            self.applied_ops += 1
        elif kind == "full_state":
            _, state = payload
            self.state = dict(state)
            self.applied_ops += 1

    def restart(self) -> None:
        """Process restart: in-memory replica state is lost."""
        self.state = {}


class CrudSynchronizer:
    """Sender that communicates each change as a delta (no reconciliation)."""

    def __init__(self, sim: Simulator, network: Network, node: str,
                 peer: str, port: int = 7000,
                 local_port: Optional[int] = None):
        self.sim = sim
        self.intended: Dict[str, Any] = {}
        self.ops_sent = 0
        self._socket = DatagramSocket(network, node,
                                      local_port if local_port is not None
                                      else port + 1)
        self.peer = peer
        self.port = port

    def create(self, key: str, value: Any) -> None:
        self.intended[key] = value
        self.ops_sent += 1
        self._socket.send(self.peer, self.port, ("create", key, value))

    def update(self, key: str, value: Any) -> None:
        self.intended[key] = value
        self.ops_sent += 1
        self._socket.send(self.peer, self.port, ("update", key, value))

    def delete(self, key: str) -> None:
        self.intended.pop(key, None)
        self.ops_sent += 1
        self._socket.send(self.peer, self.port, ("delete", key))

    def divergence(self, replica: CrudReplica) -> int:
        """Number of keys that differ between intent and replica."""
        return _divergence(self.intended, replica.state)


class DesiredStateSynchronizer:
    """Sender that periodically pushes the entire intended state (§3.4)."""

    def __init__(self, sim: Simulator, network: Network, node: str,
                 peer: str, port: int = 7000, interval: float = 5.0,
                 local_port: Optional[int] = None):
        self.sim = sim
        self.intended: Dict[str, Any] = {}
        self.pushes = 0
        self.interval = interval
        self._socket = DatagramSocket(network, node,
                                      local_port if local_port is not None
                                      else port + 2)
        self.peer = peer
        self.port = port
        self._running = False

    def create(self, key: str, value: Any) -> None:
        self.intended[key] = value

    def update(self, key: str, value: Any) -> None:
        self.intended[key] = value

    def delete(self, key: str) -> None:
        self.intended.pop(key, None)

    def push_now(self) -> None:
        self.pushes += 1
        self._socket.send(self.peer, self.port,
                          ("full_state", dict(self.intended)),
                          size_bits=8_000 + 512 * len(self.intended))

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._loop(), name="desired-state-push")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.sim.timeout(self.interval)
            if self._running:
                self.push_now()

    def divergence(self, replica: CrudReplica) -> int:
        return _divergence(self.intended, replica.state)


def _divergence(intended: Dict[str, Any], actual: Dict[str, Any]) -> int:
    keys = set(intended) | set(actual)
    return sum(1 for key in keys
               if intended.get(key) != actual.get(key))
