"""Shared test fixtures: a one-call Magma site builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.agw import (
    AccessGateway,
    AgwConfig,
    CheckpointStore,
    SubscriberProfile,
)
from repro.core.policy import PolicyRule
from repro.lte import CellConfig, Enodeb, Ue, UeConfig, auth, make_imsi
from repro.net import Link, Network, backhaul
from repro.sim import Monitor, RngRegistry, Simulator

OP = b"test-operator-op"


def subscriber_keys(index: int):
    """Deterministic per-subscriber K/OPc."""
    k = index.to_bytes(4, "big") * 4
    opc = auth.derive_opc(k, OP)
    return k, opc


@dataclass
class MagmaSite:
    sim: Simulator
    network: Network
    rng: RngRegistry
    monitor: Monitor
    agw: AccessGateway
    enbs: List[Enodeb]
    ues: List[Ue]
    checkpoint_store: CheckpointStore
    imsis: List[str] = field(default_factory=list)

    def ue(self, index: int) -> Ue:
        return self.ues[index]

    def run_attach(self, ue: Ue, limit: float = 120.0):
        """Drive one attach to completion; returns the AttachOutcome."""
        done = ue.attach()
        return self.sim.run_until_triggered(done,
                                            limit=self.sim.now + limit)


def build_site(num_enbs: int = 1, num_ues: int = 1,
               config: Optional[AgwConfig] = None,
               cell_config: Optional[CellConfig] = None,
               ue_config: Optional[UeConfig] = None,
               policies: Optional[Dict[str, PolicyRule]] = None,
               policy_id: str = "default",
               ocs=None,
               orchestrator_node: Optional[str] = None,
               seed: int = 1,
               do_s1_setup: bool = True,
               sanitizer=None) -> MagmaSite:
    """Build a cell site: one AGW, N eNodeBs on LAN links, M UEs.

    Subscribers are pre-provisioned straight into the AGW's subscriberdb
    (as the paper's evaluation does with pre-provisioned SIMs).
    """
    sim = Simulator(sanitizer=sanitizer)
    rng = RngRegistry(seed)
    if sanitizer is not None:
        sanitizer.watch_rng(rng)
    monitor = Monitor()
    network = Network(sim, rng)
    store = CheckpointStore()
    agw = AccessGateway(sim, network, "agw-1", config=config,
                        orchestrator_node=orchestrator_node, ocs=ocs,
                        checkpoint_store=store, monitor=monitor, rng=rng)
    if policies:
        for policy in policies.values():
            agw.policydb.upsert(policy)
    enbs = []
    for i in range(num_enbs):
        enb_id = f"enb-{i + 1}"
        network.connect(enb_id, "agw-1", backhaul.lan(f"lan-{enb_id}"))
        enbs.append(Enodeb(sim, network, enb_id, "agw-1",
                           cell_config=cell_config))
    ues = []
    imsis = []
    for i in range(num_ues):
        imsi = make_imsi(i + 1)
        k, opc = subscriber_keys(i + 1)
        agw.subscriberdb.upsert(SubscriberProfile(
            imsi=imsi, k=k, opc=opc, policy_id=policy_id,
            wifi_secret=f"wifi-{imsi}"))
        enb = enbs[i % len(enbs)]
        ues.append(Ue(sim, imsi, k, opc, enb, config=ue_config))
        imsis.append(imsi)
    agw.start()
    if do_s1_setup:
        for enb in enbs:
            enb.s1_setup()
        sim.run(until=1.0)
        assert all(enb.s1_ready for enb in enbs)
    return MagmaSite(sim=sim, network=network, rng=rng, monitor=monitor,
                     agw=agw, enbs=enbs, ues=ues, checkpoint_store=store,
                     imsis=imsis)
