"""AGW failover to a backup instance and fail-back (§3.3)."""

import pytest

from repro.core.agw import (
    AccessGateway,
    FailoverError,
    fail_back,
    promote_backup,
)
from repro.lte import UeState

from helpers import build_site


def site_with_backup(num_ues=3):
    site = build_site(num_ues=num_ues)
    from repro.net import backhaul
    # The backup runs "as a cloud service": reachable from the site over
    # backhaul rather than the LAN.
    site.network.connect("agw-backup", "enb-1", backhaul.microwave())
    backup = AccessGateway(site.sim, site.network, "agw-backup",
                           checkpoint_store=site.checkpoint_store,
                           rng=site.rng.fork("backup"))
    # The backup holds the same cached config (subscribers/policies).
    for imsi in site.agw.subscriberdb.all_imsis():
        backup.subscriberdb.upsert(site.agw.subscriberdb._profiles[imsi])
    return site, backup


def attach_all(site):
    for ue in site.ues:
        assert site.run_attach(ue).success
    site.sim.run(until=site.sim.now + 2.0)


def test_promote_backup_restores_sessions():
    site, backup = site_with_backup()
    attach_all(site)
    site.agw.magmad.checkpoint_now()
    ips = {imsi: site.agw.sessiond.session(imsi).ue_ip
           for imsi in site.imsis}
    site.agw.crash()
    restored = promote_backup(backup, "agw-1")
    assert restored == 3
    for imsi in site.imsis:
        session = backup.sessiond.session(imsi)
        assert session is not None
        assert session.ue_ip == ips[imsi]
        assert backup.pipelined.has_session(imsi)


def test_enb_retargets_to_backup_and_new_attaches_work():
    site, backup = site_with_backup(num_ues=3)
    first, second = site.ues[0], site.ues[1]
    assert site.run_attach(first).success
    site.sim.run(until=site.sim.now + 2.0)
    site.agw.magmad.checkpoint_now()
    site.agw.crash()
    promote_backup(backup, "agw-1")
    done = site.enbs[0].retarget_core("agw-backup")
    response = site.sim.run_until_triggered(done,
                                            limit=site.sim.now + 30.0)
    assert response.accepted
    # A new UE attaches through the backup.
    outcome = site.run_attach(second)
    assert outcome.success
    assert backup.sessiond.session(second.imsi) is not None
    # The restored UE's traffic is served by the backup's data plane.
    assert backup.admitted_downlink(first.imsi, 5.0) == pytest.approx(5.0)


def test_fail_back_returns_sessions_to_primary():
    site, backup = site_with_backup()
    attach_all(site)
    site.agw.magmad.checkpoint_now()
    site.agw.crash()
    promote_backup(backup, "agw-1")
    # While the backup serves, usage accrues.
    backup.sessiond.record_usage(site.imsis[0], dl_bytes=5000, ul_bytes=0)
    site.agw.recover(from_checkpoint=False)
    returned = fail_back(site.agw, backup)
    assert returned == 3
    assert backup.sessiond.session_count() == 0
    session = site.agw.sessiond.session(site.imsis[0])
    assert session is not None
    assert session.bytes_dl >= 5000  # updated state came back


def test_promote_requires_checkpoint():
    site, backup = site_with_backup()
    attach_all(site)
    site.agw.crash()
    # No checkpoint was ever written for a bogus node name.
    with pytest.raises(FailoverError, match="no checkpoint"):
        promote_backup(backup, "agw-nonexistent")


def test_promote_rejects_busy_backup():
    site, backup = site_with_backup()
    attach_all(site)
    site.agw.magmad.checkpoint_now()
    promote_backup(backup, "agw-1")
    with pytest.raises(FailoverError, match="already serves"):
        promote_backup(backup, "agw-1")


def test_promote_rejects_crashed_backup():
    site, backup = site_with_backup()
    attach_all(site)
    site.agw.magmad.checkpoint_now()
    backup.crash()
    with pytest.raises(FailoverError, match="itself down"):
        promote_backup(backup, "agw-1")


def test_fail_back_requires_recovered_primary():
    site, backup = site_with_backup()
    attach_all(site)
    site.agw.magmad.checkpoint_now()
    site.agw.crash()
    promote_backup(backup, "agw-1")
    with pytest.raises(FailoverError, match="not recovered"):
        fail_back(site.agw, backup)


def test_idle_ecm_state_round_trips_through_checkpoint_restore():
    """Idle UEs must resurrect idle: a restored-as-connected UE would break
    paging after failover (the checkpoint used to drop the flag)."""
    site, backup = site_with_backup()
    attach_all(site)
    idle_imsi, connected_imsi = site.imsis[0], site.imsis[1]
    site.agw.sessiond.set_connected(idle_imsi, False)
    site.agw.magmad.checkpoint_now()
    site.agw.crash()
    promote_backup(backup, "agw-1")
    assert backup.sessiond.session(idle_imsi).connected is False
    assert backup.sessiond.session(connected_imsi).connected is True


def test_attach_after_promotion_avoids_restored_identifiers():
    """The promoted backup's fresh allocators must skip everything the
    restored sessions hold (TEIDs, IPs) - the seed behaviour collided."""
    site, backup = site_with_backup(num_ues=2)
    first, second = site.ues[0], site.ues[1]
    assert site.run_attach(first).success
    site.sim.run(until=site.sim.now + 2.0)
    site.agw.magmad.checkpoint_now()
    site.agw.crash()
    promote_backup(backup, "agw-1")
    done = site.enbs[0].retarget_core("agw-backup")
    response = site.sim.run_until_triggered(done, limit=site.sim.now + 30.0)
    assert response.accepted
    assert site.run_attach(second).success
    restored = backup.sessiond.session(first.imsi)
    fresh = backup.sessiond.session(second.imsi)
    assert fresh.agw_teid != restored.agw_teid
    assert fresh.ue_ip != restored.ue_ip
    assert fresh.session_id != restored.session_id
