"""End-to-end digest sync over real AGWs, plus the escape hatch.

The first half drives a real ``AccessGateway`` against an orchestrator
and asserts the digest path ships leaf deltas (not bundles) for
incremental changes.  The second half mirrors the
``Simulator(timer_wheel=False)`` equivalence tests: with
``digest_sync=False`` the control plane must replay the legacy
full-bundle protocol byte-for-byte, and the new client-side fields must
be inert under it.
"""

from repro.core.agw import AccessGateway, AgwConfig, SubscriberProfile
from repro.core.orchestrator import Orchestrator
from repro.core.sync import canonical_bytes
from repro.lte import make_imsi
from repro.net import Network, backhaul
from repro.sim import Monitor, RngRegistry, Simulator

from helpers import subscriber_keys


def build(digest_sync=True, send_roots=True, num_subscribers=3, seed=1):
    """One real AGW checking in every 5s, with a wire/event recorder.

    ``log`` captures, in order, every check-in and reconcile the
    orchestrator served: ``(time, kind, canonical response bytes)``.
    Comparing two runs' logs compares both event order *and* bytes.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    monitor = Monitor()
    orc = Orchestrator(sim, network, "orc", monitor=monitor,
                       digest_sync=digest_sync)
    network.connect("agw-1", "orc", backhaul.by_name("fiber"))
    agw = AccessGateway(sim, network, "agw-1",
                        config=AgwConfig(checkin_interval=5.0),
                        orchestrator_node="orc", monitor=monitor, rng=rng)
    for i in range(num_subscribers):
        k, opc = subscriber_keys(i + 1)
        orc.add_subscriber(SubscriberProfile(imsi=make_imsi(i + 1),
                                             k=k, opc=opc))
    if not send_roots:
        # A pre-digest client: same check-in cadence, no digest roots
        # (the server treats None exactly like the field being absent).
        agw.magmad.mirror.roots = lambda: None
    log = []
    statesync = orc.statesync
    real_checkin = statesync.handle_checkin
    real_reconcile = statesync.handle_reconcile

    def spy_checkin(request):
        response = real_checkin(request)
        log.append((sim.now, "checkin", canonical_bytes(response)))
        return response

    def spy_reconcile(request):
        response = real_reconcile(request)
        log.append((sim.now, "reconcile", canonical_bytes(response)))
        return response

    statesync.handle_checkin = spy_checkin
    statesync.handle_reconcile = spy_reconcile
    agw.start()
    return sim, orc, agw, log, monitor


# -- the digest path over a real gateway --------------------------------------------


def test_incremental_change_ships_leaf_delta_not_bundle():
    sim, orc, agw, log, monitor = build(num_subscribers=200)
    sim.run(until=7.0)                       # first check-in: full bundle
    ss = orc.statesync
    assert ss.stats["config_pushes"] == 1    # version 0 -> full bundle
    assert len(agw.subscriberdb) == 200
    bundle_tx = ss.stats["tx_bytes"]

    k, opc = subscriber_keys(999)
    orc.add_subscriber(SubscriberProfile(imsi=make_imsi(999), k=k, opc=opc))
    sim.run(until=13.0)                      # second check-in: digest walk
    assert ss.stats["config_pushes"] == 1    # no second bundle
    assert ss.stats["digest_syncs"] == 1
    assert agw.magmad.stats["reconciles"] == 1
    assert agw.magmad.stats["delta_upserts"] == 1
    assert agw.magmad.stats["delta_tombstones"] == 0
    assert agw.subscriberdb.get(make_imsi(999)) is not None
    assert agw.subscriberdb.version == orc.store.version
    # The walk converged: the gateway's mirror now matches the store.
    assert agw.magmad.mirror.roots() == ss.reconciler.roots("default")
    # ... and it was cheap: the whole digest exchange (opener + walk +
    # delta) cost a small fraction of re-shipping the 200-entry bundle.
    delta_tx = ss.stats["tx_bytes"] - bundle_tx
    assert delta_tx < bundle_tx / 10
    # Wire sizes are observable as monitor series.
    assert len(monitor.series("sync.checkin.tx_bytes")) >= 2
    assert len(monitor.series("sync.reconcile.tx_bytes")) >= 1
    assert agw.magmad.stats["checkin_rx_bytes"] > 0


def test_deletion_propagates_as_tombstone():
    sim, orc, agw, log, monitor = build()
    sim.run(until=7.0)
    orc.delete_subscriber(make_imsi(2))
    sim.run(until=13.0)
    assert agw.magmad.stats["delta_tombstones"] == 1
    assert agw.subscriberdb.get(make_imsi(2)) is None
    assert len(agw.subscriberdb) == 2
    assert agw.magmad.mirror.roots() == \
        orc.statesync.reconciler.roots("default")


def test_identical_rewrite_fast_forwards_without_transfer():
    sim, orc, agw, log, monitor = build()
    sim.run(until=7.0)
    # Rewriting the same profile bumps the store version but leaves the
    # content digest unchanged: the gateway fast-forwards, no reconcile.
    k, opc = subscriber_keys(1)
    orc.add_subscriber(SubscriberProfile(imsi=make_imsi(1), k=k, opc=opc))
    assert orc.store.version > agw.magmad.config_version
    sim.run(until=13.0)
    assert orc.statesync.stats["digest_elisions"] == 1
    assert agw.magmad.stats["digest_fast_forwards"] == 1
    assert agw.magmad.stats["reconciles"] == 0
    assert agw.magmad.config_version == orc.store.version


def test_in_sync_gateway_gets_no_config_and_no_walk():
    sim, orc, agw, log, monitor = build()
    sim.run(until=23.0)                      # several idle check-ins
    ss = orc.statesync
    assert agw.magmad.stats["checkins_ok"] >= 4
    assert ss.stats["config_pushes"] == 1    # only the first sync
    assert ss.stats["digest_syncs"] == 0
    assert ss.stats["digest_elisions"] == 0  # version matched; no walk


# -- the escape hatch: digest_sync=False replays the legacy protocol ----------------


def run_churn(digest_sync, send_roots):
    """A scenario with every kind of config churn, returning the wire log."""
    sim, orc, agw, log, monitor = build(digest_sync=digest_sync,
                                        send_roots=send_roots)
    k, opc = subscriber_keys(50)

    def churn():
        orc.add_subscriber(SubscriberProfile(imsi=make_imsi(50),
                                             k=k, opc=opc))

    sim.call_later(12.0, churn)
    sim.call_later(22.0, lambda: orc.delete_subscriber(make_imsi(1)))
    sim.run(until=40.0)
    assert agw.magmad.stats["checkins_failed"] == 0
    assert agw.magmad.config_version == orc.store.version
    assert len(agw.subscriberdb) == 3        # 3 seeded + 1 added - 1 deleted
    return log


def test_escape_hatch_is_byte_identical_to_legacy_protocol():
    """``digest_sync=False`` must reproduce the pre-digest control plane
    exactly — same events at the same times with byte-identical
    responses — whether or not the client sends digest roots.  This is
    the same A/B contract ``Simulator(timer_wheel=False)`` gives the
    event kernel."""
    legacy = run_churn(digest_sync=False, send_roots=False)
    hatch_new_client = run_churn(digest_sync=False, send_roots=True)
    old_client_new_server = run_churn(digest_sync=True, send_roots=False)
    assert legacy == hatch_new_client
    assert legacy == old_client_new_server
    # The scenario exercised real churn: a bundle re-push per change.
    kinds = [kind for _, kind, _ in legacy]
    assert kinds.count("checkin") >= 7
    assert "reconcile" not in kinds


def test_escape_hatch_converges_to_same_state_as_digest_path():
    """Both paths are desired-state sync: they must land every replica on
    identical content, differing only in bytes shipped."""
    digest_log = run_churn(digest_sync=True, send_roots=True)
    legacy_log = run_churn(digest_sync=False, send_roots=False)
    kinds = [kind for _, kind, _ in digest_log]
    assert kinds.count("reconcile") >= 2     # one walk per churn event
    # Same number of check-ins on both paths (the reconcile round trips
    # shift later check-ins by milliseconds, so times aren't compared).
    assert kinds.count("checkin") == \
        sum(1 for _, kind, _ in legacy_log if kind == "checkin")
