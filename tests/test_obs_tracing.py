"""End-to-end procedure tracing: span nesting, determinism, export."""

import json

from repro.obs import (
    NOOP_SPAN,
    Tracer,
    build_traces,
    procedure_summary,
    to_chrome_trace,
    tracer_of,
)

from helpers import build_site


def traced_site(sample_rate=1.0, seed=1, **kwargs):
    site = build_site(seed=seed, **kwargs)
    tracer = Tracer(site.sim, site.rng, sample_rate=sample_rate)
    return site, tracer


def run_one_attach(site):
    outcome = site.run_attach(site.ue(0))
    assert outcome.success
    site.sim.run(until=site.sim.now + 2.0)  # let stragglers finish


def attach_trace(tracer):
    traces = [t for t in build_traces(tracer.spans) if t.name == "attach"]
    assert traces, "no attach trace recorded"
    return traces[0]


def test_attach_trace_nests_all_layers():
    site, tracer = traced_site()
    run_one_attach(site)
    trace = attach_trace(tracer)
    assert trace.complete
    components = {s.component for s in trace.spans}
    # One attach crosses the whole stack: UE radio, RPC transport, the
    # S1AP frontend, the generic MME stages, sessiond, and the data plane.
    for expected in ("ue", "rpc", "mme", "sessiond", "pipelined"):
        assert expected in components, f"missing {expected}: {components}"
    assert trace.root.component == "ue"
    assert trace.root.status == "ok"


def test_attach_trace_time_bounds_are_monotone():
    site, tracer = traced_site()
    run_one_attach(site)
    trace = attach_trace(tracer)
    root = trace.root
    span_ids = {s.span_id for s in trace.spans}
    for span in trace.spans:
        assert span.finished
        assert span.end_time >= span.start
        assert span.start >= root.start
        if span.parent_id is not None and span.parent_id in span_ids:
            parent = next(s for s in trace.spans
                          if s.span_id == span.parent_id)
            # Children never start before their parent.
            assert span.start >= parent.start


def test_traces_are_deterministic_across_runs():
    def run():
        site, tracer = traced_site(seed=7)
        run_one_attach(site)
        return [(s.trace_id, s.span_id, s.parent_id, s.name, s.component,
                 s.start, s.end_time, s.status) for s in tracer.spans]

    assert run() == run()


def test_sampling_zero_records_nothing():
    site, tracer = traced_site(sample_rate=0.0)
    run_one_attach(site)
    assert tracer.spans == []
    assert tracer.stats["traces_sampled"] == 0
    assert tracer.stats["traces_started"] > 0


def test_partial_sampling_records_subset_of_roots():
    site, tracer = traced_site(sample_rate=0.5, num_ues=6)
    for ue in site.ues:
        done = ue.attach()
        site.sim.run_until_triggered(done, limit=site.sim.now + 60.0)
    site.sim.run(until=site.sim.now + 2.0)
    started = tracer.stats["traces_started"]
    sampled = tracer.stats["traces_sampled"]
    assert started >= 6
    assert 0 < sampled < started


def test_no_tracer_is_noop():
    site = build_site()
    tracer = tracer_of(site.sim)
    span = tracer.begin("anything")
    assert span is NOOP_SPAN
    assert not span.recording
    span.set_tag("k", "v").end("error")  # all no-ops
    outcome = site.run_attach(site.ue(0))
    assert outcome.success
    assert site.sim.ctx is None


def test_breakdown_sums_to_at_most_root_duration():
    site, tracer = traced_site()
    run_one_attach(site)
    trace = attach_trace(tracer)
    breakdown = trace.breakdown()
    assert sum(breakdown.values()) <= trace.duration + 1e-9
    # The bare-metal profile makes attach CPU-dominated: most of the
    # latency must be attributed to the MME stages, not the root.
    fractions = trace.breakdown_fractions()
    assert fractions["mme"] > 0.5
    path = trace.critical_path()
    assert path[0] is trace.root
    assert len(path) > 1


def test_procedure_summary_percentiles():
    site, tracer = traced_site(num_ues=3)
    for ue in site.ues:
        done = ue.attach()
        site.sim.run_until_triggered(done, limit=site.sim.now + 60.0)
    site.sim.run(until=site.sim.now + 2.0)
    summary = procedure_summary(
        t for t in build_traces(tracer.spans) if t.complete)
    attach = summary["attach"]
    assert attach["count"] == 3.0
    assert 0 < attach["p50"] <= attach["p95"] <= attach["p99"] <= attach["max"]


def test_chrome_trace_export_is_valid():
    site, tracer = traced_site()
    run_one_attach(site)
    document = to_chrome_trace(tracer.spans)
    text = json.dumps(document)  # must be JSON-serializable
    parsed = json.loads(text)
    events = parsed["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert complete
    for event in complete:
        assert event["dur"] >= 0
        assert event["ts"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert any("agw" in n or "ue" in n or "enb" in n or "sim" in n
               for n in names)


def test_detach_idle_and_paging_traced():
    site, tracer = traced_site()
    run_one_attach(site)
    ue = site.ue(0)
    ue.go_idle()
    site.sim.run(until=site.sim.now + 1.0)
    assert site.agw.page(ue.imsi)
    site.sim.run(until=site.sim.now + 5.0)
    assert ue.is_registered  # paging pulled it back to connected
    done = ue.detach(switch_off=False)
    site.sim.run_until_triggered(done, limit=site.sim.now + 10.0)
    names = {t.name for t in build_traces(tracer.spans)}
    for procedure in ("attach", "go_idle", "paging", "detach"):
        assert procedure in names
    paging = next(t for t in build_traces(tracer.spans)
                  if t.name == "paging")
    # The paging-triggered service request nests inside the paging trace.
    assert any(s.name == "service_request" for s in paging.spans)


def test_checkpoint_and_restore_traced():
    site, tracer = traced_site()
    run_one_attach(site)
    site.agw.magmad.checkpoint_now()
    site.agw.crash()
    site.agw.recover()
    site.sim.run(until=site.sim.now + 1.0)
    names = {t.name for t in build_traces(tracer.spans)}
    assert "magmad.checkpoint" in names
    restore_spans = [s for s in tracer.spans if s.name == "sessiond.restore"]
    assert restore_spans
    assert restore_spans[0].tags["sessions"] == 1


def test_span_ids_unique_within_run():
    site, tracer = traced_site(num_ues=4)
    for ue in site.ues:
        done = ue.attach()
        site.sim.run_until_triggered(done, limit=site.sim.now + 60.0)
    ids = [s.span_id for s in tracer.spans]
    assert len(ids) == len(set(ids))
