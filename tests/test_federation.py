"""Federation: FeG, partner MNO core, GTP-A, and the three deployment modes."""

import pytest

from repro.core.agw import AgwConfig, SubscriberProfile
from repro.core.federation import (
    DeploymentMode,
    FederationGateway,
    GtpAggregator,
    PartnerMnoCore,
    user_plane_egress,
    validate_mode,
)
from repro.core.policy import OnlineChargingSystem, rate_limited
from repro.lte import Enodeb, Ue, make_imsi
from repro.net import Network, backhaul
from repro.sim import RngRegistry, Simulator

from helpers import subscriber_keys


def build_federated(mode=DeploymentMode.LOCAL_BREAKOUT, seed=1):
    """One AGW federated to a partner MNO through a FeG."""
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    mno = PartnerMnoCore(sim, network, "mno", rng=rng)
    network.connect("feg", "mno", backhaul.fiber())
    feg = FederationGateway(sim, network, "feg", "mno")
    config = AgwConfig(deployment_mode=mode, feg_node="feg")
    network.connect("agw-1", "feg", backhaul.fiber())
    from repro.core.agw import AccessGateway
    agw = AccessGateway(sim, network, "agw-1", config=config, rng=rng)
    network.connect("enb-1", "agw-1", backhaul.lan())
    enb = Enodeb(sim, network, "enb-1", "agw-1")
    agw.start()
    enb.s1_setup()
    sim.run(until=1.0)
    # Roaming subscriber: provisioned at the MNO, NOT in Magma.
    imsi = make_imsi(7)
    k, opc = subscriber_keys(7)
    mno.provision(imsi, k, opc, policy=rate_limited("mno-gold", 25.0))
    ue = Ue(sim, imsi, k, opc, enb)
    return sim, network, mno, feg, agw, enb, ue


def test_mode_validation():
    assert validate_mode("standalone") == "standalone"
    with pytest.raises(ValueError):
        validate_mode("carrier-pigeon")


def test_user_plane_egress_selection():
    assert user_plane_egress(DeploymentMode.STANDALONE, False) == "sgi"
    assert user_plane_egress(DeploymentMode.LOCAL_BREAKOUT, True) == "sgi"
    assert user_plane_egress(DeploymentMode.HOME_ROUTED, True) == "gtpa"
    assert user_plane_egress(DeploymentMode.HOME_ROUTED, False) == "sgi"


def test_roaming_attach_via_feg():
    """Local-breakout roaming: auth and policy come from the MNO; the
    session and enforcement live in the AGW (§3.6)."""
    sim, network, mno, feg, agw, enb, ue = build_federated()
    done = ue.attach()
    outcome = sim.run_until_triggered(done, limit=60.0)
    assert outcome.success, outcome.cause
    sim.run(until=sim.now + 2.0)
    # The MNO answered S6a and Gx.
    assert mno.stats["s6a_requests"] == 1
    assert mno.stats["gx_requests"] == 1
    assert feg.stats["auth_requests"] == 1
    # The MNO's policy is enforced locally in the AGW.
    assert agw.admitted_downlink(ue.imsi, 100.0) == pytest.approx(25.0)
    # A roaming-cached profile exists, marked federated.
    profile = agw.subscriberdb.get(ue.imsi)
    assert profile is not None and profile.federated
    # Local breakout: the session egresses via SGi, not the GTP-A.
    assert not agw.sessiond.session(ue.imsi).home_routed


def test_home_routed_session_marked():
    sim, network, mno, feg, agw, enb, ue = build_federated(
        mode=DeploymentMode.HOME_ROUTED)
    done = ue.attach()
    outcome = sim.run_until_triggered(done, limit=60.0)
    assert outcome.success
    sim.run(until=sim.now + 2.0)
    session = agw.sessiond.session(ue.imsi)
    assert session.home_routed
    assert agw.pipelined.session(ue.imsi).egress_port == "gtpa"


def test_unknown_roamer_rejected():
    sim, network, mno, feg, agw, enb, ue = build_federated()
    stranger_imsi = make_imsi(404)
    k, opc = subscriber_keys(404)
    stranger = Ue(sim, stranger_imsi, k, opc, enb)
    done = stranger.attach()
    outcome = sim.run_until_triggered(done, limit=60.0)
    assert not outcome.success
    assert mno.stats["s6a_unknown"] == 1


def test_local_subscriber_does_not_touch_feg():
    sim, network, mno, feg, agw, enb, ue = build_federated()
    local_imsi = make_imsi(8)
    k, opc = subscriber_keys(8)
    agw.subscriberdb.upsert(SubscriberProfile(imsi=local_imsi, k=k, opc=opc))
    local_ue = Ue(sim, local_imsi, k, opc, enb)
    done = local_ue.attach()
    outcome = sim.run_until_triggered(done, limit=60.0)
    assert outcome.success
    assert feg.stats["auth_requests"] == 0


def test_feg_unreachable_rejects_roamers_only():
    sim, network, mno, feg, agw, enb, ue = build_federated()
    network.set_node_up("feg", False)
    done = ue.attach()
    outcome = sim.run_until_triggered(done, limit=120.0)
    assert not outcome.success


def test_gy_quota_through_feg():
    """Home-style online charging against the MNO's OCS via the FeG."""
    sim = Simulator()
    rng = RngRegistry(2)
    network = Network(sim, rng)
    ocs = OnlineChargingSystem(quota_bytes=1_000_000)
    mno = PartnerMnoCore(sim, network, "mno", rng=rng, ocs=ocs)
    network.connect("feg", "mno", backhaul.fiber())
    feg = FederationGateway(sim, network, "feg", "mno")
    from repro.core.policy import prepaid
    from repro.core.agw import AccessGateway
    config = AgwConfig(deployment_mode=DeploymentMode.LOCAL_BREAKOUT,
                       feg_node="feg")
    network.connect("agw-1", "feg", backhaul.fiber())
    agw = AccessGateway(sim, network, "agw-1", config=config,
                        ocs_node="feg", rng=rng)
    network.connect("enb-1", "agw-1", backhaul.lan())
    enb = Enodeb(sim, network, "enb-1", "agw-1")
    agw.start()
    enb.s1_setup()
    sim.run(until=1.0)
    imsi = make_imsi(9)
    k, opc = subscriber_keys(9)
    mno.provision(imsi, k, opc, policy=prepaid("mno-prepaid"))
    ocs.provision(imsi, balance_bytes=10_000_000)
    ue = Ue(sim, imsi, k, opc, enb)
    done = ue.attach()
    outcome = sim.run_until_triggered(done, limit=60.0)
    assert outcome.success, outcome.cause
    assert feg.stats["quota_requests"] >= 1
    assert ocs.account(imsi).reserved_bytes == 1_000_000


# -- GTP aggregator -----------------------------------------------------------------


def test_gtpa_shares_capacity():
    sim = Simulator()
    gtpa = GtpAggregator(sim, capacity_mbps=100.0)
    gtpa.offer("agw-1", "imsi-a", 80.0)
    gtpa.offer("agw-2", "imsi-b", 80.0)
    allocation = gtpa.allocate()
    assert allocation[("agw-1", "imsi-a")] == pytest.approx(50.0)
    assert allocation[("agw-2", "imsi-b")] == pytest.approx(50.0)
    assert gtpa.utilization() == 1.0


def test_gtpa_underload_admits_everything():
    sim = Simulator()
    gtpa = GtpAggregator(sim, capacity_mbps=1000.0)
    gtpa.offer("agw-1", "a", 10.0)
    assert gtpa.admitted("agw-1", "a") == pytest.approx(10.0)


def test_gtpa_forwards_to_mno_pgw():
    sim = Simulator()
    network = Network(sim)
    mno = PartnerMnoCore(sim, network, "mno")
    gtpa = GtpAggregator(sim, capacity_mbps=100.0, mno_core=mno)
    gtpa.offer("agw-1", "imsi-a", 8.0)   # 8 Mbps = 1 MB/s
    carried = gtpa.forward(duration=10.0)
    assert carried == pytest.approx(8.0)
    assert mno.pgw_usage_bytes["imsi-a"] == 10_000_000
    assert mno.pgw_total_bytes() == 10_000_000


def test_gtpa_withdraw_and_validation():
    sim = Simulator()
    gtpa = GtpAggregator(sim, capacity_mbps=100.0)
    gtpa.offer("agw-1", "a", 10.0)
    gtpa.withdraw("agw-1", "a")
    assert gtpa.admitted("agw-1", "a") == 0.0
    gtpa.offer("agw-1", "a", 5.0)
    gtpa.offer("agw-1", "a", 0.0)  # zero rate removes the offer
    assert gtpa.allocate() == {}
    with pytest.raises(ValueError):
        gtpa.offer("agw-1", "a", -1.0)
    with pytest.raises(ValueError):
        GtpAggregator(sim, capacity_mbps=0)
