"""Unit tests for the software switch pipeline (tables, actions, fluid mode)."""

import pytest

from repro.dataplane import (
    FlowMatch,
    FlowMod,
    MeterMod,
    PipelineError,
    SoftwareSwitch,
    StatsRequest,
    BarrierRequest,
    ip_packet,
)
from repro.dataplane import actions as act
from repro.dataplane.packet import GtpuHeader


def build_switch(num_tables=4):
    sw = SoftwareSwitch("agw-dp", num_tables=num_tables)
    delivered = {"uplink": [], "downlink": []}
    sw.add_port("internet", delivered["uplink"].append)
    sw.add_port("ran", delivered["downlink"].append)
    return sw, delivered


def add_rule(sw, table=0, priority=10, match=None, actions=(), cookie=None):
    return sw.apply(FlowMod(command=FlowMod.ADD, table_id=table,
                            priority=priority, match=match or FlowMatch(),
                            actions=actions, cookie=cookie))


def test_output_action_delivers():
    sw, delivered = build_switch()
    add_rule(sw, actions=[act.Output("internet")])
    pkt = ip_packet("10.0.0.1", "8.8.8.8")
    sw.inject(pkt, "ran")
    assert delivered["uplink"] == [pkt]
    assert sw.stats["tx"] == 1


def test_drop_action():
    sw, delivered = build_switch()
    add_rule(sw, actions=[act.Drop()])
    sw.inject(ip_packet("a", "b"), "ran")
    assert delivered["uplink"] == []
    assert sw.stats["dropped"] == 1


def test_priority_order_wins():
    sw, delivered = build_switch()
    add_rule(sw, priority=1, actions=[act.Drop()])
    add_rule(sw, priority=100, match=FlowMatch(ip_src="10.0.0.1"),
             actions=[act.Output("internet")])
    sw.inject(ip_packet("10.0.0.1", "x"), "ran")
    sw.inject(ip_packet("10.0.0.2", "x"), "ran")
    assert len(delivered["uplink"]) == 1
    assert sw.stats["dropped"] == 1


def test_table_miss_punts_to_controller():
    sw, _ = build_switch()
    punted = []
    sw.set_controller(punted.append)
    sw.inject(ip_packet("a", "b"), "ran")
    assert len(punted) == 1
    assert punted[0].reason == "table-miss"
    assert punted[0].in_port == "ran"


def test_table_miss_without_controller_drops():
    sw, _ = build_switch()
    sw.inject(ip_packet("a", "b"), "ran")
    assert sw.stats["dropped"] == 1


def test_goto_table_chains():
    sw, delivered = build_switch()
    add_rule(sw, table=0, actions=[act.SetRegister("direction", "up"),
                                   act.GotoTable(1)])
    add_rule(sw, table=1, match=FlowMatch(registers={"direction": "up"}),
             actions=[act.Output("internet")])
    sw.inject(ip_packet("a", "b"), "ran")
    assert len(delivered["uplink"]) == 1


def test_pipeline_loop_detected():
    sw, _ = build_switch()
    add_rule(sw, table=0, actions=[act.GotoTable(1)])
    add_rule(sw, table=1, actions=[act.GotoTable(0)])
    with pytest.raises(PipelineError, match="loop"):
        sw.inject(ip_packet("a", "b"), "ran")


def test_gtpu_push_and_pop_actions():
    sw, delivered = build_switch()
    add_rule(sw, match=FlowMatch(in_port="ran"),
             actions=[act.PopGtpu(), act.Output("internet")])
    add_rule(sw, match=FlowMatch(in_port="internet"),
             actions=[act.PushGtpu(teid=5, tunnel_src="agw", tunnel_dst="enb"),
                      act.Output("ran")])
    from repro.dataplane import gtpu_encap
    uplink = gtpu_encap(ip_packet("10.0.0.1", "8.8.8.8"), 5, "enb", "agw")
    sw.inject(uplink, "ran")
    assert not delivered["uplink"][0].is_tunneled()

    downlink = ip_packet("8.8.8.8", "10.0.0.1")
    sw.inject(downlink, "internet")
    assert delivered["downlink"][0].find(GtpuHeader).teid == 5


def test_meter_action_enforces_rate():
    sw, delivered = build_switch()
    sw.apply(MeterMod(command=MeterMod.ADD, meter_id=1, rate_mbps=0.008,
                      burst_bytes=3_000))
    add_rule(sw, actions=[act.Meter(1), act.Output("internet")])
    for _ in range(10):
        sw.inject(ip_packet("a", "b", payload_bytes=920), "ran")  # 1000B each
    assert len(delivered["uplink"]) == 3
    assert sw.stats["meter_dropped"] == 7


def test_missing_meter_raises():
    sw, _ = build_switch()
    add_rule(sw, actions=[act.Meter(99), act.Output("internet")])
    with pytest.raises(PipelineError, match="missing meter"):
        sw.inject(ip_packet("a", "b"), "ran")


def test_meter_modify_and_delete():
    sw, _ = build_switch()
    sw.apply(MeterMod(command=MeterMod.ADD, meter_id=1, rate_mbps=10))
    sw.apply(MeterMod(command=MeterMod.MODIFY, meter_id=1, rate_mbps=1))
    assert sw.meters[1].rate_mbps == 1
    assert sw.apply(MeterMod(command=MeterMod.DELETE, meter_id=1)) is True
    assert sw.apply(MeterMod(command=MeterMod.DELETE, meter_id=1)) is False
    with pytest.raises(PipelineError):
        sw.apply(MeterMod(command=MeterMod.MODIFY, meter_id=1, rate_mbps=2))


def test_duplicate_meter_add_raises():
    sw, _ = build_switch()
    sw.apply(MeterMod(command=MeterMod.ADD, meter_id=1, rate_mbps=10))
    with pytest.raises(PipelineError):
        sw.apply(MeterMod(command=MeterMod.ADD, meter_id=1, rate_mbps=10))


def test_set_dscp_action():
    sw, delivered = build_switch()
    add_rule(sw, actions=[act.SetDscp(46), act.Output("internet")])
    pkt = ip_packet("a", "b")
    sw.inject(pkt, "ran")
    assert delivered["uplink"][0].inner_ip().dscp == 46


def test_stats_collection_and_cookie_filter():
    sw, _ = build_switch()
    add_rule(sw, actions=[act.Output("internet")], cookie="ue-1")
    add_rule(sw, priority=5, match=FlowMatch(ip_src="10.0.0.2"),
             actions=[act.Drop()], cookie="ue-2")
    sw.inject(ip_packet("10.0.0.1", "b", payload_bytes=100), "ran")
    reply = sw.apply(StatsRequest(cookie="ue-1"))
    assert len(reply.entries) == 1
    assert reply.entries[0].packets == 1
    assert reply.entries[0].bytes > 100
    all_reply = sw.apply(StatsRequest())
    assert len(all_reply.entries) == 2


def test_delete_by_cookie():
    sw, _ = build_switch()
    add_rule(sw, actions=[act.Output("internet")], cookie="ue-1")
    add_rule(sw, table=1, actions=[act.Drop()], cookie="ue-1")
    removed = sw.apply(FlowMod(command=FlowMod.DELETE_BY_COOKIE, table_id=0,
                               cookie="ue-1"))
    assert removed == 1
    assert len(sw.tables[0]) == 0
    assert len(sw.tables[1]) == 1


def test_barrier_returns_true():
    sw, _ = build_switch()
    assert sw.apply(BarrierRequest()) is True


def test_unknown_message_rejected():
    sw, _ = build_switch()
    with pytest.raises(PipelineError):
        sw.apply(object())


def test_unknown_table_rejected():
    sw, _ = build_switch(num_tables=2)
    with pytest.raises(PipelineError):
        add_rule(sw, table=5, actions=[act.Drop()])


def test_fluid_evaluation_plain_forward():
    sw, _ = build_switch()
    add_rule(sw, actions=[act.Output("internet")], cookie="ue-1")
    rep = ip_packet("10.0.0.1", "8.8.8.8")
    admitted, cookies = sw.evaluate_fluid(rep, "ran", offered_mbps=100.0)
    assert admitted == 100.0
    assert cookies == ["ue-1"]


def test_fluid_evaluation_applies_meter():
    sw, _ = build_switch()
    sw.apply(MeterMod(command=MeterMod.ADD, meter_id=1, rate_mbps=1.5))
    add_rule(sw, actions=[act.Meter(1), act.Output("internet")], cookie="ue-1")
    admitted, _ = sw.evaluate_fluid(ip_packet("a", "b"), "ran", 10.0)
    assert admitted == 1.5


def test_fluid_evaluation_miss_admits_zero():
    sw, _ = build_switch()
    admitted, cookies = sw.evaluate_fluid(ip_packet("a", "b"), "ran", 10.0)
    assert admitted == 0.0
    assert cookies == []


def test_fluid_evaluation_multi_table_with_meters():
    sw, _ = build_switch()
    sw.apply(MeterMod(command=MeterMod.ADD, meter_id=1, rate_mbps=5.0))
    sw.apply(MeterMod(command=MeterMod.ADD, meter_id=2, rate_mbps=2.0))
    add_rule(sw, table=0, actions=[act.Meter(1), act.GotoTable(1)], cookie="agg")
    add_rule(sw, table=1, actions=[act.Meter(2), act.Output("internet")],
             cookie="ue-1")
    admitted, cookies = sw.evaluate_fluid(ip_packet("a", "b"), "ran", 10.0)
    assert admitted == 2.0
    assert cookies == ["agg", "ue-1"]


def test_record_fluid_usage_updates_stats():
    sw, _ = build_switch()
    add_rule(sw, actions=[act.Output("internet")], cookie="ue-1")
    sw.record_fluid_usage("ue-1", mbps=8.0, duration=10.0)
    reply = sw.apply(StatsRequest(cookie="ue-1"))
    assert reply.entries[0].bytes == int(8.0 * 1e6 / 8 * 10)


def test_duplicate_port_rejected():
    sw, _ = build_switch()
    with pytest.raises(ValueError):
        sw.add_port("internet", lambda p: None)


def test_output_to_removed_port_drops():
    sw, delivered = build_switch()
    add_rule(sw, actions=[act.Output("internet")])
    sw.remove_port("internet")
    sw.inject(ip_packet("a", "b"), "ran")
    assert sw.stats["dropped"] == 1


# -- bundles (atomic batched programming) -----------------------------------------


def test_bundle_applies_all_mods_and_counts_one_control_msg():
    from repro.dataplane import BundleReply, FlowBundle
    sw, delivered = build_switch()
    before = sw.stats["control_msgs"]
    reply = sw.apply(FlowBundle(mods=(
        MeterMod(command=MeterMod.ADD, meter_id=1, rate_mbps=10.0),
        FlowMod(command=FlowMod.ADD, table_id=0, priority=10,
                match=FlowMatch(), actions=[act.Output("internet")],
                cookie="ue-1"),
        FlowMod(command=FlowMod.ADD, table_id=1, priority=10,
                match=FlowMatch(), actions=[act.Drop()], cookie="ue-1"),
    )))
    assert isinstance(reply, BundleReply)
    assert reply.mods_applied == 3
    assert reply.rules_added == 2
    assert sw.stats["control_msgs"] == before + 1
    assert sw.stats["bundles"] == 1
    assert 1 in sw.meters
    assert len(sw.tables[0]) == 1 and len(sw.tables[1]) == 1


def test_bundle_is_atomic_on_validation_failure():
    from repro.dataplane import FlowBundle
    sw, delivered = build_switch()
    with pytest.raises(PipelineError):
        sw.apply(FlowBundle(mods=(
            FlowMod(command=FlowMod.ADD, table_id=0, priority=10,
                    match=FlowMatch(), actions=[act.Drop()], cookie="x"),
            MeterMod(command=MeterMod.MODIFY, meter_id=99, rate_mbps=1.0),
        )))
    # The valid leading FlowMod must NOT have been applied.
    assert len(sw.tables[0]) == 0
    assert sw.stats["bundles"] == 0


def test_bundle_validates_meter_ids_against_earlier_mods():
    from repro.dataplane import FlowBundle
    sw, delivered = build_switch()
    # ADD then MODIFY of the same meter inside one bundle is legal.
    sw.apply(FlowBundle(mods=(
        MeterMod(command=MeterMod.ADD, meter_id=5, rate_mbps=1.0),
        MeterMod(command=MeterMod.MODIFY, meter_id=5, rate_mbps=2.0),
    )))
    assert sw.meters[5].rate_mbps == 2.0
    # A duplicate ADD (even of a meter added earlier in the bundle) is not.
    with pytest.raises(PipelineError):
        sw.apply(FlowBundle(mods=(
            MeterMod(command=MeterMod.ADD, meter_id=6, rate_mbps=1.0),
            MeterMod(command=MeterMod.ADD, meter_id=6, rate_mbps=2.0),
        )))
    assert 6 not in sw.meters


def test_bundle_preserves_add_delete_ordering():
    from repro.dataplane import FlowBundle
    sw, delivered = build_switch()
    match = FlowMatch(registers={"imsi": "ue-1", "direction": "downlink"})
    # ADD, DELETE (matching it), then a fresh ADD: only the last survives.
    sw.apply(FlowBundle(mods=(
        FlowMod(command=FlowMod.ADD, table_id=0, priority=10, match=match,
                actions=[act.Drop()], cookie="old"),
        FlowMod(command=FlowMod.DELETE, table_id=0, priority=10, match=match),
        FlowMod(command=FlowMod.ADD, table_id=0, priority=10, match=match,
                actions=[act.Output("internet")], cookie="new"),
    )))
    rules = sw.tables[0].rules()
    assert [r.cookie for r in rules] == ["new"]


def test_bundle_rejects_foreign_messages():
    from repro.dataplane import FlowBundle
    sw, delivered = build_switch()
    with pytest.raises(PipelineError):
        sw.apply(FlowBundle(mods=(StatsRequest(),)))
