"""Kernel edge cases not covered by the basic suite."""

import pytest

from repro.sim import (
    AllOf,
    Interrupted,
    SimulationError,
    Simulator,
)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(str(exc))

    sim.schedule(1.0, nested)
    sim.run()
    assert errors and "reentrant" in errors[0]


def test_all_of_failure_fails_composite():
    sim = Simulator()
    caught = []

    def proc(sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        sim.schedule(0.5, bad.fail, RuntimeError("child failed"))
        try:
            yield sim.all_of([good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(proc(sim))
    sim.run()
    assert caught == ["child failed"]


def test_all_of_empty_completes_immediately():
    sim = Simulator()

    def proc(sim):
        result = yield sim.all_of([])
        return result

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == {}


def test_interrupt_while_waiting_on_plain_event():
    sim = Simulator()
    ev = sim.event()
    log = []

    def waiter(sim):
        try:
            yield ev
        except Interrupted as exc:
            log.append(exc.cause)
            return "interrupted"

    p = sim.spawn(waiter(sim))
    sim.schedule(1.0, p.interrupt, "stop-now")
    sim.run()
    assert p.value == "interrupted"
    assert log == ["stop-now"]
    # The original event firing later must not resurrect the process.
    ev.succeed("late")
    sim.run()
    assert p.value == "interrupted"


def test_interrupted_process_event_after_detached_target_fires():
    """After an interrupt, the old wait target completing is ignored."""
    sim = Simulator()

    def waiter(sim):
        try:
            yield sim.timeout(10.0)
        except Interrupted:
            yield sim.timeout(1.0)
            return "recovered"

    p = sim.spawn(waiter(sim))
    sim.schedule(2.0, p.interrupt)
    sim.run()
    assert p.value == "recovered"
    assert sim.now >= 10.0  # the detached timeout still fired harmlessly


def test_step_on_empty_queue_returns_false():
    sim = Simulator()
    assert sim.step() is False


def test_process_waits_on_already_failed_event():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("pre-failed"))

    def proc(sim):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == "caught pre-failed"


def test_event_failed_with_non_exception_via_callback_path():
    sim = Simulator()
    ev = sim.event()

    def proc(sim):
        try:
            yield ev
        except SimulationError as exc:
            return "wrapped"

    p = sim.spawn(proc(sim))
    # Bypass fail()'s type check to simulate an internal misuse.
    ev._trigger(False, "not-an-exception")
    sim.run()
    assert p.value == "wrapped"
