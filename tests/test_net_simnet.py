"""Unit tests for the simulated network (nodes, links, routing, failures)."""

import pytest

from repro.net import Datagram, Link, Network
from repro.sim import RngRegistry, Simulator


def make_net(loss=0.0, latency=0.01):
    sim = Simulator()
    net = Network(sim, RngRegistry(1))
    net.connect("a", "b", Link(latency=latency, loss=loss))
    return sim, net


def test_delivery_with_latency():
    sim, net = make_net(latency=0.25)
    got = []
    net.bind("b", 10, lambda d: got.append((sim.now, d.payload)))
    net.send(Datagram("a", "b", 10, "hello"))
    sim.run()
    assert got == [(0.25, "hello")]


def test_loss_validation():
    with pytest.raises(ValueError):
        Link(loss=1.0)
    with pytest.raises(ValueError):
        Link(loss=-0.1)
    with pytest.raises(ValueError):
        Link(latency=-1)
    with pytest.raises(ValueError):
        Link(bandwidth_mbps=0)


def test_lossy_link_drops_some():
    sim, net = make_net(loss=0.5)
    got = []
    net.bind("b", 10, lambda d: got.append(d.payload))
    for i in range(200):
        net.send(Datagram("a", "b", 10, i))
    sim.run()
    assert 40 < len(got) < 160  # ~100 expected
    assert net.stats["dropped_loss"] == 200 - len(got)


def test_lossless_link_delivers_all():
    sim, net = make_net(loss=0.0)
    got = []
    net.bind("b", 10, lambda d: got.append(d.payload))
    for i in range(50):
        net.send(Datagram("a", "b", 10, i))
    sim.run()
    assert len(got) == 50


def test_multi_hop_routing():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "m", Link(latency=0.1))
    net.connect("m", "b", Link(latency=0.2))
    got = []
    net.bind("b", 5, lambda d: got.append(sim.now))
    net.send(Datagram("a", "b", 5, "x"))
    sim.run()
    assert got == [pytest.approx(0.3)]


def test_unroutable_is_dropped():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b")
    net.add_node("island")
    net.bind("island", 1, lambda d: pytest.fail("should not deliver"))
    net.send(Datagram("a", "island", 1, "x"))
    sim.run()
    assert net.stats["dropped_unroutable"] == 1


def test_down_node_drops_traffic():
    sim, net = make_net()
    got = []
    net.bind("b", 10, lambda d: got.append(d.payload))
    net.set_node_up("b", False)
    net.send(Datagram("a", "b", 10, "x"))
    sim.run()
    assert got == []
    assert net.stats["dropped_down"] >= 1


def test_down_transit_node_drops_traffic():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "m")
    net.connect("m", "b")
    got = []
    net.bind("b", 1, lambda d: got.append(d.payload))
    net.set_node_up("m", False)
    net.send(Datagram("a", "b", 1, "x"))
    sim.run()
    assert got == []


def test_node_recovery_restores_delivery():
    sim, net = make_net()
    got = []
    net.bind("b", 10, lambda d: got.append(d.payload))
    net.set_node_up("b", False)
    net.send(Datagram("a", "b", 10, "lost"))
    net.set_node_up("b", True)
    net.send(Datagram("a", "b", 10, "ok"))
    sim.run()
    assert got == ["ok"]


def test_no_handler_counts_drop():
    sim, net = make_net()
    net.send(Datagram("a", "b", 99, "x"))
    sim.run()
    assert net.stats["dropped_no_handler"] == 1


def test_bandwidth_serialization_delays():
    sim = Simulator()
    net = Network(sim)
    # 1 Mbps link: a 1,000,000-bit message takes 1 s to serialize.
    net.connect("a", "b", Link(latency=0.0, bandwidth_mbps=1.0))
    got = []
    net.bind("b", 1, lambda d: got.append(sim.now))
    net.send(Datagram("a", "b", 1, "big1", size_bits=1_000_000))
    net.send(Datagram("a", "b", 1, "big2", size_bits=1_000_000))
    sim.run()
    assert got[0] == pytest.approx(1.0, rel=0.01)
    assert got[1] == pytest.approx(2.0, rel=0.01)  # queued behind big1


def test_self_connect_rejected():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(ValueError):
        net.connect("a", "a")


def test_duplicate_bind_rejected():
    sim, net = make_net()
    net.bind("b", 7, lambda d: None)
    with pytest.raises(ValueError):
        net.bind("b", 7, lambda d: None)


def test_link_between():
    sim, net = make_net(latency=0.123)
    assert net.link_between("a", "b").latency == 0.123
    assert net.link_between("a", "zzz") is None


def test_set_node_up_unknown_raises():
    sim, net = make_net()
    with pytest.raises(KeyError):
        net.set_node_up("ghost", False)


# -- routing around failures and route-cache invalidation ---------------------


def test_reroute_around_crashed_transit():
    """A crashed transit node must not black-hole traffic between healthy
    endpoints that still have a live alternate path."""
    sim = Simulator()
    net = Network(sim, RngRegistry(1))
    net.connect("a", "m1", Link(latency=0.01))
    net.connect("m1", "b", Link(latency=0.01))
    net.connect("a", "m2", Link(latency=0.05))
    net.connect("m2", "b", Link(latency=0.05))
    got = []
    net.bind("b", 9, got.append)
    net.send(Datagram("a", "b", 9, "warm"))  # populate the route cache
    sim.run()
    assert [d.payload for d in got] == ["warm"]
    net.set_node_up("m1", False)
    net.send(Datagram("a", "b", 9, "after-crash"))
    sim.run()
    assert [d.payload for d in got] == ["warm", "after-crash"]
    assert net.stats["dropped_down"] == 0  # rerouted via m2, never black-holed
    assert net.stats["dropped_unroutable"] == 0


def test_recovery_invalidates_negative_route_cache():
    """A no-route verdict cached while a node was down must be recomputed
    once the node recovers."""
    sim = Simulator()
    net = Network(sim, RngRegistry(1))
    net.connect("a", "m", Link(latency=0.01))
    net.connect("m", "b", Link(latency=0.01))
    got = []
    net.bind("b", 9, got.append)
    net.set_node_up("m", False)
    net.send(Datagram("a", "b", 9, "lost"))
    sim.run()
    assert got == []
    assert net.stats["dropped_unroutable"] == 1
    net.set_node_up("m", True)
    net.send(Datagram("a", "b", 9, "found"))
    sim.run()
    assert [d.payload for d in got] == ["found"]
