"""Every example script must run to completion (end-to-end smoke)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", "quickstart complete"),
    ("rural_isp.py", "rural ISP scenario complete"),
    ("accessparks_backhaul.py", "AccessParks scenario complete"),
    ("neutral_host.py", "neutral host scenario complete"),
    ("enterprise_5g.py", "enterprise 5G scenario complete"),
]


@pytest.mark.parametrize("script,sentinel", EXAMPLES)
def test_example_runs(script, sentinel):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr
    assert sentinel in result.stdout
